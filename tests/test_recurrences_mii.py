"""Unit tests for recurrence analysis and MII computation."""

import pytest

from repro import (
    GraphError,
    LoopBuilder,
    compute_mii,
    find_recurrences,
    parse_config,
    recurrence_mii,
    resource_mii,
)
from repro.graph.recurrences import circuit_bound

from tests.helpers import UNIFIED, chain, daxpy, reduction, wide


class TestRecMII:
    def test_acyclic_graph_has_recmii_one(self):
        assert recurrence_mii(chain(), UNIFIED) == 1
        assert find_recurrences(chain(), UNIFIED) == []

    def test_self_recurrence_bound(self):
        # add -> add with distance 1 and latency 4: RecMII = ceil(4/1).
        assert recurrence_mii(reduction(distance=1), UNIFIED) == 4

    def test_distance_divides_bound(self):
        # Same circuit, distance 2: ceil(4/2) = 2; distance 4: 1.
        assert recurrence_mii(reduction(distance=2), UNIFIED) == 2
        assert recurrence_mii(reduction(distance=4), UNIFIED) == 1

    def test_two_node_circuit(self):
        b = LoopBuilder("circ")
        x = b.load(array=0)
        u = b.add(x)
        v = b.mul(u)
        b.loop_carried(v, u, distance=1)
        graph = b.build()
        # u -> v (lat 4), v -> u (lat 4, dist 1): ceil(8/1) = 8.
        assert recurrence_mii(graph, UNIFIED) == 8
        circuits = find_recurrences(graph, UNIFIED)
        assert len(circuits) == 1
        assert circuits[0].rec_mii == 8
        assert circuits[0].nodes == {u.id, v.id}

    def test_most_critical_recurrence_first(self):
        b = LoopBuilder("two")
        x = b.load(array=0)
        fast = b.add(x)
        b.loop_carried(fast, fast, distance=4)  # ceil(4/4) = 1
        slow = b.div(x)
        b.loop_carried(slow, slow, distance=1)  # ceil(17/1) = 17
        graph = b.build()
        circuits = find_recurrences(graph, UNIFIED)
        assert [c.rec_mii for c in circuits] == [17, 1]

    def test_circuit_bound_helper_matches(self):
        b = LoopBuilder("circ")
        x = b.load(array=0)
        u = b.add(x)
        v = b.mul(u)
        b.loop_carried(v, u, distance=2)
        graph = b.build()
        assert circuit_bound(graph, UNIFIED, [u.id, v.id]) == 4  # ceil(8/2)

    def test_zero_distance_circuit_rejected(self):
        b = LoopBuilder("bad")
        u = b.add()
        v = b.add(u)
        graph = b.build()
        graph.add_edge(v.id, u.id)  # distance 0 back edge: illegal circuit
        with pytest.raises(GraphError):
            recurrence_mii(graph, UNIFIED)


class TestResMII:
    def test_memory_bound(self):
        # wide(8): 16 loads + 8 stores = 24 memory ops over 4 ports -> 6.
        graph = wide(8)
        assert resource_mii(graph, UNIFIED) == 6

    def test_compute_bound(self):
        b = LoopBuilder("fp")
        x = b.load(array=0)
        node = x
        for _ in range(20):
            node = b.add(node, x)
        b.store(node, array=1)
        graph = b.build()
        # 20 adds over 8 units -> ceil(20/8) = 3 > memory bound 1.
        assert resource_mii(graph, UNIFIED) == 3

    def test_unpipelined_occupancy_floor(self):
        b = LoopBuilder("div")
        x = b.load(array=0)
        b.store(b.div(x, x), array=1)
        graph = b.build()
        # One division occupies a FU for 17 cycles: II >= 17.
        assert resource_mii(graph, UNIFIED) == 17

    def test_cluster_split_uses_total_resources(self):
        four = parse_config("4-(GP2M1-REG32)")
        graph = wide(8)
        assert resource_mii(graph, four) == resource_mii(graph, UNIFIED)


class TestComputeMII:
    def test_mii_is_max_of_bounds(self):
        graph = reduction(distance=1)  # RecMII 4, ResMII 1
        assert compute_mii(graph, UNIFIED) == 4

    def test_daxpy_mii_is_one_on_wide_core(self):
        assert compute_mii(daxpy(), UNIFIED) == 1

    def test_empty_graph(self):
        from repro import DependenceGraph

        assert compute_mii(DependenceGraph("empty"), UNIFIED) == 1


class TestErrorTaxonomy:
    def test_memory_ops_without_ports_raise_graph_error(self):
        """Regression: this used to be a bare ``ValueError``, escaping
        the repo's error taxonomy (``except ReproError`` guards)."""
        from repro.errors import ReproError

        portless = parse_config("1-(GP8M0-REG64)")
        with pytest.raises(GraphError) as excinfo:
            resource_mii(daxpy(), portless)
        assert "memory port" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)
        with pytest.raises(ReproError):
            compute_mii(daxpy(), portless)

    def test_memory_free_graph_tolerates_portless_machine(self):
        from repro import LoopBuilder

        b = LoopBuilder("pure")
        b.add(b.add())
        portless = parse_config("1-(GP8M0-REG64)")
        assert resource_mii(b.build(), portless) >= 1
