"""Tests for the structured tracing + metrics subsystem (repro.obs).

The contracts pinned here:

* the :class:`NullTracer` default records nothing and every hook is
  safe to call unconditionally;
* :class:`RecordingTracer` event streams are deterministic modulo
  timestamps: two serial runs of the same schedule agree on every
  ``(name, cat, kind, tid, args)`` tuple in order;
* tracing never changes the answer: workbench fingerprints with a
  tracer attached equal the committed untraced capture;
* the JSONL and Chrome exports validate against the committed
  ``trace_schema.json``;
* the speculative race keeps exactly one ``attempt`` span per launched
  attempt (completed attempts merged from the worker, cancelled ones
  synthesized and marked), with the executed-attempt bound of the
  cancellation accounting;
* ``SchedulerStats.search_stats`` keeps the old dict shape for
  equality/iteration/JSON but raises :class:`ConfigError` on keyed
  access; :class:`ConvergenceError` carries the failure-kind
  histogram; ``repro trace summary`` covers ≥95% of schedule time.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import UNIFIED, daxpy, random_graph, wide
from repro import (
    MirsC,
    MirsParams,
    RecordingTracer,
    ScheduleRequest,
    compute_mii,
    hrms_order,
    parse_config,
    resolve_tracer,
)
from repro.core.attempts import SpeculativeSearchDriver
from repro.core.params import max_ii_for
from repro.core.request import SessionConfig
from repro.errors import ConfigError, ConvergenceError
from repro.eval.runner import schedule_suite
from repro.exec import result_fingerprint
from repro.exec.cache import ResultCache
from repro.obs import NULL_TRACER, NullTracer, SearchStats, outcome_histogram
from repro.obs.export import (
    chrome_path_for,
    chrome_payload,
    read_jsonl,
    validate_chrome,
    validate_jsonl,
    validate_trace_file,
    write_chrome,
    write_jsonl,
)
from repro.obs.summary import summarize, summarize_file


def event_shapes(tracer: RecordingTracer) -> list[tuple]:
    """The deterministic projection of a trace (everything but time)."""
    return [
        (e.name, e.cat, e.kind, e.tid, e.args) for e in tracer.events
    ]


# ----------------------------------------------------------------------
# Tracer primitives
# ----------------------------------------------------------------------


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        token = tracer.begin("x", "schedule", ii=3)
        tracer.end(token, kind="scheduled")
        tracer.instant("y", "race")
        tracer.counter("z", 7)
        tracer.merge({"events": [{"name": "n"}]})
        assert not hasattr(tracer, "events")

    def test_resolution(self, monkeypatch):
        import repro.obs as obs

        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        recording = RecordingTracer()
        assert resolve_tracer(recording) is recording
        assert resolve_tracer(False) is NULL_TRACER
        assert resolve_tracer(None) is NULL_TRACER
        monkeypatch.setattr(obs, "_GLOBAL_TRACER", None)
        monkeypatch.setenv(obs.TRACE_ENV, "/tmp/unused-trace.jsonl")
        via_env = resolve_tracer(None)
        assert via_env.enabled
        assert resolve_tracer(True) is via_env
        # False beats the environment.
        assert resolve_tracer(False) is NULL_TRACER
        with pytest.raises(TypeError):
            resolve_tracer(42)


class TestRecordingTracer:
    def test_span_args_merge_and_seq_is_dense(self):
        tracer = RecordingTracer()
        token = tracer.begin("attempt", "schedule", ii=5, rounds=1)
        tracer.instant("race.launch", "race", ii=5)
        tracer.end(token, rounds=2, kind="scheduled")
        tracer.counter("race.launched", 1)
        assert [e.seq for e in tracer.events] == [0, 1, 2]
        span = tracer.events[1]
        assert span.kind == "span"
        assert span.args == {"ii": 5, "rounds": 2, "kind": "scheduled"}
        assert span.dur >= 0.0
        assert tracer.gauges == {"race.launched": 1}

    def test_merge_rebases_and_renumbers(self):
        parent = RecordingTracer(tid="main")
        parent.instant("a", "exec")
        worker = RecordingTracer(tid="attempt-ii7")
        worker.wall_epoch = parent.wall_epoch + 1.5
        token = worker.begin("attempt", "schedule", ii=7)
        worker.end(token, kind="scheduled")
        parent.merge(worker.export(), tid="worker:0")
        merged = parent.events[-1]
        assert merged.seq == 1
        assert merged.tid == "worker:0"
        assert merged.ts >= 1.5  # the wall-epoch offset re-times it
        # Without an explicit tid the worker's own track is kept.
        parent.merge(worker.export())
        assert parent.events[-1].tid == "attempt-ii7"

    def test_drain_ships_then_forgets(self):
        tracer = RecordingTracer()
        tracer.instant("a", "exec")
        payload = tracer.drain()
        assert [e["name"] for e in payload["events"]] == ["a"]
        assert tracer.events == []
        tracer.instant("b", "exec")
        assert [e["name"] for e in tracer.drain()["events"]] == ["b"]


# ----------------------------------------------------------------------
# Export formats + schema validation
# ----------------------------------------------------------------------


class TestExport:
    def traced_schedule(self, tmp_path):
        tracer = RecordingTracer()
        MirsC(UNIFIED, tracer=tracer).schedule(daxpy())
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        return tracer, path

    def test_jsonl_round_trip_validates(self, tmp_path):
        tracer, path = self.traced_schedule(tmp_path)
        header, events = read_jsonl(path)
        assert validate_jsonl(header, events) == []
        assert validate_trace_file(path) == []
        assert len(events) == len(tracer.events)
        assert all("wall" in event for event in events)

    def test_chrome_payload_validates(self, tmp_path):
        tracer, path = self.traced_schedule(tmp_path)
        payload = chrome_payload(tracer)
        assert validate_chrome(payload) == []
        chrome = write_chrome(tracer, chrome_path_for(path))
        assert chrome.name == "trace.chrome.json"
        reloaded = json.loads(chrome.read_text())
        assert validate_chrome(reloaded) == []
        phases = {entry["ph"] for entry in reloaded["traceEvents"]}
        assert "X" in phases  # spans made it through

    def test_validator_rejects_wrong_version_and_broken_seq(self):
        header = {"schema": 999, "tid": "main", "wall_epoch": 0.0}
        event = {
            "seq": 1, "name": "a", "cat": "exec", "kind": "instant",
            "ts": 0.0, "dur": 0.0, "tid": "main", "wall": 0.0, "args": {},
        }
        problems = validate_jsonl(header, [event, dict(event)])
        assert any("schema version" in p for p in problems)
        assert any("not increasing" in p for p in problems)


# ----------------------------------------------------------------------
# Determinism and fingerprint neutrality
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_serial_traces_are_deterministic_modulo_timestamps(self):
        shapes = []
        for _ in range(2):
            tracer = RecordingTracer()
            MirsC(UNIFIED, tracer=tracer).schedule(daxpy())
            shapes.append(event_shapes(tracer))
        assert shapes[0] == shapes[1]

    def test_tracing_does_not_change_workbench_fingerprints(self):
        """Tracing on reproduces the committed untraced capture."""
        import pathlib

        from repro.workloads.perfect import cached_suite

        config = "1-(GP8M4-REG64)"
        expected = json.loads(
            (
                pathlib.Path(__file__).parent
                / "data"
                / "workbench_fingerprints.json"
            ).read_text()
        )[config]
        machine = parse_config(config)
        tracer = RecordingTracer()
        scheduler = MirsC(machine, strict=False, tracer=tracer)
        mismatched = [
            loop.graph.name
            for loop in cached_suite(16)
            if result_fingerprint(scheduler.schedule(loop.graph))
            != expected[loop.graph.name]
        ]
        assert mismatched == []
        assert tracer.events  # the run really was traced


# ----------------------------------------------------------------------
# Speculative race spans (satellite: hypothesis over the pool runner)
# ----------------------------------------------------------------------


class TestRaceSpans:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_one_span_per_launched_attempt_k4(self, seed):
        """K=4 over the pool: every launched attempt gets exactly one
        ``attempt`` span — completed ones merged from the worker (on
        their own ``attempt-iiN`` track), cancelled ones synthesized
        with ``cancelled=True`` — and the executed count respects the
        cancellation-accounting bound (executed < serial + K)."""
        graph = random_graph(seed, size=10 + seed % 6)
        machine = parse_config("1-(GP8M4-REG16)")
        params = MirsParams()
        ordering = hrms_order(graph, machine)
        mii = compute_mii(graph, machine)
        limit = max_ii_for(mii, len(graph), params)
        tracer = RecordingTracer()
        driver = SpeculativeSearchDriver(
            machine, params, 4, cache=False, tracer=tracer
        )
        found = driver.search(graph.clone(), ordering.priority, mii, limit)
        stats = found.stats
        assert type(driver.runner).__name__ == "PoolAttemptRunner"
        assert stats.runner == "PoolAttemptRunner"
        assert stats.cache_hits == 0

        spans = [
            e for e in tracer.events
            if e.name == "attempt" and e.kind == "span"
        ]
        launches = [e for e in tracer.events if e.name == "race.launch"]
        assert len(launches) == stats.launched
        assert len(spans) == stats.launched
        cancelled = [e for e in spans if e.args.get("cancelled")]
        assert len(cancelled) == stats.cancelled
        completed = [e for e in spans if not e.args.get("cancelled")]
        assert len(completed) == stats.executed_attempts
        # Completed spans ride the merged worker tracks and carry the
        # attempt's outcome; each merged span matches a verify instant.
        verified = {
            e.args["ii"] for e in tracer.events if e.name == "race.verify"
        }
        for span in completed:
            assert span.tid == f"attempt-ii{span.args['ii']}"
            assert span.args["ii"] in verified
            assert "kind" in span.args
        # The cancellation-accounting bound of tests/test_attempts.py.
        assert stats.executed_attempts < stats.serial_attempts + 4
        if found.best is not None:
            commits = [
                e.args["ii"] for e in tracer.events
                if e.name == "race.commit"
            ]
            assert commits == [found.best.ii]

    def test_race_counters_mirror_the_typed_ledger(self):
        tracer = RecordingTracer()
        result = MirsC(
            UNIFIED, strict=False, speculation=2, tracer=tracer
        ).schedule(daxpy())
        stats = result.stats.search
        assert isinstance(stats, SearchStats)
        for field in ("launched", "cancelled", "cache_hits"):
            assert tracer.gauges[f"race.{field}"] == getattr(stats, field)


# ----------------------------------------------------------------------
# Legacy dict shim + ConvergenceError histogram
# ----------------------------------------------------------------------


class TestSearchStatsShim:
    def test_keyed_access_raises_with_migration_hint(self):
        result = MirsC(UNIFIED, strict=False, speculation=2).schedule(
            daxpy()
        )
        legacy = result.stats.search_stats
        with pytest.raises(ConfigError, match="SchedulerStats.search"):
            legacy["speculation"]
        with pytest.raises(ConfigError, match="removed"):
            legacy.get("missing", "d")
        # Equality, iteration and JSON stay silent (the historical uses).
        assert legacy == result.stats.search.as_dict()
        assert "launched" in set(legacy)
        json.dumps(legacy)

    def test_serial_shim_is_empty(self):
        result = MirsC(UNIFIED, strict=False, speculation=1).schedule(
            daxpy()
        )
        assert result.stats.search is None
        assert result.stats.search_stats == {}


class BoundedLinear:
    """A linear probe script capped at N attempts (never converges on a
    starved machine, so ``_give_up`` runs)."""

    name = "bounded"

    def __init__(self, attempts: int):
        self.attempts = attempts
        self._count = 0
        self._mii = None

    def first_ii(self, mii, limit):
        self._mii = mii
        self._count = 1
        return mii

    def next_ii(self, outcome):
        if outcome.scheduled or self._count >= self.attempts:
            return None
        self._count += 1
        return self._mii + self._count - 1

    def canonical(self):
        return {"name": self.name, "attempts": self.attempts}


class TestConvergenceHistogram:
    STARVED = parse_config("1-(GP8M4-REG2)")

    def test_strict_error_carries_kind_histogram(self):
        policy = BoundedLinear(3)
        with pytest.raises(ConvergenceError) as err:
            MirsC(
                self.STARVED, params=MirsParams(ii_search=policy)
            ).schedule(wide(8))
        histogram = err.value.kind_histogram
        assert sum(histogram.values()) == 3
        assert all(kind != "scheduled" for kind in histogram)
        assert "attempt outcomes:" in str(err.value)
        for kind, count in histogram.items():
            assert f"{kind}={count}" in str(err.value)

    def test_histogram_helper_sorts_kinds(self):
        entries = [{"kind": "b"}, {"kind": "a"}, {"kind": "b"}, {}]
        assert outcome_histogram(entries) == {
            "a": 1, "b": 2, "unknown": 1
        }

    def test_default_histogram_is_empty(self):
        assert ConvergenceError("gave up", last_ii=3).kind_histogram == {}


# ----------------------------------------------------------------------
# Exec engine events + summary rendering
# ----------------------------------------------------------------------


class TestExecTracing:
    def test_cache_hit_miss_instants(self, tmp_path):
        from repro.workloads.perfect import cached_suite

        machine = parse_config("2-(GP4M2-REG32)")
        loops = cached_suite(3)
        cache = ResultCache(tmp_path)

        cold = RecordingTracer()
        schedule_suite(
            machine, loops, ScheduleRequest(trace=cold),
            session=SessionConfig(cache=cache),
        )
        warm = RecordingTracer()
        schedule_suite(
            machine, loops, ScheduleRequest(trace=warm),
            session=SessionConfig(cache=cache),
        )
        cold_summary = summarize({}, [e.as_dict() for e in cold.events])
        warm_summary = summarize({}, [e.as_dict() for e in warm.events])
        assert cold_summary.cache_misses == 3
        assert cold_summary.cache_hits == 0
        assert warm_summary.cache_hits == 3
        assert warm_summary.cache_misses == 0
        # Sequential misses record their queue wait.
        assert cold_summary.instants.get("exec.queue") == 3
        suite_spans = [e for e in cold.events if e.name == "exec.suite"]
        assert len(suite_spans) == 1
        assert suite_spans[0].args["loops"] == 3

    def test_parallel_pool_merges_worker_tracks(self):
        from repro.workloads.perfect import cached_suite

        machine = parse_config("2-(GP4M2-REG32)")
        loops = cached_suite(3)
        tracer = RecordingTracer()
        run = schedule_suite(
            machine, loops, ScheduleRequest(trace=tracer),
            session=SessionConfig(jobs=2, cache=False),
        )
        untraced = schedule_suite(
            machine, loops, None, session=SessionConfig(cache=False)
        )
        assert [result_fingerprint(r) for r in run.results] == [
            result_fingerprint(r) for r in untraced.results
        ]
        worker_tids = {
            e.tid for e in tracer.events if e.tid.startswith("worker:")
        }
        assert worker_tids == {"worker:0", "worker:1", "worker:2"}
        schedules = [e for e in tracer.events if e.name == "schedule"]
        assert len(schedules) == 3


class TestSummary:
    def test_phase_coverage_and_totals(self, tmp_path):
        from repro.workloads.perfect import cached_suite

        machine = parse_config("2-(GP4M2-REG32)")
        tracer = RecordingTracer()
        scheduler = MirsC(machine, strict=False, tracer=tracer)
        for loop in cached_suite(4):
            scheduler.schedule(loop.graph)
        path = write_jsonl(tracer, tmp_path / "suite.jsonl")
        summary = summarize_file(path)
        # The phases tile each schedule span: within 5% of total wall.
        assert summary.phase_coverage == pytest.approx(1.0, abs=0.05)
        assert summary.span_counts["schedule"] == 4
        assert len(summary.attempts) >= 4
        rendered = summary.render()
        assert "Per-phase time breakdown" in rendered
        assert "phase.search" in rendered
        assert "Attempt timeline" in rendered


class TestCliTrace:
    def test_schedule_trace_then_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        assert main(
            ["schedule", "--config", "1-(GP8M4-REG64)", "--loop", "2",
             "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        assert path.exists()
        assert chrome_path_for(path).exists()
        assert validate_trace_file(path) == []
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase time breakdown" in out
        assert "Attempt timeline" in out

    def test_summary_rejects_invalid_traces(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"schema": 999}) + "\n")
        assert main(["trace", "summary", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err
