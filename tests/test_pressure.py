"""Tests for the incremental register-pressure engine.

The contract under test: :class:`repro.schedule.pressure.PressureTracker`
is bit-identical to a from-scratch
:class:`~repro.schedule.lifetimes.LifetimeAnalysis` after *any* sequence
of scheduler events - placements, ejections, move insertion/removal,
spill insertion, invariant spilling, pressure balancing - on unified and
clustered machines alike.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mirsc import MirsC
from repro.errors import SchedulingError
from repro.schedule import pressure as pressure_module
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.pressure import PressureTracker
from repro.spill.heuristics import check_and_insert_spill
from repro.workloads.perfect import cached_suite

from tests.helpers import (
    FOUR_CLUSTER_TIGHT,
    TWO_CLUSTER,
    UNIFIED,
    UNIFIED_SMALL,
    daxpy,
    random_graph,
)
from tests.helpers import eject_random as _eject_random
from tests.helpers import fresh_state as _fresh_state
from tests.helpers import place_random as _place_random

MACHINES = [UNIFIED_SMALL, TWO_CLUSTER, FOUR_CLUSTER_TIGHT]


class TestRandomizedEventSequences:
    """Property: tracker == scratch analysis after every event mix."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_tracker_bit_identical_after_random_events(self, seed):
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = _fresh_state(seed, machine)
        for _ in range(25):
            roll = rng.random()
            try:
                if roll < 0.55:
                    _place_random(state, rng)
                elif roll < 0.75:
                    _eject_random(state, rng)
                else:
                    check_and_insert_spill(
                        state, final=rng.random() < 0.3
                    )
            except SchedulingError:
                break  # livelock guards may fire on adversarial orders
            state.pressure.assert_matches_scratch()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_tracker_attaches_to_partial_schedules(self, seed):
        """A tracker built over an already-partial schedule is exact."""
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = _fresh_state(seed, machine)
        for _ in range(6):
            _place_random(state, rng)
        late = PressureTracker(
            state.graph, state.schedule, machine, state.spilled_invariants
        )
        try:
            late.assert_matches_scratch()
        finally:
            late.detach()


class TestSchedulerEquivalence:
    def test_workbench_schedules_match_batch_analysis(self, monkeypatch):
        """Acceptance: the tracker is bit-identical to the from-scratch
        analysis after *every* event of whole MIRS-C runs over the
        16-loop workbench, on both machine configurations."""
        monkeypatch.setattr(pressure_module, "SELF_CHECK", True)
        for machine in (UNIFIED, FOUR_CLUSTER_TIGHT):
            for loop in cached_suite(16):
                result = MirsC(machine, strict=False).schedule(loop.graph)
                assert result.converged or result.restarts > 0

    def test_hand_built_schedule_matches_scratch(self):
        """Tracker over a manually placed schedule equals the batch
        analysis query for query (rows, MaxLive, critical row,
        segments), including after an ejection."""
        from repro.schedule.partial import PartialSchedule

        graph = daxpy()
        machine = TWO_CLUSTER
        schedule = PartialSchedule(machine, ii=6)
        tracker = PressureTracker(graph, schedule, machine)
        nodes = sorted(graph.nodes(), key=lambda n: n.id)
        for offset, node in enumerate(nodes):
            schedule.place(node, offset % machine.clusters, offset * 2)
        tracker.assert_matches_scratch()
        schedule.eject(nodes[1].id)
        tracker.assert_matches_scratch()
        scratch = LifetimeAnalysis(graph, schedule, machine)
        for cluster in range(machine.clusters):
            assert tracker.max_live(cluster) == scratch.max_live(cluster)
            assert tracker.critical_row(cluster) == scratch.critical_row(
                cluster
            )
        assert tracker.segments == scratch.segments
        tracker.detach()


class TestTrackerLifecycle:
    def test_detach_stops_observing(self):
        machine = UNIFIED
        state = _fresh_state(3, machine)
        tracker = state.pressure
        assert tracker in state.graph._listeners
        assert tracker in state.schedule.listeners
        tracker.detach()
        assert tracker not in state.graph._listeners
        assert tracker not in state.schedule.listeners

    def test_graph_pickle_drops_listeners(self):
        import pickle

        state = _fresh_state(4, UNIFIED)
        rng = random.Random(4)
        _place_random(state, rng)
        clone = pickle.loads(pickle.dumps(state.graph))
        assert clone._listeners == []
        assert len(clone) == len(state.graph)

    def test_lifetime_length_of_untracked_node_is_zero(self):
        state = _fresh_state(5, UNIFIED)
        assert state.pressure.lifetime_length(10_000) == 0


@pytest.mark.parametrize("machine", [UNIFIED_SMALL, FOUR_CLUSTER_TIGHT])
def test_spill_heavy_runs_stay_identical(machine, monkeypatch):
    """Small register files force spills/ejections/balancing; every one
    of those events must keep the tracker exact."""
    monkeypatch.setattr(pressure_module, "SELF_CHECK", True)
    graph = random_graph(11, size=14)
    result = MirsC(machine, strict=False).schedule(graph)
    assert result is not None
