"""Unit tests for the scheduling step: forcing and ejection (Fig. 3)."""

from repro import LoopBuilder, MirsParams, parse_config
from repro.core.scheduling import schedule_node
from repro.core.state import SchedulerState

from tests.helpers import UNIFIED


def _state(graph, machine=UNIFIED, ii=4, params=None):
    priorities = {n.id: float(100 - n.id) for n in graph.nodes()}
    return SchedulerState(graph, machine, ii, priorities, params or MirsParams())


def _narrow_machine():
    # One memory port per cluster: easy to saturate.
    return parse_config("1-(GP8M4-REG64)")


class TestScheduleNode:
    def test_free_slot_taken_without_ejection(self):
        b = LoopBuilder("free")
        x = b.load(array=0)
        graph = b.build()
        state = _state(graph)
        assert schedule_node(state, graph.node(x.id), 0)
        assert state.schedule.is_scheduled(x.id)
        assert state.stats.ejections == 0

    def test_forcing_ejects_single_first_placed_victim(self):
        b = LoopBuilder("conflict")
        fillers = [b.load(array=i) for i in range(4)]
        blocked = b.load(array=9)
        graph = b.build()
        state = _state(graph, ii=1)  # one row, 4 mem ports
        for filler in fillers:
            state.schedule.place(graph.node(filler.id), 0, 0)
        assert schedule_node(state, graph.node(blocked.id), 0)
        assert state.stats.ejections == 1
        # The first-placed filler is the victim, back on the list.
        assert fillers[0].id in state.pl
        assert not state.schedule.is_scheduled(fillers[0].id)

    def test_eject_all_policy_evicts_more(self):
        b = LoopBuilder("conflict")
        fillers = [b.load(array=i) for i in range(4)]
        blocked = b.load(array=9)
        graph = b.build()
        params = MirsParams(eject_all=True)
        state = _state(graph, ii=1, params=params)
        for filler in fillers:
            state.schedule.place(graph.node(filler.id), 0, 0)
        assert schedule_node(state, graph.node(blocked.id), 0)
        assert state.stats.ejections >= 1

    def test_dependence_violators_are_ejected(self):
        b = LoopBuilder("dep")
        w = b.load(array=0)
        x = b.add(w)
        y = b.mul(x)
        graph = b.build()
        state = _state(graph, ii=2)
        # w at 0 gives x EarlyStart 2; y at 0 gives x LateStart -4: the
        # window is empty, so x is *forced* at its EarlyStart, violating
        # the dependence into y - which must be ejected (w is fine).
        state.schedule.place(graph.node(w.id), 0, 0)
        state.schedule.place(graph.node(y.id), 0, 0)
        assert schedule_node(state, graph.node(x.id), 0)
        assert state.schedule.time(x.id) == 2
        assert not state.schedule.is_scheduled(y.id)
        assert y.id in state.pl
        assert state.schedule.is_scheduled(w.id)

    def test_prev_cycle_steers_away_from_old_slot(self):
        b = LoopBuilder("steer")
        fillers = [b.load(array=i) for i in range(4)]
        mover = b.load(array=9)
        graph = b.build()
        state = _state(graph, ii=2)
        # Saturate row 0 with four loads.
        for filler in fillers:
            state.schedule.place(graph.node(filler.id), 0, 0)
        state.schedule.prev_cycle[mover.id] = 0
        assert schedule_node(state, graph.node(mover.id), 0)
        # Forced cycle is max(EarlyStart, prev + 1) = 1: no ejection.
        assert state.schedule.time(mover.id) == 1
        assert state.stats.ejections == 0

    def test_budget_untouched_by_schedule_node(self):
        b = LoopBuilder("b")
        x = b.load(array=0)
        graph = b.build()
        state = _state(graph)
        before = state.budget
        schedule_node(state, graph.node(x.id), 0)
        assert state.budget == before  # the driver owns the budget


class TestSchedulerDeterminism:
    def test_same_input_same_stats(self):
        from repro import MirsC

        from tests.helpers import daxpy

        first = MirsC(UNIFIED).schedule(daxpy())
        second = MirsC(UNIFIED).schedule(daxpy())
        assert first.stats.ejections == second.stats.ejections
        assert first.stats.forced_placements == second.stats.forced_placements
