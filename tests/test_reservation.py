"""Unit tests for reservation tables."""

import pytest

from repro import OpKind, parse_config
from repro.machine.reservation import (
    ClusterRole,
    ReservationStep,
    max_occupancy,
    reservation_steps,
)
from repro.machine.resources import ResourceClass


@pytest.fixture
def machine():
    return parse_config("2-(GP4M2-REG64)", move_latency=3)


class TestComputeSteps:
    def test_pipelined_compute_single_slot(self, machine):
        steps = reservation_steps(OpKind.ADD, machine)
        assert len(steps) == 1
        step = steps[0]
        assert step.resource is ResourceClass.GP_FU
        assert step.role is ClusterRole.SELF
        assert step.duration == 1

    def test_unpipelined_compute_full_occupancy(self, machine):
        div = reservation_steps(OpKind.DIV, machine)[0]
        assert div.duration == 17
        assert div.same_instance == 1
        sqrt = reservation_steps(OpKind.SQRT, machine)[0]
        assert sqrt.duration == 30

    def test_memory_uses_port(self, machine):
        for kind in (OpKind.LOAD, OpKind.STORE):
            steps = reservation_steps(kind, machine)
            assert len(steps) == 1
            assert steps[0].resource is ResourceClass.MEM_PORT


class TestMoveSteps:
    def test_move_is_coupled_send_receive(self, machine):
        steps = reservation_steps(OpKind.MOVE, machine)
        resources = {s.resource for s in steps}
        assert resources == {
            ResourceClass.OUT_PORT, ResourceClass.BUS, ResourceClass.IN_PORT
        }

    def test_move_receive_offset_is_latency_minus_one(self, machine):
        steps = {
            s.resource: s for s in reservation_steps(OpKind.MOVE, machine)
        }
        assert steps[ResourceClass.OUT_PORT].offset == 0
        assert steps[ResourceClass.BUS].offset == 0
        assert steps[ResourceClass.IN_PORT].offset == machine.move_latency - 1

    def test_move_sides(self, machine):
        steps = {
            s.resource: s for s in reservation_steps(OpKind.MOVE, machine)
        }
        assert steps[ResourceClass.OUT_PORT].role is ClusterRole.SOURCE
        assert steps[ResourceClass.IN_PORT].role is ClusterRole.SELF
        assert steps[ResourceClass.BUS].role is ClusterRole.GLOBAL


class TestRows:
    def test_rows_wrap_modulo_ii(self):
        step = ReservationStep(
            resource=ResourceClass.GP_FU,
            role=ClusterRole.SELF,
            offset=3,
            duration=4,
        )
        assert step.rows(5) == [3, 4, 0, 1]

    def test_max_occupancy(self, machine):
        assert max_occupancy(machine, {OpKind.ADD, OpKind.MUL}) == 1
        assert max_occupancy(machine, {OpKind.ADD, OpKind.DIV}) == 17
        assert max_occupancy(machine, {OpKind.SQRT, OpKind.DIV}) == 30
        assert max_occupancy(machine, {OpKind.LOAD}) == 1
