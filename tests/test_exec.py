"""Tests for the suite-execution engine (repro.exec).

Pins the PR's contract: parallel sharding changes nothing but
wall-clock; the on-disk cache returns identical results without
re-invoking the scheduler; and cache keys react to every semantic
input.
"""

import pytest

from repro.core.mirsc import MirsC
from repro.core.params import MirsParams
from repro.core.request import SessionConfig
from repro.errors import ConfigError
from repro.eval.experiments import table1_rows
from repro.eval.runner import bench_loop_count, bench_suite, schedule_suite
from repro.exec import (
    ResultCache,
    SuiteExecutor,
    cache_key,
    resolve_cache,
    resolve_jobs,
    result_fingerprint,
)
from repro.machine.config import paper_configuration
from repro.workloads.perfect import cached_suite

LOOPS = cached_suite(4)
MACHINE = paper_configuration(2, 32)


def fingerprints(results):
    return [result_fingerprint(r) for r in results]


class TestParallelEqualsSequential:
    def test_jobs4_matches_jobs1_cold_cache(self, monkeypatch):
        # Acceptance criterion: the *default 16-loop workbench*, cache
        # cold, jobs=4 vs jobs=1, identical results loop for loop.
        monkeypatch.delenv("REPRO_BENCH_LOOPS", raising=False)
        workbench = bench_suite()
        assert len(workbench) == 16
        sequential = SuiteExecutor(jobs=1, cache=False)
        parallel = SuiteExecutor(jobs=4, cache=False)
        seq = sequential.run(MACHINE, workbench)
        par = parallel.run(MACHINE, workbench)
        # Loop-for-loop identity on every deterministic field.
        assert fingerprints(seq) == fingerprints(par)
        assert sequential.stats.scheduled == len(workbench)
        assert parallel.stats.scheduled == len(workbench)

    def test_parallel_baseline_scheduler(self):
        machine = paper_configuration(2, None)
        seq = SuiteExecutor(jobs=1, cache=False).run(machine, LOOPS, "baseline")
        par = SuiteExecutor(jobs=3, cache=False).run(machine, LOOPS, "baseline")
        assert fingerprints(seq) == fingerprints(par)

    def test_schedule_suite_session_jobs(self):
        seq = schedule_suite(
            MACHINE, LOOPS, "mirsc", session=SessionConfig(jobs=1)
        )
        par = schedule_suite(
            MACHINE, LOOPS, "mirsc", session=SessionConfig(jobs=2)
        )
        assert fingerprints(seq.results) == fingerprints(par.results)

    def test_legacy_kwargs_raise_with_migration_hint(self):
        with pytest.raises(ConfigError, match="jobs.*removed.*SessionConfig"):
            schedule_suite(MACHINE, LOOPS, "mirsc", jobs=1)
        with pytest.raises(ConfigError, match="search.*ScheduleRequest"):
            schedule_suite(MACHINE, LOOPS, "mirsc", search="linear")
        # The historical 4th positional (params) is rejected the same way.
        with pytest.raises(ConfigError, match="params"):
            schedule_suite(MACHINE, LOOPS, "mirsc", MirsParams())

    def test_unknown_scheduler_rejected_before_any_work(self):
        with pytest.raises(ValueError):
            SuiteExecutor(jobs=4, cache=False).run(MACHINE, LOOPS, "magic")


class TestCache:
    def test_warm_cache_skips_scheduler(self, tmp_path, monkeypatch):
        cold = SuiteExecutor(cache=ResultCache(tmp_path))
        first = cold.run(MACHINE, LOOPS)
        assert cold.stats.scheduled == len(LOOPS)
        assert cold.stats.cache_hits == 0

        # Second run: the scheduler must not be invoked at all.
        calls = []
        original = MirsC.schedule

        def counting(self, graph):
            calls.append(graph.name)
            return original(self, graph)

        monkeypatch.setattr(MirsC, "schedule", counting)
        warm = SuiteExecutor(cache=ResultCache(tmp_path))
        second = warm.run(MACHINE, LOOPS)
        assert calls == []
        assert warm.stats.scheduled == 0
        assert warm.stats.cache_hits == len(LOOPS)
        assert fingerprints(first) == fingerprints(second)

    def test_warm_cache_skips_smt_scheduler(self, tmp_path, monkeypatch):
        """The exact backend's results (oracle dict included) round-trip
        through the on-disk cache; a warm rerun never invokes it."""
        from tests.helpers import UNIFIED, daxpy

        from repro.smt.scheduler import SmtScheduler

        loops = [daxpy()]
        cold = SuiteExecutor(cache=ResultCache(tmp_path))
        first = cold.run(UNIFIED, loops, "smt")
        assert cold.stats.scheduled == 1
        assert first[0].oracle is not None
        assert first[0].oracle["status"] == "optimal"

        calls = []
        original = SmtScheduler.schedule

        def counting(self, graph):
            calls.append(graph.name)
            return original(self, graph)

        monkeypatch.setattr(SmtScheduler, "schedule", counting)
        warm = SuiteExecutor(cache=ResultCache(tmp_path))
        second = warm.run(UNIFIED, loops, "smt")
        assert calls == []
        assert warm.stats.cache_hits == 1
        assert fingerprints(first) == fingerprints(second)
        # The oracle certificates survive the cache round-trip intact.
        assert second[0].oracle == first[0].oracle

    def test_warm_cache_parallel_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        SuiteExecutor(jobs=2, cache=cache).run(MACHINE, LOOPS)
        warm = SuiteExecutor(jobs=2, cache=cache)
        warm.run(MACHINE, LOOPS)
        assert warm.stats.scheduled == 0

    def test_driver_second_run_zero_invocations(self, tmp_path, monkeypatch):
        """Acceptance: a warm-cache rerun of a table driver schedules nothing."""
        loops = cached_suite(2)
        kwargs = dict(clusters=(1,), move_latencies=(1,))
        first = table1_rows(
            loops, session=SuiteExecutor(cache=ResultCache(tmp_path)), **kwargs
        )
        monkeypatch.setattr(
            MirsC,
            "schedule",
            lambda self, graph: pytest.fail("scheduler invoked on warm cache"),
        )
        warm = SuiteExecutor(cache=ResultCache(tmp_path))
        second = table1_rows(loops, session=warm, **kwargs)
        assert warm.stats.scheduled == 0
        assert first == second

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(LOOPS[0].graph, MACHINE, None, "mirsc")
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert key not in cache

    def test_put_get_roundtrip_and_maintenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = MirsC(MACHINE).schedule(LOOPS[0].graph.clone())
        key = cache_key(LOOPS[0].graph, MACHINE, None, "mirsc")
        cache.put(key, result)
        assert key in cache
        assert result_fingerprint(cache.get(key)) == result_fingerprint(result)
        assert len(cache) == 1
        assert cache.stats().total_bytes > 0
        assert cache.clear() == 1
        assert len(cache) == 0


class TestPickleDeterminism:
    def test_pickle_roundtrip_schedules_identically(self):
        """A graph shipped to a worker via pickle must schedule exactly
        like the in-process original (pickling reorders the consumers
        sets, which once swapped the spill-load insertion order)."""
        import pickle

        machine = paper_configuration(2, 32)
        # The first six workbench loops include dense235, the loop whose
        # invariant spills exposed the original nondeterminism.
        for loop in bench_suite()[:6]:
            copy = pickle.loads(pickle.dumps(loop.graph))
            a = MirsC(machine, strict=False).schedule(loop.graph)
            b = MirsC(machine, strict=False).schedule(copy)
            assert result_fingerprint(a) == result_fingerprint(b), loop.graph.name


class TestCacheKeys:
    def test_key_stable_across_graph_copies(self):
        graph = LOOPS[0].graph
        assert cache_key(graph, MACHINE, None, "mirsc") == cache_key(
            graph.clone(), MACHINE, MirsParams(), "mirsc"
        )

    def test_key_changes_with_machine(self):
        graph = LOOPS[0].graph
        base = cache_key(graph, MACHINE, None, "mirsc")
        assert base != cache_key(graph, paper_configuration(4, 16), None, "mirsc")
        assert base != cache_key(graph, MACHINE.with_registers(64), None, "mirsc")
        assert base != cache_key(graph, MACHINE.with_move_latency(3), None, "mirsc")
        assert base != cache_key(graph, MACHINE.with_buses(None), None, "mirsc")

    def test_key_changes_with_params(self):
        graph = LOOPS[0].graph
        base = cache_key(graph, MACHINE, MirsParams(), "mirsc")
        assert base != cache_key(
            graph, MACHINE, MirsParams(budget_ratio=4), "mirsc"
        )
        assert base != cache_key(
            graph, MACHINE, MirsParams(spill_gauge=3.0), "mirsc"
        )

    def test_key_changes_with_scheduler_and_graph(self):
        graph = LOOPS[0].graph
        base = cache_key(graph, MACHINE, None, "mirsc")
        assert base != cache_key(graph, MACHINE, None, "baseline")
        assert base != cache_key(LOOPS[1].graph, MACHINE, None, "mirsc")

    def test_key_distinguishes_smt_backend_and_its_params(self):
        from repro.core.params import SmtParams

        graph = LOOPS[0].graph
        heuristic = cache_key(graph, MACHINE, None, "mirsc")
        exact = cache_key(graph, MACHINE, None, "smt")
        assert heuristic != exact
        # Every SmtParams knob is part of the problem's identity.
        assert exact != cache_key(
            graph, MACHINE, MirsParams(smt=SmtParams(step_budget=1)), "smt"
        )
        assert exact != cache_key(
            graph, MACHINE, MirsParams(smt=SmtParams(horizon_stages=5)), "smt"
        )
        assert exact != cache_key(
            graph,
            MACHINE,
            MirsParams(smt=SmtParams(register_bound=False)),
            "smt",
        )

    def test_smt_canonical_resolves_auto_engine(self):
        from repro.core.params import SmtParams

        # "auto" would alias environments with and without z3; the
        # canonical form (and thus every cache key) pins the resolved
        # engine instead.
        payload = MirsParams(smt=SmtParams()).canonical()["smt"]
        assert payload["engine"] in ("native", "z3")
        # params=None defaults must also key identically to explicit
        # defaults under the smt scheduler.
        graph = LOOPS[0].graph
        assert cache_key(graph, MACHINE, None, "smt") == cache_key(
            graph, MACHINE, MirsParams(), "smt"
        )

    def test_key_changes_with_unroll_provenance(self):
        """Different source loops can unroll into the same body and trip
        count (trips 10 and 12 both unroll by 3 into trip 4); the
        simulator's surplus-iteration reporting depends on the source
        trip, so the keys must not alias."""
        import warnings

        from repro import LoopBuilder
        from repro.workloads.unroll import unroll

        def unrolled(trip):
            b = LoopBuilder("prov", trip_count=trip)
            b.store(b.add(b.load(array=0)), array=1)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return unroll(b.build(), 3)

        a, b = unrolled(10), unrolled(12)
        assert a.trip_count == b.trip_count == 4
        assert cache_key(a, MACHINE, None, "mirsc") != cache_key(
            b, MACHINE, None, "mirsc"
        )


class TestResolvers:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs(None) == 1

    def test_resolve_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True) is not None
        explicit = ResultCache(tmp_path)
        assert resolve_cache(explicit) is explicit
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache(None).directory == tmp_path
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_cache(None) is None
        assert resolve_cache(True) is None

    def test_bench_loop_count_malformed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_LOOPS", "many")
        with pytest.warns(RuntimeWarning):
            assert bench_loop_count(7) == 7
        monkeypatch.setenv("REPRO_BENCH_LOOPS", "9")
        assert bench_loop_count(7) == 9
        monkeypatch.delenv("REPRO_BENCH_LOOPS")
        assert bench_loop_count(7) == 7


class TestProgressAndHistory:
    def test_progress_callback_and_suite_summary(self, tmp_path):
        seen = []
        executor = SuiteExecutor(
            cache=ResultCache(tmp_path),
            progress=lambda done, total, name, hit: seen.append(
                (done, total, hit)
            ),
        )
        executor.run(MACHINE, LOOPS)
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(not hit for _, _, hit in seen)
        executor.run(MACHINE, LOOPS)
        assert [hit for _, _, hit in seen[4:]] == [True] * 4

        assert len(executor.history) == 2
        summary = executor.history[1]
        assert summary.cache_hits == 4
        assert summary.scheduled == 0
        assert summary.machine == MACHINE.name
        assert summary.sum_ii == executor.history[0].sum_ii
        payload = summary.as_dict()
        assert payload["scheduler"] == "mirsc"
        assert executor.stats.hit_rate == 0.5
