"""Unit tests for the PriorityList."""

import pytest

from repro import SchedulingError
from repro.core.priority import PriorityList


class TestPriorityList:
    def test_pops_highest_priority_first(self):
        pl = PriorityList()
        pl.push(1, 5.0)
        pl.push(2, 9.0)
        pl.push(3, 7.0)
        assert [pl.pop(), pl.pop(), pl.pop()] == [2, 3, 1]

    def test_fifo_tie_break(self):
        pl = PriorityList()
        pl.push(10, 1.0)
        pl.push(20, 1.0)
        assert pl.pop() == 10
        assert pl.pop() == 20

    def test_repush_uses_original_priority(self):
        pl = PriorityList()
        pl.push(1, 5.0)
        pl.push(2, 3.0)
        popped = pl.pop()
        assert popped == 1
        pl.push(1)  # ejected: back with original priority
        assert pl.pop() == 1

    def test_push_without_priority_requires_registration(self):
        pl = PriorityList()
        with pytest.raises(SchedulingError):
            pl.push(99)

    def test_double_push_is_idempotent(self):
        pl = PriorityList()
        pl.push(1, 2.0)
        pl.push(1, 2.0)
        assert len(pl) == 1
        pl.pop()
        assert pl.empty()

    def test_discard(self):
        pl = PriorityList()
        pl.push(1, 1.0)
        pl.push(2, 2.0)
        pl.discard(2)
        assert 2 not in pl
        assert pl.pop() == 1
        assert pl.empty()

    def test_pop_empty_rejected(self):
        pl = PriorityList()
        with pytest.raises(SchedulingError):
            pl.pop()

    def test_membership_and_len(self):
        pl = PriorityList()
        pl.push(4, 1.0)
        assert 4 in pl
        assert len(pl) == 1
        assert not pl.empty()
