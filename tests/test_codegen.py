"""Tests for VLIW code generation (prologue / kernel / epilogue + MVE)."""

import dataclasses

import pytest

from repro import LoopBuilder, MirsC, parse_config
from repro.codegen import generate_code, modulo_variable_expansion_factor
from repro.graph.ddg import DepKind

from tests.helpers import UNIFIED, daxpy, random_graph


def instance_counts(bundles):
    counts = {}
    for bundle in bundles:
        for inst in bundle:
            counts[inst.node] = counts.get(inst.node, 0) + 1
    return counts


def assert_fill_drain_invariant(result, code):
    """A stage-s op appears SC-1-s times in the prologue, once per
    kernel copy, and s times in the epilogue."""
    low = min(result.times.values())
    pro = instance_counts(code.prologue)
    ker = instance_counts(code.kernel)
    epi = instance_counts(code.epilogue)
    for node_id, cycle in result.times.items():
        stage = (cycle - low) // result.ii
        assert pro.get(node_id, 0) == code.stage_count - 1 - stage
        assert ker.get(node_id, 0) == code.mve_factor
        assert epi.get(node_id, 0) == stage


@pytest.fixture
def daxpy_code():
    result = MirsC(UNIFIED).schedule(daxpy())
    return result, generate_code(result)


class TestStructure:
    def test_kernel_length(self, daxpy_code):
        result, code = daxpy_code
        assert len(code.kernel) == result.ii * code.mve_factor
        assert code.kernel_cycles == result.ii * code.mve_factor

    def test_prologue_epilogue_lengths(self, daxpy_code):
        result, code = daxpy_code
        fill = result.ii * (code.stage_count - 1)
        assert len(code.prologue) == fill
        assert len(code.epilogue) == fill

    def test_every_node_once_per_kernel_copy(self, daxpy_code):
        result, code = daxpy_code
        counts = {}
        for bundle in code.kernel:
            for inst in bundle:
                counts[inst.node] = counts.get(inst.node, 0) + 1
        for node in result.graph.nodes():
            assert counts[node.id] == code.mve_factor

    def test_fill_drain_invariant(self, daxpy_code):
        """A stage-s op appears SC-1-s times in the prologue and s times
        in the epilogue."""
        result, code = daxpy_code
        sc = code.stage_count
        stage_of = {}
        low = min(result.times.values())
        for node_id, cycle in result.times.items():
            stage_of[node_id] = (cycle - low) // result.ii
        pro = {}
        for bundle in code.prologue:
            for inst in bundle:
                pro[inst.node] = pro.get(inst.node, 0) + 1
        epi = {}
        for bundle in code.epilogue:
            for inst in bundle:
                epi[inst.node] = epi.get(inst.node, 0) + 1
        for node_id, stage in stage_of.items():
            assert pro.get(node_id, 0) == sc - 1 - stage
            assert epi.get(node_id, 0) == stage

    def test_render_is_complete(self, daxpy_code):
        _, code = daxpy_code
        text = code.render()
        assert "prologue:" in text
        assert "kernel:" in text
        assert "epilogue:" in text
        assert "II=" in text


class TestMVE:
    def test_short_lifetimes_need_no_expansion(self):
        b = LoopBuilder("short")
        x = b.load(array=0)
        b.store(x, array=1)
        graph = b.build()
        result = MirsC(UNIFIED).schedule(graph)
        if all(
            lt <= result.ii
            for lt in (result.times[1] - result.times[0],)
        ):
            assert modulo_variable_expansion_factor(result) >= 1

    def test_expansion_matches_longest_lifetime(self):
        # DAXPY at II=1 overlaps many iterations: K = longest lifetime.
        result = MirsC(UNIFIED).schedule(daxpy())
        factor = modulo_variable_expansion_factor(result)
        assert factor >= 2  # 4-cycle latencies at II=1 overlap deeply
        code = generate_code(result)
        assert code.mve_factor == factor

    def test_expanded_values_get_renamed_registers(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        if code.mve_factor > 1:
            names = {
                inst.dest
                for inst in code.all_instructions()
                if inst.dest and ".k" in inst.dest
            }
            assert names, "expanded registers must carry copy suffixes"

    def test_rejects_unconverged(self):
        from repro.core.result import ScheduleResult
        from repro.errors import CodegenError

        bogus = ScheduleResult(
            loop="x", machine=UNIFIED, converged=False, ii=1, mii=1
        )
        # Still a ValueError (backward compatibility), but typed: batch
        # drivers read the loop and failure kind off the exception.
        with pytest.raises(ValueError) as excinfo:
            generate_code(bogus)
        assert isinstance(excinfo.value, CodegenError)
        assert excinfo.value.loop == "x"
        assert excinfo.value.kind == "not-converged"

    def test_rejects_register_infeasible(self):
        """A 'converged' schedule whose allocation cannot fit the
        register file must raise instead of emitting clobbered code."""
        from repro.errors import CodegenError

        result = MirsC(UNIFIED).schedule(daxpy())
        starved = dataclasses.replace(
            result, machine=UNIFIED.with_registers(1)
        )
        with pytest.raises(ValueError, match="register-infeasible") as excinfo:
            generate_code(starved)
        assert isinstance(excinfo.value, CodegenError)
        assert excinfo.value.loop == result.loop
        assert excinfo.value.kind == "register-infeasible"


class TestDeepExpansion:
    """Instance-count and renaming invariants at MVE factors >= 3."""

    @pytest.fixture(scope="class")
    def deep_code(self):
        # DAXPY at II=1 on the unified machine overlaps 4-cycle
        # latencies deeply: the MVE factor lands well above 3.
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        assert code.mve_factor >= 3, "fixture must exercise deep MVE"
        return result, code

    def test_fill_drain_invariant_at_deep_mve(self, deep_code):
        result, code = deep_code
        assert_fill_drain_invariant(result, code)

    def test_copy_labels_agree_across_pipeline_boundaries(self, deep_code):
        """For every REG edge and iteration, the consumer reads exactly
        the copy its producer's instance was labeled with — including
        across the prologue/kernel and kernel/epilogue boundaries (a
        shift bug here emits reads of never-written renamed registers
        whenever (SC-1) % MVE != 0)."""
        result, code = deep_code
        ii, sc, mve = code.ii, code.stage_count, code.mve_factor
        assert (sc - 1) % mve != 0, "fixture must cross-label boundaries"
        label = {}

        def scan(bundles, base_block):
            for cycle, bundle in enumerate(bundles):
                block = base_block + cycle // ii
                for inst in bundle:
                    label[(inst.node, block - inst.stage)] = inst.copy

        scan(code.prologue, 0)
        scan(code.kernel, sc - 1)           # first kernel pass
        scan(code.kernel, sc - 1 + mve)     # second pass, same bundles
        scan(code.epilogue, sc - 1 + 2 * mve)
        checked = 0
        for edge in result.graph.edges():
            if edge.kind is not DepKind.REG:
                continue
            for (node, iteration), copy in label.items():
                if node != edge.dst:
                    continue
                producer = (edge.src, iteration - edge.distance)
                if producer not in label:
                    continue
                assert label[producer] == (copy - edge.distance) % mve
                checked += 1
        assert checked > 0


class TestDegenerateLoops:
    def test_store_only_loop(self):
        """A loop that only stores invariants emits valid code."""
        b = LoopBuilder("store_only", trip_count=64)
        value = b.invariant("v")
        b.store(value, array=0)
        b.store(value, array=1, stride=2)
        result = MirsC(UNIFIED).schedule(b.build())
        code = generate_code(result)
        assert_fill_drain_invariant(result, code)
        instructions = code.all_instructions()
        assert instructions
        assert all(inst.dest is None for inst in instructions)
        assert all(
            source.startswith("inv:")
            for inst in instructions
            for source in inst.sources
        )

    def test_invariant_only_loop(self):
        """Compute over invariants only: no loads, no loop-carried state."""
        b = LoopBuilder("inv_only", trip_count=64)
        a = b.invariant("a")
        c = b.invariant("c")
        total = b.add(b.mul(a, c), a)
        b.store(total, array=0)
        result = MirsC(UNIFIED).schedule(b.build())
        code = generate_code(result)
        assert_fill_drain_invariant(result, code)
        sources = {
            s for inst in code.all_instructions() for s in inst.sources
        }
        assert "inv:a" in sources and "inv:c" in sources


class TestRegisterNaming:
    def test_operands_reference_defined_registers(self, daxpy_code):
        result, code = daxpy_code
        defined = {
            inst.dest for inst in code.all_instructions() if inst.dest
        }
        for inst in code.all_instructions():
            for source in inst.sources:
                if source.startswith("inv:"):
                    continue
                base = source
                assert base in defined or base.split(".k")[0] in {
                    d.split(".k")[0] for d in defined
                }

    def test_invariant_operands_named(self, daxpy_code):
        _, code = daxpy_code
        sources = {
            s for inst in code.all_instructions() for s in inst.sources
        }
        assert any(s.startswith("inv:") for s in sources)

    def test_clustered_codegen(self):
        machine = parse_config("2-(GP4M2-REG32)")
        result = MirsC(machine).schedule(daxpy())
        code = generate_code(result)
        clusters = {inst.cluster for inst in code.all_instructions()}
        assert clusters <= {0, 1}
        moves = [
            inst for inst in code.all_instructions()
            if inst.mnemonic == "move"
        ]
        assert len(moves) == result.move_operations * (
            code.mve_factor + code.stage_count - 1
        ) or result.move_operations == 0 or moves

    def test_codegen_on_random_graphs(self):
        for seed in range(5):
            graph = random_graph(seed, size=8)
            result = MirsC(UNIFIED).schedule(graph)
            code = generate_code(result)
            # Conservation: every op appears SC-1 times in fill+drain.
            pro_epi = {}
            for bundle in code.prologue + code.epilogue:
                for inst in bundle:
                    pro_epi[inst.node] = pro_epi.get(inst.node, 0) + 1
            for node in graph.nodes():
                assert pro_epi.get(node.id, 0) == code.stage_count - 1
