"""Tests for VLIW code generation (prologue / kernel / epilogue + MVE)."""

import pytest

from repro import LoopBuilder, MirsC, parse_config
from repro.codegen import generate_code, modulo_variable_expansion_factor

from tests.helpers import UNIFIED, daxpy, random_graph


@pytest.fixture
def daxpy_code():
    result = MirsC(UNIFIED).schedule(daxpy())
    return result, generate_code(result)


class TestStructure:
    def test_kernel_length(self, daxpy_code):
        result, code = daxpy_code
        assert len(code.kernel) == result.ii * code.mve_factor
        assert code.kernel_cycles == result.ii * code.mve_factor

    def test_prologue_epilogue_lengths(self, daxpy_code):
        result, code = daxpy_code
        fill = result.ii * (code.stage_count - 1)
        assert len(code.prologue) == fill
        assert len(code.epilogue) == fill

    def test_every_node_once_per_kernel_copy(self, daxpy_code):
        result, code = daxpy_code
        counts = {}
        for bundle in code.kernel:
            for inst in bundle:
                counts[inst.node] = counts.get(inst.node, 0) + 1
        for node in result.graph.nodes():
            assert counts[node.id] == code.mve_factor

    def test_fill_drain_invariant(self, daxpy_code):
        """A stage-s op appears SC-1-s times in the prologue and s times
        in the epilogue."""
        result, code = daxpy_code
        sc = code.stage_count
        stage_of = {}
        low = min(result.times.values())
        for node_id, cycle in result.times.items():
            stage_of[node_id] = (cycle - low) // result.ii
        pro = {}
        for bundle in code.prologue:
            for inst in bundle:
                pro[inst.node] = pro.get(inst.node, 0) + 1
        epi = {}
        for bundle in code.epilogue:
            for inst in bundle:
                epi[inst.node] = epi.get(inst.node, 0) + 1
        for node_id, stage in stage_of.items():
            assert pro.get(node_id, 0) == sc - 1 - stage
            assert epi.get(node_id, 0) == stage

    def test_render_is_complete(self, daxpy_code):
        _, code = daxpy_code
        text = code.render()
        assert "prologue:" in text
        assert "kernel:" in text
        assert "epilogue:" in text
        assert "II=" in text


class TestMVE:
    def test_short_lifetimes_need_no_expansion(self):
        b = LoopBuilder("short")
        x = b.load(array=0)
        b.store(x, array=1)
        graph = b.build()
        result = MirsC(UNIFIED).schedule(graph)
        if all(
            lt <= result.ii
            for lt in (result.times[1] - result.times[0],)
        ):
            assert modulo_variable_expansion_factor(result) >= 1

    def test_expansion_matches_longest_lifetime(self):
        # DAXPY at II=1 overlaps many iterations: K = longest lifetime.
        result = MirsC(UNIFIED).schedule(daxpy())
        factor = modulo_variable_expansion_factor(result)
        assert factor >= 2  # 4-cycle latencies at II=1 overlap deeply
        code = generate_code(result)
        assert code.mve_factor == factor

    def test_expanded_values_get_renamed_registers(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        if code.mve_factor > 1:
            names = {
                inst.dest
                for inst in code.all_instructions()
                if inst.dest and ".k" in inst.dest
            }
            assert names, "expanded registers must carry copy suffixes"

    def test_rejects_unconverged(self):
        from repro.core.result import ScheduleResult

        bogus = ScheduleResult(
            loop="x", machine=UNIFIED, converged=False, ii=1, mii=1
        )
        with pytest.raises(ValueError):
            generate_code(bogus)


class TestRegisterNaming:
    def test_operands_reference_defined_registers(self, daxpy_code):
        result, code = daxpy_code
        defined = {
            inst.dest for inst in code.all_instructions() if inst.dest
        }
        for inst in code.all_instructions():
            for source in inst.sources:
                if source.startswith("inv:"):
                    continue
                base = source
                assert base in defined or base.split(".k")[0] in {
                    d.split(".k")[0] for d in defined
                }

    def test_invariant_operands_named(self, daxpy_code):
        _, code = daxpy_code
        sources = {
            s for inst in code.all_instructions() for s in inst.sources
        }
        assert any(s.startswith("inv:") for s in sources)

    def test_clustered_codegen(self):
        machine = parse_config("2-(GP4M2-REG32)")
        result = MirsC(machine).schedule(daxpy())
        code = generate_code(result)
        clusters = {inst.cluster for inst in code.all_instructions()}
        assert clusters <= {0, 1}
        moves = [
            inst for inst in code.all_instructions()
            if inst.mnemonic == "move"
        ]
        assert len(moves) == result.move_operations * (
            code.mve_factor + code.stage_count - 1
        ) or result.move_operations == 0 or moves

    def test_codegen_on_random_graphs(self):
        for seed in range(5):
            graph = random_graph(seed, size=8)
            result = MirsC(UNIFIED).schedule(graph)
            code = generate_code(result)
            # Conservation: every op appears SC-1 times in fill+drain.
            pro_epi = {}
            for bundle in code.prologue + code.epilogue:
                for inst in bundle:
                    pro_epi[inst.node] = pro_epi.get(inst.node, 0) + 1
            for node in graph.nodes():
                assert pro_epi.get(node.id, 0) == code.stage_count - 1
