"""Unit tests for the modulo reservation table."""

import pytest

from repro import DependenceGraph, OpKind, SchedulingError, parse_config
from repro.machine.resources import ResourceClass
from repro.schedule.mrt import ModuloReservationTable


@pytest.fixture
def machine():
    return parse_config("2-(GP4M2-REG64)", move_latency=3, buses=1)


@pytest.fixture
def graph():
    return DependenceGraph("t")


def _node(graph, kind, **attrs):
    return graph.new_node(kind, **attrs)


class TestBasicPlacement:
    def test_place_and_remove(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=4)
        node = _node(graph, OpKind.ADD)
        assert mrt.can_place(node, 0, 0)
        mrt.place(node, 0, 0)
        assert mrt.holds(node.id)
        mrt.remove(node.id)
        assert not mrt.holds(node.id)

    def test_capacity_per_row(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=1)
        # 4 GP units per cluster: exactly 4 adds fit in row 0.
        for i in range(4):
            node = _node(graph, OpKind.ADD)
            assert mrt.can_place(node, 0, 0)
            mrt.place(node, 0, 0)
        extra = _node(graph, OpKind.ADD)
        assert not mrt.can_place(extra, 0, 0)
        # ...but the other cluster is free.
        assert mrt.can_place(extra, 1, 0)

    def test_modulo_wrapping(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=3)
        first = _node(graph, OpKind.LOAD)
        mrt.place(first, 0, 2)
        # Cycle 5 maps to the same row (5 mod 3 == 2): with 2 mem ports
        # one more load fits, a third does not.
        second = _node(graph, OpKind.LOAD)
        mrt.place(second, 0, 5)
        third = _node(graph, OpKind.LOAD)
        assert not mrt.can_place(third, 0, 8)

    def test_double_place_rejected(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=4)
        node = _node(graph, OpKind.ADD)
        mrt.place(node, 0, 0)
        with pytest.raises(SchedulingError):
            mrt.place(node, 0, 1)

    def test_remove_unknown_rejected(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=4)
        with pytest.raises(SchedulingError):
            mrt.remove(12345)


class TestUnpipelined:
    def test_div_blocks_one_unit_for_latency_rows(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=17)
        div = _node(graph, OpKind.DIV)
        mrt.place(div, 0, 0)
        # All 17 rows of one FU are taken; 3 more divs fit (4 units)...
        for _ in range(3):
            other = _node(graph, OpKind.DIV)
            assert mrt.can_place(other, 0, 5)
            mrt.place(other, 0, 5)
        # ...the fifth does not.
        assert not mrt.can_place(_node(graph, OpKind.DIV), 0, 3)
        # Pipelined work no longer fits anywhere in this cluster's units.
        assert not mrt.can_place(_node(graph, OpKind.ADD), 0, 9)

    def test_self_collision_below_occupancy(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=10)
        div = _node(graph, OpKind.DIV)
        # 17-cycle occupancy cannot fit in a 10-row table.
        assert not mrt.can_place(div, 0, 0)
        assert not mrt.feasible_at_ii(div, 0)
        with pytest.raises(SchedulingError):
            mrt.blocking_nodes(div, 0, 0)


class TestMoves:
    def test_move_reserves_both_sides_and_bus(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=4)
        move = _node(graph, OpKind.MOVE, src_cluster=0)
        mrt.place(move, 1, 0, src_cluster=0)
        # Output port of cluster 0 is busy at row 0.
        blocked = _node(graph, OpKind.MOVE, src_cluster=0)
        assert not mrt.can_place(blocked, 1, 0, src_cluster=0)
        # A move in the other direction at the same row is also blocked:
        # the single bus is the bottleneck (buses=1 here).
        reverse = _node(graph, OpKind.MOVE, src_cluster=1)
        assert not mrt.can_place(reverse, 0, 0, src_cluster=1)
        # Other rows are free.
        assert mrt.can_place(blocked, 1, 1, src_cluster=0)

    def test_move_in_port_offset(self, graph):
        machine = parse_config("2-(GP4M2-REG64)", move_latency=3, buses=2)
        mrt = ModuloReservationTable(machine, ii=8)
        move = _node(graph, OpKind.MOVE, src_cluster=0)
        mrt.place(move, 1, 0, src_cluster=0)
        # The IN port of cluster 1 is busy at row (0 + 3 - 1) mod 8 = 2:
        # a second move arriving at the same row must be rejected.
        clash = _node(graph, OpKind.MOVE, src_cluster=0)
        assert not mrt.can_place(clash, 1, 0, src_cluster=0)
        assert mrt.can_place(clash, 1, 1, src_cluster=0)

    def test_unbounded_buses_never_conflict(self, graph):
        machine = parse_config("2-(GP4M2-REG64)", buses=None)
        mrt = ModuloReservationTable(machine, ii=1)
        first = _node(graph, OpKind.MOVE, src_cluster=0)
        mrt.place(first, 1, 0, src_cluster=0)
        # Out-port of cluster 0 still only fits one move per row.
        second = _node(graph, OpKind.MOVE, src_cluster=0)
        assert not mrt.can_place(second, 1, 0, src_cluster=0)

    def test_move_without_source_rejected(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=4)
        move = _node(graph, OpKind.MOVE)
        with pytest.raises(SchedulingError):
            mrt.can_place(move, 1, 0)


class TestBlockingAndOccupancy:
    def test_blocking_nodes_reports_minimal_victims(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=1)
        placed = []
        for _ in range(4):
            node = _node(graph, OpKind.ADD)
            mrt.place(node, 0, 0)
            placed.append(node.id)
        blocked = _node(graph, OpKind.ADD)
        victims = mrt.blocking_nodes(blocked, 0, 0)
        assert len(victims) == 1
        assert victims <= set(placed)

    def test_occupancy_fraction(self, machine, graph):
        mrt = ModuloReservationTable(machine, ii=2)
        assert mrt.occupancy_fraction(ResourceClass.GP_FU, 0) == 0.0
        mrt.place(_node(graph, OpKind.ADD), 0, 0)
        mrt.place(_node(graph, OpKind.ADD), 0, 1)
        # 2 slots used of 4 units x 2 rows.
        assert mrt.occupancy_fraction(ResourceClass.GP_FU, 0) == pytest.approx(
            0.25
        )
        assert mrt.occupancy_fraction(ResourceClass.GP_FU, 1) == 0.0
