"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_schedule_demo(self, capsys):
        assert main(["schedule", "--config", "1-(GP8M4-REG64)"]) == 0
        out = capsys.readouterr().out
        assert "II=" in out
        assert "daxpy" in out

    def test_schedule_with_code(self, capsys):
        assert main(
            ["schedule", "--config", "2-(GP4M2-REG32)", "--code"]
        ) == 0
        out = capsys.readouterr().out
        assert "kernel:" in out
        assert "prologue:" in out

    def test_schedule_workbench_loop(self, capsys):
        assert main(["schedule", "--loop", "5"]) == 0
        assert "II=" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--config", "2-(GP4M2-REG64)", "--loops", "3",
             "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "II MIRS-C" in out
        assert "II [31]" in out
        assert "[exec]" in out

    def test_compare_jobs_and_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["compare", "--config", "2-(GP4M2-REG64)", "--loops", "2",
                "--jobs", "2"]
        assert main(argv) == 0
        assert "cache_hits=0" in capsys.readouterr().out
        # A second run is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scheduled=0" in out
        assert "cache_hits=4" in out

    def test_cache_command(self, capsys, tmp_path):
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "--dir", str(tmp_path), "--clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_suite_statistics(self, capsys):
        assert main(["suite", "--loops", "10"]) == 0
        out = capsys.readouterr().out
        assert "mean_size" in out

    def test_technology(self, capsys):
        assert main(["technology"]) == 0
        out = capsys.readouterr().out
        assert "cycle time" in out

    def test_unbounded_buses_option(self, capsys):
        assert main(
            ["schedule", "--config", "4-(GP2M1-REG32)", "--buses", "inf"]
        ) == 0

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_demo(self, capsys):
        assert main(["simulate", "--iterations", "30"]) == 0
        out = capsys.readouterr().out
        assert "useful cycles (measured)" in out
        assert "MATCH" in out
        assert "MISMATCH" not in out

    def test_simulate_workbench_loop(self, capsys):
        assert main(
            ["simulate", "--config", "2-(GP4M2-REG32)", "--loop", "5",
             "--iterations", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "reference interpreter: MATCH" in out

    def test_simulate_rejects_non_positive_iterations(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--iterations", "0"])
        assert exc.value.code == 2
        assert "at least 1" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["schedule", "--loop", "1258"],
            ["schedule", "--loop", "-1"],
            ["simulate", "--loop", "99999"],
            ["compare", "--loops", "0"],
            ["compare", "--loops", "5000"],
        ],
    )
    def test_out_of_range_workbench_arguments(self, argv, capsys):
        """Out-of-range indices exit with a friendly argparse error
        naming the valid range instead of a raw traceback."""
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "out of range" in err
        assert "1258" in err
