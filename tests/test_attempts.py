"""The attempt-task API and the speculative parallel II search.

Covers the contracts the speculative driver's determinism rests on:

* :class:`AttemptTask` / :class:`AttemptResult` survive a pickle
  round-trip (and a real process boundary) without changing what the
  attempt computes — the precondition for racing attempts over a pool;
* the per-attempt cache key is sensitive to everything an attempt
  consumes and blind to the search policy and speculation width;
* a speculative K=4 search is fingerprint-identical to the serial
  driver on the committed workbench capture and on the stress seeds;
* losers are provably cancelled: executed attempts stay strictly below
  the serial attempt count plus the frontier width;
* :class:`ConvergenceError` reports both the last-probed and the
  highest-probed II under jumping policies.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import TWO_CLUSTER, UNIFIED, daxpy, random_graph, wide
from repro import (
    MirsC,
    MirsParams,
    ScheduleRequest,
    compute_mii,
    hrms_order,
    parse_config,
)
from repro.core.attempts import (
    AttemptResult,
    AttemptTask,
    SerialAttemptRunner,
    SpeculativeSearchDriver,
    run_attempt,
)
from repro.core.params import max_ii_for
from repro.errors import ConfigError, ConvergenceError
from repro.exec import attempt_cache_key, result_fingerprint
from repro.exec.cache import ResultCache
from repro.exec.hashing import canonical_graph, stable_hash


def make_task(graph, machine, params=None, ii=None) -> AttemptTask:
    """An AttemptTask the way MirsC builds them (HRMS priorities, MII)."""
    params = params or MirsParams()
    ordering = hrms_order(graph, machine)
    return AttemptTask(
        graph=graph,
        machine=machine,
        params=params,
        ii=ii if ii is not None else compute_mii(graph, machine),
        priorities=ordering.priority,
        graph_hash=stable_hash(canonical_graph(graph)),
    )


def placements(result: AttemptResult) -> dict | None:
    """The (time, cluster) placement map of a feasible attempt."""
    if result.feasible is None:
        return None
    schedule = result.feasible.schedule
    return {
        n: (schedule.time(n), schedule.cluster(n))
        for n in schedule.scheduled_ids()
    }


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


class TestAttemptRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_task_pickle_round_trip_preserves_the_attempt(self, seed):
        """A task rebuilt from its pickle runs the identical attempt."""
        graph = random_graph(seed, size=8 + seed % 5)
        task = make_task(graph, TWO_CLUSTER)
        copy = pickle.loads(pickle.dumps(task))
        assert copy.ii == task.ii
        assert copy.graph_hash == task.graph_hash
        assert copy.priorities == task.priorities
        assert copy.cache_key() == task.cache_key()
        original = run_attempt(task)
        replayed = run_attempt(copy)
        assert replayed.outcome == original.outcome
        assert placements(replayed) == placements(original)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_result_pickle_round_trip(self, seed):
        """Results (feasible state included) survive serialization."""
        graph = random_graph(seed, size=8 + seed % 5)
        result = run_attempt(make_task(graph, TWO_CLUSTER))
        copy = pickle.loads(pickle.dumps(result))
        assert copy.ii == result.ii
        assert copy.outcome == result.outcome
        assert placements(copy) == placements(result)
        if result.feasible is not None:
            assert copy.feasible.memory_traffic == result.feasible.memory_traffic
            assert copy.feasible.spilled_invariants == (
                result.feasible.spilled_invariants
            )

    def test_attempt_crosses_a_real_process_boundary(self):
        """run_attempt in a worker process equals the in-process run."""
        task = make_task(daxpy(), TWO_CLUSTER)
        local = run_attempt(task)
        with multiprocessing.get_context().Pool(1) as pool:
            remote = pool.apply(run_attempt, (task,))
        assert remote.ii == local.ii
        assert remote.outcome == local.outcome
        assert placements(remote) == placements(local)
        assert remote.feasible is not None  # daxpy schedules at MII

    def test_task_is_reusable_after_an_attempt(self):
        """The attempt clones; the pristine task schedules twice alike."""
        task = make_task(daxpy(), UNIFIED)
        first = run_attempt(task)
        second = run_attempt(task)
        assert first.outcome == second.outcome
        assert placements(first) == placements(second)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------


class TestAttemptCacheKey:
    def test_key_tracks_the_attempted_ii(self):
        task = make_task(daxpy(), UNIFIED)
        assert task.with_ii(task.ii + 1).cache_key() != task.cache_key()

    def test_key_ignores_search_policy_and_speculation(self):
        """A geometric K=4 search shares entries with the serial ladder.

        ``bound_eject_churn`` is pinned because the attempt loop *does*
        consume its resolved value (the geometric policy defaults it
        on), and the key rightly tracks it.
        """
        graph = daxpy()
        base = make_task(
            graph, UNIFIED, params=MirsParams(bound_eject_churn=False)
        )
        variant = make_task(
            graph,
            UNIFIED,
            params=MirsParams(
                ii_search="geometric",
                speculation=4,
                bound_eject_churn=False,
            ),
        )
        assert attempt_cache_key(variant) == attempt_cache_key(base)

    def test_key_tracks_attempt_relevant_params_and_machine(self):
        graph = daxpy()
        base = make_task(graph, UNIFIED)
        budget = make_task(graph, UNIFIED, params=MirsParams(budget_ratio=6))
        other_machine = make_task(graph, TWO_CLUSTER)
        assert budget.cache_key() != base.cache_key()
        assert other_machine.cache_key() != base.cache_key()


# ----------------------------------------------------------------------
# Speculative-vs-serial identity
# ----------------------------------------------------------------------


class TestSpeculativeIdentity:
    FINGERPRINTS = None

    @classmethod
    def _fingerprints(cls):
        if cls.FINGERPRINTS is None:
            import json
            import pathlib

            cls.FINGERPRINTS = json.loads(
                (
                    pathlib.Path(__file__).parent
                    / "data"
                    / "workbench_fingerprints.json"
                ).read_text()
            )
        return cls.FINGERPRINTS

    @pytest.mark.parametrize(
        "config", ["1-(GP8M4-REG64)", "4-(GP2M1-REG32)"]
    )
    def test_speculative_matches_committed_workbench_fingerprints(
        self, config
    ):
        """K=4 reproduces the serial capture bit-for-bit (both machines)."""
        from repro.workloads.perfect import cached_suite

        expected = self._fingerprints()[config]
        machine = parse_config(config)
        mismatched = [
            loop.graph.name
            for loop in cached_suite(16)
            if result_fingerprint(
                MirsC(machine, strict=False, speculation=4).schedule(
                    loop.graph
                )
            )
            != expected[loop.graph.name]
        ]
        assert mismatched == []

    def test_speculative_matches_serial_on_stress_seeds(self):
        """Register-pressure stress loops under a jumping policy: the
        geometric search takes traffic-driven skips and backfills, the
        exact trajectory speculation must reproduce."""
        from repro.workloads.stress import stress_suite

        machine = parse_config("1-(GP8M4-REG64)")
        for graph in stress_suite(2):
            # speculation=1 pins the serial reference even when the CI
            # leg exports REPRO_SPECULATION=4 for everything else.
            serial = MirsC(
                machine, strict=False, search="geometric", speculation=1
            ).schedule(graph.clone())
            speculative = MirsC(
                machine, strict=False, search="geometric", speculation=4
            ).schedule(graph.clone())
            assert result_fingerprint(speculative) == result_fingerprint(
                serial
            ), graph.name

    def test_serial_runner_is_the_degenerate_executor(self):
        """K>1 over a SerialAttemptRunner does exactly the serial work."""
        graph = next(iter(stress_graphs(1)))
        machine = parse_config("1-(GP8M4-REG64)")
        params = MirsParams(ii_search="geometric")
        ordering = hrms_order(graph, machine)
        mii = compute_mii(graph, machine)
        limit = max_ii_for(mii, len(graph), params)
        driver = SpeculativeSearchDriver(
            machine, params, 4, runner=SerialAttemptRunner(), cache=False
        )
        found = driver.search(
            graph.clone(), ordering.priority, mii, limit
        )
        serial = MirsC(
            machine, strict=False, search="geometric", speculation=1
        ).schedule(graph.clone())
        assert found.stats.runner == "SerialAttemptRunner"
        assert found.stats.executed_attempts == found.stats.serial_attempts
        assert [r.ii for r in found.path] == [
            entry["ii"] for entry in serial.stats.search_trace
        ]


def stress_graphs(count):
    from repro.workloads.stress import stress_suite

    return stress_suite(count)


# ----------------------------------------------------------------------
# Cancellation accounting
# ----------------------------------------------------------------------


class TestCancellationAccounting:
    def test_losers_are_cancelled_and_extras_are_bounded(self):
        """Executed attempts stay below serial attempts + K, and the
        search_stats ledger balances (launched = executed real work,
        cancelled covers whatever never retired)."""
        machine = parse_config("1-(GP8M4-REG64)")
        graph = next(iter(stress_graphs(1)))
        serial = MirsC(machine, strict=False, speculation=1).schedule(
            graph.clone()
        )
        serial_attempts = len(serial.stats.search_trace)
        assert serial_attempts > 1  # the ladder climbs; K>1 has work to race

        speculative = MirsC(
            machine, strict=False, speculation=4
        ).schedule(graph.clone())
        stats = speculative.stats.search
        assert stats is not None
        assert stats.speculation == 4
        assert stats.serial_attempts == serial_attempts
        assert stats.executed_attempts < serial_attempts + 4
        assert stats.launched >= stats.executed_attempts - stats.cache_hits
        assert stats.cancelled >= 0
        assert result_fingerprint(speculative) == result_fingerprint(serial)

    def test_serial_search_records_no_speculation_stats(self):
        result = MirsC(UNIFIED, strict=False, speculation=1).schedule(
            daxpy()
        )
        assert result.stats.search is None
        assert result.stats.search_stats == {}  # legacy dict shape


# ----------------------------------------------------------------------
# Warm per-attempt cache
# ----------------------------------------------------------------------


class TestAttemptCache:
    def test_second_search_is_served_from_the_cache(self, tmp_path):
        machine = parse_config("1-(GP8M4-REG64)")
        graph = next(iter(stress_graphs(1)))
        params = MirsParams(ii_search="geometric")
        ordering = hrms_order(graph, machine)
        mii = compute_mii(graph, machine)
        limit = max_ii_for(mii, len(graph), params)
        cache = ResultCache(tmp_path)

        cold = SpeculativeSearchDriver(
            machine, params, 2, runner=SerialAttemptRunner(), cache=cache
        ).search(graph.clone(), ordering.priority, mii, limit)
        assert cold.stats.cache_hits == 0
        assert cold.stats.executed_attempts > 0

        warm = SpeculativeSearchDriver(
            machine, params, 2, runner=SerialAttemptRunner(), cache=cache
        ).search(graph.clone(), ordering.priority, mii, limit)
        assert warm.stats.cache_hits == cold.stats.executed_attempts
        assert warm.best is not None and cold.best is not None
        assert warm.best.ii == cold.best.ii
        assert [r.outcome for r in warm.path] == [
            r.outcome for r in cold.path
        ]


# ----------------------------------------------------------------------
# ConvergenceError reporting
# ----------------------------------------------------------------------


class ScriptedPolicy:
    """Probes a fixed offset sequence above MII, ignoring outcomes —
    a jumping policy whose last probe is not its highest."""

    name = "scripted"

    def __init__(self, offsets):
        self.offsets = tuple(offsets)
        self._mii = None
        self._iter = None

    def first_ii(self, mii, limit):
        self._mii = mii
        self._iter = iter(self.offsets)
        return mii + next(self._iter)

    def next_ii(self, outcome):
        if outcome.scheduled:
            return None
        try:
            return self._mii + next(self._iter)
        except StopIteration:
            return None

    def canonical(self):
        return {"name": self.name, "offsets": list(self.offsets)}


class TestConvergenceErrorReporting:
    #: Two registers per cluster: every low-II attempt is register
    #: infeasible, so a bounded probe script cannot converge.
    STARVED = parse_config("1-(GP8M4-REG2)")

    def test_error_reports_last_and_highest_probed_ii(self):
        graph = wide(8)
        mii = compute_mii(graph, self.STARVED)
        policy = ScriptedPolicy([1, 5, 3])  # descending backfill at the end
        with pytest.raises(ConvergenceError) as err:
            MirsC(self.STARVED, params=MirsParams(ii_search=policy)).schedule(
                graph
            )
        assert err.value.last_ii == mii + 3
        assert err.value.highest_ii == mii + 5
        assert f"last probed II={mii + 3}" in str(err.value)
        assert f"up to II={mii + 5}" in str(err.value)

    def test_speculative_error_reports_the_same_pair(self):
        graph = wide(8)
        mii = compute_mii(graph, self.STARVED)
        policy = ScriptedPolicy([1, 5, 3])
        with pytest.raises(ConvergenceError) as err:
            MirsC(
                self.STARVED,
                params=MirsParams(ii_search=policy),
                speculation=3,
            ).schedule(graph)
        assert err.value.last_ii == mii + 3
        assert err.value.highest_ii == mii + 5

    def test_highest_defaults_to_last(self):
        err = ConvergenceError("gave up", last_ii=7)
        assert err.highest_ii == 7


# ----------------------------------------------------------------------
# Request-object plumbing into the speculative search
# ----------------------------------------------------------------------


class TestScheduleRequestSpeculation:
    def test_request_folds_speculation_into_params(self):
        request = ScheduleRequest(search="geometric", speculation=4)
        params = request.resolved_params()
        assert params.ii_search == "geometric"
        assert params.effective_speculation() == 4

    def test_conflicting_speculation_is_rejected(self):
        request = ScheduleRequest(
            params=MirsParams(speculation=1), speculation=2
        )
        with pytest.raises(ConfigError):
            request.resolved_params()

    def test_request_builds_a_speculative_scheduler(self):
        scheduler = ScheduleRequest(speculation=2).make_scheduler(UNIFIED)
        assert isinstance(scheduler, MirsC)
        assert scheduler.params.effective_speculation() == 2
