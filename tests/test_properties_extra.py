"""Additional property-based tests: folding math, codegen conservation,
allocation safety - cross-checked against naive reference implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MirsC
from repro.codegen import generate_code
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import _colour_arcs

from tests.helpers import TWO_CLUSTER, UNIFIED, graph_seeds, random_graph

lifetime_lists = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=40),  # start
        st.integers(min_value=0, max_value=60),  # length
    ),
    min_size=0,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(lifetimes=lifetime_lists, ii=st.integers(1, 17))
def test_row_folding_matches_naive_count(lifetimes, ii):
    """The difference-array fold in LifetimeAnalysis must agree with the
    obvious per-cycle count."""
    diff = [0] * (ii + 1)
    base = 0
    for start, length in lifetimes:
        full, rest = divmod(length, ii)
        base += full
        if rest:
            first = start % ii
            tail = first + rest
            if tail <= ii:
                diff[first] += 1
                diff[tail] -= 1
            else:
                diff[first] += 1
                diff[ii] -= 1
                diff[0] += 1
                diff[tail - ii] -= 1
    rows = np.asarray(diff[:ii]).cumsum() + base

    naive = [0] * ii
    for start, length in lifetimes:
        for t in range(start, start + length):
            naive[t % ii] += 1
    assert rows.tolist() == naive


@settings(max_examples=60, deadline=None)
@given(
    arcs=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 16)),
        min_size=1,
        max_size=10,
    ),
    ii=st.integers(2, 16),
)
def test_colouring_is_always_conflict_free(arcs, ii):
    arcs = [
        (index, start % ii, min(length, ii))
        for index, (start, length) in enumerate(arcs)
    ]
    count, chosen = _colour_arcs(arcs, ii)
    occupancy: dict[int, set] = {}
    for value, start, length in arcs:
        rows = {(start + i) % ii for i in range(length)}
        taken = occupancy.setdefault(chosen[value], set())
        assert not (taken & rows)
        taken |= rows
    assert count == len({c for c in chosen.values()})


@settings(max_examples=12, deadline=None)
@given(seed=graph_seeds)
def test_codegen_conserves_operations(seed):
    """Prologue+epilogue contain each op SC-1 times; the kernel contains
    it once per MVE copy - together exactly the software pipeline."""
    graph = random_graph(seed, size=7)
    result = MirsC(UNIFIED).schedule(graph)
    code = generate_code(result)
    kernel_counts: dict[int, int] = {}
    for bundle in code.kernel:
        for inst in bundle:
            kernel_counts[inst.node] = kernel_counts.get(inst.node, 0) + 1
    edge_counts: dict[int, int] = {}
    for bundle in code.prologue + code.epilogue:
        for inst in bundle:
            edge_counts[inst.node] = edge_counts.get(inst.node, 0) + 1
    for node in graph.nodes():
        assert kernel_counts.get(node.id, 0) == code.mve_factor
        assert edge_counts.get(node.id, 0) == code.stage_count - 1


@settings(max_examples=12, deadline=None)
@given(seed=graph_seeds)
def test_pressure_analysis_consistent_across_machines(seed):
    """Summed per-cluster variant pressure is invariant to how scheduled
    nodes are spread over clusters (values counted exactly once)."""
    graph = random_graph(seed, size=8)
    result = MirsC(TWO_CLUSTER).schedule(graph)
    schedule = PartialSchedule(TWO_CLUSTER, result.ii)
    for node in sorted(result.graph.nodes(), key=lambda n: n.id):
        schedule.place(
            node,
            result.clusters[node.id],
            result.times[node.id],
            src_cluster=node.src_cluster,
        )
    analysis = LifetimeAnalysis(result.graph, schedule, TWO_CLUSTER)
    produced = sum(
        1 for n in result.graph.nodes() if n.produces_value
    )
    assert len(analysis.lifetimes) == produced
