"""Unit tests for the synthetic workload generator, suite and unrolling."""

from repro import DepKind, OpKind, compute_mii
from repro.graph.recurrences import find_recurrences
from repro.workloads.perfect import (
    build_loop,
    perfect_club_suite,
    suite_statistics,
)
from repro.workloads.synthetic import GeneratorProfile, LoopGenerator
from repro.workloads.unroll import SaturationPolicy, saturate, unroll

from tests.helpers import UNIFIED, daxpy, reduction


class TestGenerator:
    def test_deterministic_per_seed(self):
        gen = LoopGenerator()
        a = gen.generate(42)
        b = gen.generate(42)
        assert len(a) == len(b)
        assert sorted(n.kind.value for n in a.nodes()) == sorted(
            n.kind.value for n in b.nodes()
        )
        assert a.num_edges() == b.num_edges()
        assert a.trip_count == b.trip_count

    def test_different_seeds_differ(self):
        gen = LoopGenerator()
        sizes = {len(gen.generate(seed)) for seed in range(20)}
        assert len(sizes) > 3

    def test_graphs_are_schedulable(self):
        gen = LoopGenerator()
        for seed in range(10):
            graph = gen.generate(seed)
            graph.validate()
            assert compute_mii(graph, UNIFIED) >= 1

    def test_recurrence_probability_respected(self):
        always = LoopGenerator(GeneratorProfile(recurrence_prob=1.0))
        graph = always.generate(7)
        assert find_recurrences(graph, UNIFIED)
        never = LoopGenerator(
            GeneratorProfile(recurrence_prob=0.0, memory_dep_prob=0.0)
        )
        for seed in range(5):
            assert not find_recurrences(never.generate(seed), UNIFIED)


class TestUnroll:
    def test_factor_one_is_clone(self):
        graph = daxpy()
        copy = unroll(graph, 1)
        assert len(copy) == len(graph)
        assert copy is not graph

    def test_node_replication(self):
        graph = daxpy()
        unrolled = unroll(graph, 3)
        assert len(unrolled) == 3 * len(graph)
        assert unrolled.trip_count == -(-graph.trip_count // 3)

    def test_distance_reindexing(self):
        graph = reduction(distance=1)
        unrolled = unroll(graph, 4)
        # A distance-1 self-recurrence unrolled 4x becomes a circuit of
        # the 4 replicas with total distance 1: RecMII scales down by 4
        # in the II-per-unrolled-iteration sense (4 adds per circuit, so
        # the bound stays ceil(4*4/... ) - check via compute_mii ratio.
        assert compute_mii(unrolled, UNIFIED) == 4 * compute_mii(graph, UNIFIED)
        recurrences = find_recurrences(unrolled, UNIFIED)
        assert recurrences, "recurrence must survive unrolling"
        # The unrolled circuit covers all 4 replicas of the add.
        assert len(max(recurrences, key=len)) == 4

    def test_memory_streams_reindexed(self):
        graph = daxpy()
        unrolled = unroll(graph, 2)
        loads = [
            n for n in unrolled.nodes() if n.kind is OpKind.LOAD
            and n.mem_ref.array == 0
        ]
        loads.sort(key=lambda n: n.mem_ref.offset)
        assert loads[0].mem_ref.stride == 2
        assert loads[1].mem_ref.offset - loads[0].mem_ref.offset == 1
        # Together the replicas touch the same address stream.
        addresses = sorted(
            ref.address(i)
            for i in range(3)
            for ref in (loads[0].mem_ref, loads[1].mem_ref)
        )
        original_ref = [
            n for n in graph.nodes()
            if n.kind is OpKind.LOAD and n.mem_ref.array == 0
        ][0].mem_ref
        expected = sorted(original_ref.address(i) for i in range(6))
        assert addresses == expected

    def test_invariants_stay_single(self):
        graph = daxpy()
        unrolled = unroll(graph, 4)
        assert len(unrolled.invariants()) == len(graph.invariants())
        inv = unrolled.invariants()[0]
        assert len(inv.consumers) == 4  # one replica each

    def test_saturate_grows_small_loops(self):
        graph = daxpy()  # 2 compute ops
        saturated, factor = saturate(graph, SaturationPolicy())
        assert factor > 1
        assert len(saturated) == factor * len(graph)

    def test_saturate_leaves_big_loops_alone(self):
        from tests.helpers import wide

        graph = wide(12)  # 12 muls already
        saturated, factor = saturate(
            graph, SaturationPolicy(target_compute_ops=8)
        )
        assert factor == 1
        assert saturated is graph


class TestSuite:
    def test_deterministic(self):
        a = perfect_club_suite(count=6)
        b = perfect_club_suite(count=6)
        assert [len(l.graph) for l in a] == [len(l.graph) for l in b]
        assert [l.family for l in a] == [l.family for l in b]

    def test_indices_stable_across_subset_sizes(self):
        small = perfect_club_suite(count=4)
        large = perfect_club_suite(count=8)
        small_by_index = {l.index: len(l.graph) for l in small}
        large_by_index = {l.index: len(l.graph) for l in large}
        for index in set(small_by_index) & set(large_by_index):
            assert small_by_index[index] == large_by_index[index]

    def test_families_cover_the_mix(self):
        loops = perfect_club_suite(count=60)
        families = {l.family for l in loops}
        assert {"dense", "reduction", "stencil", "recurrent"} <= families

    def test_statistics_match_design_notes(self):
        loops = perfect_club_suite(count=80)
        stats = suite_statistics(loops)
        # DESIGN.md note (b): sizes, memory share, recurrence share.
        assert 10 <= stats["mean_size"] <= 100
        assert stats["max_size"] <= 200
        assert 0.15 <= stats["mean_memory_fraction"] <= 0.55
        assert 0.25 <= stats["recurrence_share"] <= 0.75
        assert stats["unrolled_share"] > 0.1

    def test_build_loop_matches_suite(self):
        loop = build_loop(100)
        assert loop.index == 100
        assert len(loop.graph) > 0
        assert loop.graph.name.startswith(loop.family)


class TestUnrollTripSemantics:
    """Regression: unrolling used to clamp ``trip_count`` silently, so a
    non-dividing factor quietly changed the iteration space executed by
    the differential simulator."""

    def test_non_dividing_factor_warns(self):
        import pytest

        graph = daxpy(trip_count=10)
        with pytest.warns(UserWarning, match="does not divide"):
            unrolled = unroll(graph, 3)
        assert unrolled.trip_count == 4  # ceil(10 / 3)

    def test_non_dividing_factor_can_raise(self):
        import pytest

        from repro.errors import GraphError

        with pytest.raises(GraphError, match="surplus"):
            unroll(daxpy(trip_count=10), 3, remainder="raise")

    def test_dividing_factor_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            unrolled = unroll(daxpy(trip_count=12), 3)
        assert unrolled.trip_count == 4

    def test_unknown_remainder_policy_rejected(self):
        import pytest

        from repro.errors import GraphError

        with pytest.raises(GraphError, match="remainder"):
            unroll(daxpy(trip_count=12), 3, remainder="nonsense")

    def test_factor_recorded_and_composed(self):
        graph = daxpy(trip_count=64)
        assert graph.unroll_factor == 1
        once = unroll(graph, 2)
        assert once.unroll_factor == 2
        twice = unroll(once, 4)
        assert twice.unroll_factor == 8
        assert twice.clone().unroll_factor == 8

    def test_saturate_prefers_dividing_factor(self):
        import warnings

        # daxpy has 2 compute ops: the saturation target asks for x8,
        # which does not divide 100; 5 is the largest dividing factor.
        graph = daxpy(trip_count=100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            saturated, factor = saturate(graph, SaturationPolicy())
        assert factor == 5
        assert saturated.trip_count == 20
        assert saturated.unroll_factor == 5

    def test_saturate_falls_back_when_no_divisor(self):
        import warnings

        # Prime trip count: no factor in [2, 8] divides it; the
        # saturation target is kept.  The trade is saturate()'s own
        # documented policy, so it does not warn (the surplus stays
        # visible via unroll_factor and trip_count).
        graph = daxpy(trip_count=97)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            saturated, factor = saturate(graph, SaturationPolicy())
        assert factor == 8
        assert saturated.unroll_factor == 8
        assert saturated.trip_count == 13  # ceil(97 / 8)

    def test_factor_one_is_full_identity(self):
        # A factor-1 "unroll" must not disturb any observable: same
        # nodes, names, memory streams, edges, invariants and the
        # trip-count bookkeeping triple.
        graph = daxpy(trip_count=10)
        prior = unroll(graph, 2)  # composed state to carry through
        copy = unroll(prior, 1)
        assert copy is not prior
        assert copy.trip_count == prior.trip_count
        assert copy.unroll_factor == prior.unroll_factor
        assert copy.source_trip_count == prior.source_trip_count
        assert [(n.id, n.name, n.kind) for n in copy.nodes()] == [
            (n.id, n.name, n.kind) for n in prior.nodes()
        ]
        assert [
            (e.src, e.dst, e.kind, e.distance) for e in copy.edges()
        ] == [(e.src, e.dst, e.kind, e.distance) for e in prior.edges()]
        assert [n.mem_ref for n in copy.nodes()] == [
            n.mem_ref for n in prior.nodes()
        ]
        assert len(copy.invariants()) == len(prior.invariants())

    def test_non_dividing_warn_path_preserves_source_trip_count(self):
        import pytest

        # The warning path must keep the *original* iteration count
        # observable: trip_count is reshaped, source_trip_count is not.
        graph = daxpy(trip_count=10)
        assert graph.source_trip_count == 10
        with pytest.warns(UserWarning, match="surplus"):
            unrolled = unroll(graph, 3)
        assert unrolled.trip_count == 4
        assert unrolled.unroll_factor == 3
        assert unrolled.source_trip_count == 10
        # And it composes: a second (dividing) unroll still reports the
        # source loop's 10 iterations.
        again = unroll(unrolled, 2)
        assert again.source_trip_count == 10
        assert again.unroll_factor == 6

    def test_saturate_tie_breaking_deterministic(self):
        # Repeated runs pick the same factor and produce structurally
        # identical graphs (node order included): saturate() feeds the
        # workbench builder, whose results are cached and fingerprinted.
        graph = daxpy(trip_count=100)
        first, factor_a = saturate(graph, SaturationPolicy())
        second, factor_b = saturate(daxpy(trip_count=100), SaturationPolicy())
        assert factor_a == factor_b == 5
        assert [(n.id, n.name) for n in first.nodes()] == [
            (n.id, n.name) for n in second.nodes()
        ]
        assert [
            (e.src, e.dst, e.kind, e.distance) for e in first.edges()
        ] == [(e.src, e.dst, e.kind, e.distance) for e in second.edges()]
        # 4 also divides 100 and fits the budget; the largest dividing
        # candidate below the saturation target must win the tie, every
        # time, independent of dict/set iteration order.
        for _ in range(5):
            _, factor = saturate(daxpy(trip_count=100), SaturationPolicy())
            assert factor == 5
