"""Shared test utilities: canned machines, loops and hypothesis strategies."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro import DependenceGraph, DepKind, LoopBuilder, MemRef, OpKind, parse_config

UNIFIED = parse_config("1-(GP8M4-REG64)")
UNIFIED_SMALL = parse_config("1-(GP8M4-REG16)")
TWO_CLUSTER = parse_config("2-(GP4M2-REG32)")
FOUR_CLUSTER = parse_config("4-(GP2M1-REG32)")
FOUR_CLUSTER_TIGHT = parse_config("4-(GP2M1-REG16)")


def daxpy(trip_count: int = 100) -> DependenceGraph:
    b = LoopBuilder("daxpy", trip_count=trip_count)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    b.store(b.add(b.mul(x, a), y), array=1)
    return b.build()


def reduction(distance: int = 1) -> DependenceGraph:
    b = LoopBuilder("reduction", trip_count=100)
    x = b.load(array=0)
    acc = b.add(x)
    b.loop_carried(acc, acc, distance=distance)
    b.store(acc, array=1)
    return b.build()


def chain(length: int = 6) -> DependenceGraph:
    """A straight-line dependence chain: load -> add^length -> store."""
    b = LoopBuilder("chain", trip_count=100)
    node = b.load(array=0)
    for _ in range(length):
        node = b.add(node)
    b.store(node, array=1)
    return b.build()


def wide(width: int = 8) -> DependenceGraph:
    """Independent parallel streams (stress on resources, not deps)."""
    b = LoopBuilder("wide", trip_count=100)
    for j in range(width):
        b.store(b.mul(b.load(array=j), b.load(array=100 + j)), array=200 + j)
    return b.build()


def random_graph(seed: int, size: int = 10) -> DependenceGraph:
    """A small random schedulable loop (used by property tests)."""
    rng = random.Random(seed)
    graph = DependenceGraph(name=f"rand{seed}", trip_count=50)
    nodes = []
    for i in range(size):
        roll = rng.random()
        if roll < 0.25:
            kind = OpKind.LOAD
        elif roll < 0.35:
            kind = OpKind.STORE
        elif roll < 0.7:
            kind = OpKind.ADD
        elif roll < 0.95:
            kind = OpKind.MUL
        else:
            kind = OpKind.DIV
        mem_ref = MemRef(array=i, stride=rng.randint(1, 4)) if kind.is_memory else None
        nodes.append(graph.new_node(kind, mem_ref=mem_ref))
    # Forward edges (acyclic base): from value producers only.
    for i, node in enumerate(nodes):
        for j in range(i + 1, size):
            if rng.random() < 0.25 and nodes[i].produces_value:
                graph.add_edge(nodes[i].id, nodes[j].id, kind=DepKind.REG)
    # Occasionally a loop-carried back edge (distance >= 1 keeps it legal).
    for _ in range(rng.randint(0, 2)):
        i, j = sorted(rng.sample(range(size), 2))
        if nodes[j].produces_value:
            graph.add_edge(
                nodes[j].id,
                nodes[i].id,
                kind=DepKind.REG,
                distance=rng.randint(1, 3),
            )
    # An invariant with a couple of consumers.
    if rng.random() < 0.5:
        consumers = {
            n.id for n in rng.sample(nodes, min(2, len(nodes)))
            if n.kind.is_compute
        }
        if consumers:
            graph.new_invariant(consumers=consumers)
    graph.validate()
    return graph


graph_seeds = st.integers(min_value=0, max_value=10_000)
graph_sizes = st.integers(min_value=3, max_value=14)


# ----------------------------------------------------------------------
# Randomized scheduler-event drivers (shared by the incremental-engine
# property suites: tests/test_pressure.py and tests/test_colouring.py)
# ----------------------------------------------------------------------

def fresh_state(seed: int, machine):
    """A SchedulerState over a small random loop (one attempt's state)."""
    from repro.core.params import MirsParams
    from repro.core.state import SchedulerState
    from repro.graph.mii import compute_mii
    from repro.order.hrms import hrms_order

    graph = random_graph(seed, size=10 + seed % 5)
    ordering = hrms_order(graph, machine)
    ii = compute_mii(graph, machine) + seed % 3
    return SchedulerState(
        graph, machine, ii, ordering.priority, MirsParams()
    )


def place_random(state, rng: random.Random) -> None:
    """Cluster-select and place one random unscheduled node (plus any
    moves the clustering requires)."""
    from repro.cluster.moves import add_move, next_needed_move
    from repro.cluster.selection import select_cluster
    from repro.core.scheduling import schedule_node

    unscheduled = [
        n
        for n in state.graph.nodes()
        if not state.schedule.is_scheduled(n.id) and not n.is_move
    ]
    if not unscheduled:
        return
    node = rng.choice(unscheduled)
    cluster = select_cluster(state, node)
    guard = 0
    while True:
        plan = next_needed_move(state, node, cluster)
        if plan is None:
            break
        move = add_move(state, plan)
        schedule_node(state, move, plan.dst_cluster)
        guard += 1
        if guard > 8:
            break
    if node.id in state.graph and not state.schedule.is_scheduled(node.id):
        schedule_node(state, node, cluster)


def eject_random(state, rng: random.Random) -> None:
    """Eject one random scheduled node (backtracking event)."""
    scheduled = [
        n for n in state.schedule.scheduled_ids() if n in state.graph
    ]
    if not scheduled:
        return
    state.eject_node(rng.choice(scheduled))


def add_random_edge(state, rng: random.Random) -> None:
    """Add a random REG edge between existing nodes (a lifetime-stretch
    event, like the rewiring done by spill insertion and move removal)."""
    producers = [
        n for n in state.graph.nodes() if n.produces_value and not n.is_move
    ]
    consumers = [n for n in state.graph.nodes() if n.kind.is_compute]
    if not producers or not consumers:
        return
    src = rng.choice(producers)
    dst = rng.choice(consumers)
    if src.id == dst.id:
        return
    state.graph.add_edge(
        src.id, dst.id, kind=DepKind.REG, distance=rng.randint(0, 2)
    )
