"""Unit tests for move insertion/removal and the ejection rules."""

import pytest

from repro import LoopBuilder
from repro.cluster.moves import MovePlan, add_invariant_move, add_move, next_needed_move
from repro.core.params import MirsParams
from repro.core.state import SchedulerState

from tests.helpers import TWO_CLUSTER


def _state(graph, machine=TWO_CLUSTER, ii=8):
    priorities = {n.id: float(100 - n.id) for n in graph.nodes()}
    return SchedulerState(graph, machine, ii, priorities, MirsParams())


def _producer_consumer():
    b = LoopBuilder("pc")
    x = b.load(array=0)
    y = b.add(x)
    return b.build(), x, y


class TestNeedMove:
    def test_no_move_same_cluster(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        assert next_needed_move(state, graph.node(y.id), 0) is None

    def test_operand_side_move(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        assert plan is not None
        assert plan.producer == x.id
        assert (plan.src_cluster, plan.dst_cluster) == (0, 1)

    def test_consumer_side_move(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(y.id), 1, 10)
        plan = next_needed_move(state, graph.node(x.id), 0)
        assert plan is not None
        assert plan.producer == x.id
        assert (plan.src_cluster, plan.dst_cluster) == (0, 1)

    def test_one_move_per_destination_cluster(self):
        b = LoopBuilder("multi")
        x = b.load(array=0)
        u = b.add(x)
        v = b.mul(x)
        graph = b.build()
        state = _state(graph)
        state.schedule.place(graph.node(u.id), 1, 10)
        state.schedule.place(graph.node(v.id), 1, 12)
        plan = next_needed_move(state, graph.node(x.id), 0)
        assert plan is not None
        assert len(plan.edges) == 2  # both consumers share one move


class TestAddRemoveMove:
    def test_add_move_rewires_edges_and_distances(self):
        b = LoopBuilder("dist")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        edge = graph.out_edges(x.id)[0]
        graph.remove_edge(edge)
        graph.add_edge(x.id, y.id, distance=2)
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        move = add_move(state, plan)
        # x -> move carries the distance, move -> y is residual 0.
        in_edge = graph.in_edges(move.id)[0]
        out_edge = graph.out_edges(move.id)[0]
        assert in_edge.src == x.id and in_edge.distance == 2
        assert out_edge.dst == y.id and out_edge.distance == 0
        assert move.src_cluster == 0
        assert move.move_of == x.id

    def test_remove_move_reconnects_with_combined_distance(self):
        b = LoopBuilder("rm")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        edge = graph.out_edges(x.id)[0]
        graph.remove_edge(edge)
        graph.add_edge(x.id, y.id, distance=3)
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        move = add_move(state, plan)
        state.remove_move(move.id)
        assert move.id not in graph
        restored = graph.out_edges(x.id)[0]
        assert restored.dst == y.id
        assert restored.distance == 3

    def test_ejecting_producer_removes_its_moves(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        move = add_move(state, plan)
        state.schedule.place(move, 1, 4, src_cluster=0)
        state.eject_node(x.id)
        assert move.id not in graph
        # y's operand edge points straight back at x.
        assert graph.preds(y.id) == {x.id}

    def test_ejecting_unique_consumer_removes_feeding_move(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        move = add_move(state, plan)
        state.schedule.place(move, 1, 4, src_cluster=0)
        state.schedule.place(graph.node(y.id), 1, 8)
        state.eject_node(y.id)
        assert move.id not in graph
        assert y.id in state.pl

    def test_ejected_move_returns_to_priority_list(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        state.schedule.place(graph.node(x.id), 0, 0)
        plan = next_needed_move(state, graph.node(y.id), 1)
        move = add_move(state, plan)
        state.schedule.place(move, 1, 4, src_cluster=0)
        state.eject_node(move.id)
        assert move.id in graph  # resource ejection keeps the move
        assert move.id in state.pl


class TestInvariantMoves:
    def test_add_invariant_move_rewires_consumers(self):
        b = LoopBuilder("inv")
        u = b.add()
        v = b.mul()
        inv = b.invariant("c")
        inv.consumers |= {u.id, v.id}
        graph = b.build()
        state = _state(graph)
        state.schedule.place(graph.node(u.id), 0, 0)
        state.schedule.place(graph.node(v.id), 1, 0)
        move = add_invariant_move(state, inv.id, [u.id], 1, 0)
        assert move.move_of_invariant == inv.id
        assert u.id not in inv.consumers
        assert v.id in inv.consumers
        assert (inv.id, 0) in state.spilled_invariants
        assert graph.succs(move.id) == {u.id}

    def test_remove_invariant_move_restores_consumption(self):
        b = LoopBuilder("inv")
        u = b.add()
        inv = b.invariant("c")
        inv.consumers.add(u.id)
        graph = b.build()
        state = _state(graph)
        state.schedule.place(graph.node(u.id), 0, 0)
        move = add_invariant_move(state, inv.id, [u.id], 1, 0)
        state.schedule.place(move, 0, 2, src_cluster=1)
        state.remove_move(move.id)
        assert u.id in inv.consumers
        assert (inv.id, 0) not in state.spilled_invariants


class TestStateBookkeeping:
    def test_memory_count_tracks_graph(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        assert state.memory_operation_count() == 1
        state.note_memory_node_added()
        assert state.memory_operation_count() == 2

    def test_traffic_infeasibility(self):
        b = LoopBuilder("mem")
        for i in range(10):
            b.load(array=i)
        graph = b.build()
        state = _state(graph, TWO_CLUSTER, ii=2)
        # 10 loads > 2 cycles x 4 ports = 8 slots.
        assert state.memory_traffic_infeasible()
        assert state.suggested_restart_ii() >= 3

    def test_add_move_within_cluster_rejected(self):
        graph, x, y = _producer_consumer()
        state = _state(graph)
        plan = MovePlan(
            producer=x.id, src_cluster=0, dst_cluster=0, edges=()
        )
        from repro import SchedulingError

        with pytest.raises(SchedulingError):
            add_move(state, plan)
