"""Tests for the exact scheduling backend (repro.smt) and its gates.

Three layers, mirroring the subsystem:

* the shared optional-dependency gate (``repro.errors``) — present and
  absent paths, the latter simulated with an import hook so the tests
  pass whether or not z3 is installed;
* the fixed-II decision problem and the native CSP engine — SAT/UNSAT/
  UNKNOWN verdicts, determinism, and a hand-built loop whose unpipelined
  divisions make ResMII a genuine underestimate (the exact ladder climbs
  through eight UNSAT certificates before the first feasible II);
* the :class:`~repro.smt.SmtScheduler` driver and the differential
  harness — every exact schedule must pass static certification and the
  bit-for-bit simulator differential, every covered heuristic result
  must respect the proven lower bound, and every UNSAT certificate must
  agree with direct heuristic attempt probing at that II.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LoopBuilder,
    MirsC,
    MirsParams,
    OpKind,
    certify_code,
    generate_code,
    parse_config,
)
from repro.core.attempts import AttemptTask, run_attempt
from repro.core.params import SmtParams
from repro.core.request import ScheduleRequest
from repro.errors import (
    ConvergenceError,
    OptionalDependencyError,
    ReproError,
    SchedulingError,
    optional_import,
    require_optional,
)
from repro.exec.hashing import canonical_graph, stable_hash
from repro.graph.mii import compute_mii
from repro.order.hrms import hrms_order
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.sim import run_differential
from repro.smt import (
    FixedIIProblem,
    SmtScheduler,
    relaxation_covers,
    solve_fixed_ii,
    span_within_horizon,
)
from repro.smt import native
from tests.helpers import (
    TWO_CLUSTER,
    UNIFIED,
    UNIFIED_SMALL,
    chain,
    daxpy,
    graph_seeds,
    random_graph,
)

FOUR_CLUSTER = parse_config("4-(GP2M1-REG32)")
ONE_PORT = parse_config("1-(GP8M1-REG64)")


def divpack():
    """Three unpipelined divisions on a two-FU machine: ResMII lies.

    Each DIV occupies its FU for its full 17-cycle latency, so ResMII is
    ``ceil(3*17/2) = 26`` — but two DIVs sharing one physical unit need
    ``(t_b - t_a) % II >= 17`` in *both* directions, i.e. ``II >= 34``.
    """
    b = LoopBuilder("divpack", trip_count=50)
    for i in range(3):
        b.store(b.div(b.load(array=i)), array=10 + i)
    return b.build()


DIVPACK_MACHINE = parse_config("1-(GP2M4-REG64)")

#: A register file far too small for chain(6) at low II: the chain's
#: lifetimes sum to ~27 cycles, so MaxLive ~ 27/II — well above 8
#: registers at the resource-bound MII of 1.  The exact ladder must
#: climb through register-UNSAT certificates before its first feasible
#: point.
TIGHT_REGS = parse_config("1-(GP8M4-REG8)")


class _BlockImport:
    """Meta-path hook that makes one top-level package unimportable."""

    def __init__(self, name: str):
        self.name = name

    def find_spec(self, fullname, path=None, target=None):
        if fullname == self.name or fullname.startswith(self.name + "."):
            raise ModuleNotFoundError(f"{fullname} blocked for testing")
        return None


@pytest.fixture
def no_z3(monkeypatch):
    """Simulate an environment without z3, even when it is installed."""
    monkeypatch.delitem(sys.modules, "z3", raising=False)
    monkeypatch.setattr(sys, "meta_path", [_BlockImport("z3"), *sys.meta_path])


class TestOptionalGate:
    def test_optional_import_present(self):
        import json

        assert optional_import("json") is json

    def test_optional_import_absent(self, no_z3):
        assert optional_import("z3") is None

    def test_require_optional_present(self):
        import json

        module = require_optional("json", feature="a test", hint="stdlib")
        assert module is json

    def test_require_optional_absent_raises_typed_error(self, no_z3):
        with pytest.raises(OptionalDependencyError) as excinfo:
            require_optional(
                "z3",
                feature="the z3 exact scheduling backend",
                hint="pip install z3-solver",
            )
        err = excinfo.value
        # Both a ReproError (one except guards a run) and an ImportError
        # (the standard feature-probe idiom keeps working).
        assert isinstance(err, ReproError)
        assert isinstance(err, ImportError)
        assert err.module == "z3"
        assert err.feature == "the z3 exact scheduling backend"
        assert err.hint == "pip install z3-solver"
        assert "pip install z3-solver" in str(err)

    def test_engine_auto_resolves_native_without_z3(self, no_z3):
        assert SmtParams().effective_engine() == "native"
        assert SmtParams(engine="native").effective_engine() == "native"

    def test_z3_engine_without_z3_raises_on_schedule(self, no_z3):
        params = MirsParams(smt=SmtParams(engine="z3"))
        scheduler = SmtScheduler(UNIFIED, params=params)
        with pytest.raises(OptionalDependencyError, match="z3-solver"):
            scheduler.schedule(daxpy())

    def test_canonical_never_says_auto(self):
        engine = SmtParams().canonical()["engine"]
        assert engine in ("native", "z3")


class TestFixedIIProblem:
    def test_rejects_non_positive_ii(self):
        with pytest.raises(SchedulingError, match="positive"):
            FixedIIProblem(daxpy(), UNIFIED, 0)

    def test_rejects_non_pristine_graph(self):
        graph = daxpy()
        producer = next(n for n in graph.nodes() if n.produces_value)
        graph.new_node(OpKind.MOVE, move_of=producer.id, src_cluster=0)
        with pytest.raises(SchedulingError, match="pristine"):
            FixedIIProblem(graph, TWO_CLUSTER, 4)

    def test_horizon_is_a_multiple_of_ii(self):
        for ii in (1, 3, 7):
            problem = FixedIIProblem(daxpy(), UNIFIED, ii)
            assert problem.horizon % ii == 0
            assert problem.horizon > 0

    def test_anchor_candidates_are_zero_indegree_sources(self):
        graph = chain(4)
        problem = FixedIIProblem(graph, UNIFIED, 2)
        anchors = problem.anchor_candidates()
        # The chain's only source is its load; everything downstream has
        # an incoming zero-distance positive-latency edge.
        assert len(anchors) == 1
        assert graph.node(anchors[0]).kind is OpKind.LOAD

    def test_span_within_horizon_normalizes_by_ii(self):
        class Fake:
            ii = 4
            times = {0: 9, 1: 14}  # normalized span: 9 % 4 + 5 = 6

        assert span_within_horizon(Fake(), 7)
        assert not span_within_horizon(Fake(), 6)


class TestNativeEngine:
    def test_sat_at_feasible_ii_checks_clean(self):
        graph = daxpy()
        mii = compute_mii(graph, UNIFIED)
        problem = FixedIIProblem(graph, UNIFIED, mii)
        outcome = solve_fixed_ii(problem, 1_000_000)
        assert outcome.status == native.SAT
        assert problem.check_solution(
            outcome.times, outcome.clusters, outcome.move_times
        ) == []

    def test_unsat_below_resource_bound(self):
        # daxpy has three memory operations; one port forces II >= 3.
        graph = daxpy()
        assert compute_mii(graph, ONE_PORT) == 3
        outcome = solve_fixed_ii(FixedIIProblem(graph, ONE_PORT, 2), 1_000_000)
        assert outcome.status == native.UNSAT

    def test_unknown_on_exhausted_budget(self):
        graph = daxpy()
        mii = compute_mii(graph, UNIFIED)
        outcome = solve_fixed_ii(FixedIIProblem(graph, UNIFIED, mii), 1)
        assert outcome.status == native.UNKNOWN
        assert outcome.steps >= 1

    def test_deterministic_across_runs(self):
        graph = random_graph(7, size=9)
        mii = compute_mii(graph, TWO_CLUSTER)
        first = solve_fixed_ii(FixedIIProblem(graph, TWO_CLUSTER, mii), 500_000)
        second = solve_fixed_ii(FixedIIProblem(graph, TWO_CLUSTER, mii), 500_000)
        assert first.status == second.status
        assert first.steps == second.steps
        assert first.times == second.times
        assert first.clusters == second.clusters
        assert first.move_times == second.move_times

    def test_unpipelined_packing_exceeds_resmii(self):
        # ResMII says 26, but two of the three DIVs must share one
        # physical unit, which needs II >= 34.  The solver finds the
        # packing at 34 and refuses the MII point (the refutation is
        # enumerative, so a small budget may return UNKNOWN — never SAT).
        graph = divpack()
        assert compute_mii(graph, DIVPACK_MACHINE) == 26
        at_mii = solve_fixed_ii(
            FixedIIProblem(graph, DIVPACK_MACHINE, 26), 200_000
        )
        assert at_mii.status in (native.UNSAT, native.UNKNOWN)
        packed = solve_fixed_ii(
            FixedIIProblem(graph, DIVPACK_MACHINE, 34), 2_000_000
        )
        assert packed.status == native.SAT

    def test_register_bound_unsat_below_pressure_floor(self):
        # chain(6) needs ~27 live register-cycles per iteration; with 8
        # registers II=1 is infeasible on pressure alone (resources and
        # recurrences would both allow it).
        graph = chain(6)
        assert compute_mii(graph, TIGHT_REGS) == 1
        problem = FixedIIProblem(
            graph, TIGHT_REGS, 1,
            register_caps={0: TIGHT_REGS.cluster.registers},
        )
        outcome = solve_fixed_ii(problem, 2_000_000)
        assert outcome.status == native.UNSAT


class TestSmtScheduler:
    def test_daxpy_proven_optimal(self):
        result = SmtScheduler(UNIFIED).schedule(daxpy())
        assert result.converged
        oracle = result.oracle
        assert oracle["backend"] == "smt"
        assert oracle["status"] == "optimal"
        assert oracle["proven_optimal"]
        assert result.ii == oracle["proven_lower_ii"] == oracle["achieved_ii"]
        assert result.mii == compute_mii(daxpy(), UNIFIED)

    def test_register_ladder_collects_unsat_certificates(self):
        graph = chain(6)
        mii = compute_mii(graph, TIGHT_REGS)
        result = SmtScheduler(TIGHT_REGS).schedule(graph)
        assert result.converged
        oracle = result.oracle
        # The register file, not resources or recurrences, binds: the
        # ladder climbed past MII through genuine UNSAT certificates.
        assert result.ii > mii
        assert oracle["status"] == "optimal"
        assert oracle["proven_lower_ii"] == result.ii
        unsat = {
            c["ii"] for c in oracle["certificates"] if c["verdict"] == "unsat"
        }
        assert unsat == set(range(mii, result.ii))
        # Every solver certificate records the horizon it was proven
        # under (they are horizon-relative statements).
        for cert in oracle["certificates"]:
            if cert["verdict"] in ("sat", "unsat"):
                assert cert["horizon"] is not None
                assert cert["horizon"] % cert["ii"] == 0
        # The heuristic is subject to the bound only when it stays
        # inside the relaxation (it spills on this machine, which is
        # its legitimate escape hatch).
        heur = MirsC(TIGHT_REGS, strict=False).schedule(chain(6))
        covered, _ = relaxation_covers(heur)
        if covered and heur.converged:
            assert heur.ii >= oracle["proven_lower_ii"]

    def test_exact_schedule_certifies_and_simulates(self):
        for machine, graph in (
            (UNIFIED, daxpy()),
            (TIGHT_REGS, chain(6)),
        ):
            result = SmtScheduler(machine).schedule(graph)
            report = certify_code(generate_code(result), result)
            assert report.ok, report.violations
            diff = run_differential(result, 17)
            assert diff.match, diff.summary()

    def test_clustered_split_materializes_moves(self):
        # One load fans out to eight multiplies whose stores saturate a
        # single cluster's memory port: the exact model must split the
        # loop and route the shared value through an inter-cluster move.
        b = LoopBuilder("fanout", trip_count=50)
        x = b.load(array=0)
        for i in range(8):
            b.store(b.mul(x, x), array=1 + i)
        graph = b.build()
        machine = parse_config("2-(GP2M1-REG32)")
        result = SmtScheduler(machine).schedule(graph)
        assert result.converged
        assert result.oracle["proven_optimal"]
        assert result.move_operations > 0
        assert len(set(result.clusters.values())) == 2
        report = certify_code(generate_code(result), result)
        assert report.ok, report.violations
        assert run_differential(result, 13).match

    def test_skipped_on_too_many_clusters(self):
        result = SmtScheduler(FOUR_CLUSTER, strict=False).schedule(daxpy())
        assert not result.converged
        assert result.oracle["status"] == "skipped"
        assert "clusters" in result.oracle["reason"]
        with pytest.raises(ConvergenceError, match="skipped"):
            SmtScheduler(FOUR_CLUSTER, strict=True).schedule(daxpy())

    def test_skipped_on_node_gate(self):
        params = MirsParams(smt=SmtParams(max_nodes=2))
        result = SmtScheduler(UNIFIED, params=params, strict=False).schedule(
            daxpy()
        )
        assert not result.converged
        assert result.oracle["status"] == "skipped"
        assert "nodes" in result.oracle["reason"]

    def test_unsolved_on_exhausted_budget(self):
        params = MirsParams(smt=SmtParams(step_budget=1))
        result = SmtScheduler(UNIFIED, params=params, strict=False).schedule(
            daxpy()
        )
        assert not result.converged
        assert result.oracle["status"] == "unsolved"
        assert "budget" in result.oracle["reason"]
        with pytest.raises(ConvergenceError, match="unsolved"):
            SmtScheduler(UNIFIED, params=params, strict=True).schedule(daxpy())

    def test_request_builds_smt_scheduler(self):
        scheduler = ScheduleRequest(scheduler="smt").make_scheduler(UNIFIED)
        assert isinstance(scheduler, SmtScheduler)


def _attempt_probe(graph, machine, ii):
    """Run one heuristic attempt at a fixed II on a pristine loop."""
    ordering = hrms_order(graph, machine)
    task = AttemptTask(
        graph=graph,
        machine=machine,
        params=MirsParams(),
        ii=ii,
        priorities=ordering.priority,
        graph_hash=stable_hash(canonical_graph(graph)),
    )
    return run_attempt(task)


def _outside_relaxation(feasible, machine, ii, horizon) -> bool:
    """Does a feasible heuristic state escape the exact model's scope?

    The exact UNSAT certificate only refutes schedules inside the
    relaxation (no spills, no invariant moves, no chained moves) whose
    normalized span fits the certificate's horizon and whose register
    pressure meets the bound.
    """
    graph = feasible.graph
    if any(n.is_spill for n in graph.nodes()):
        return True
    if feasible.spilled_invariants:
        return True
    for node in graph.nodes():
        if not node.is_move:
            continue
        if node.move_of_invariant is not None:
            return True
        if node.move_of is not None and graph.node(node.move_of).is_move:
            return True
    times = {
        nid: feasible.schedule.time(nid)
        for nid in feasible.schedule.scheduled_ids()
    }
    if times:
        low, high = min(times.values()), max(times.values())
        if low % ii + (high - low) >= horizon:
            return True
    available = machine.cluster.registers
    if available is not None:
        analysis = LifetimeAnalysis(graph, feasible.schedule, machine)
        if any(
            analysis.max_live(c) > available
            for c in range(machine.clusters)
        ):
            return True
    return False


class TestCertificatesAgreeWithAttemptProbing:
    def test_resource_unsat_agrees_with_attempt_probe(self):
        # Three memory operations cannot beat one port: the exact
        # refutation at II=2 and the heuristic attempt must agree
        # (spilling is no escape here — it only adds memory traffic).
        graph = daxpy()
        problem = FixedIIProblem(graph, ONE_PORT, 2)
        assert solve_fixed_ii(problem, 1_000_000).status == native.UNSAT
        probe = _attempt_probe(graph.clone(), ONE_PORT, 2)
        assert not probe.outcome.scheduled

    def test_register_unsat_iis_checked_against_heuristic_attempts(self):
        """At every UNSAT-certified II the heuristic must fail as well —
        unless its feasible state escapes the relaxation (on this
        register-starved machine, by spilling)."""
        graph = chain(6)
        result = SmtScheduler(TIGHT_REGS, strict=False).schedule(graph)
        assert result.converged
        probed = 0
        for cert in result.oracle["certificates"]:
            if cert["verdict"] != "unsat":
                continue
            probe = _attempt_probe(graph.clone(), TIGHT_REGS, cert["ii"])
            probed += 1
            if probe.outcome.scheduled:
                assert _outside_relaxation(
                    probe.feasible, TIGHT_REGS, cert["ii"], cert["horizon"]
                ), (
                    f"heuristic attempt scheduled {graph.name} at "
                    f"II={cert['ii']} inside the relaxation, "
                    "contradicting the UNSAT certificate"
                )
        assert probed >= 1  # the register ladder certifies II below optimum


class TestDifferentialHypothesis:
    @settings(max_examples=15, deadline=None)
    @given(seed=graph_seeds, size=st.integers(min_value=4, max_value=12))
    def test_exact_vs_heuristic_on_random_loops(self, seed, size):
        graph = random_graph(seed, size=size)
        params = MirsParams(
            smt=SmtParams(engine="native", step_budget=400_000)
        )
        for machine in (UNIFIED_SMALL, TWO_CLUSTER):
            exact = SmtScheduler(
                machine, params=params, strict=False
            ).schedule(graph.clone())
            oracle = exact.oracle
            if oracle["status"] in ("skipped", "unsolved"):
                continue
            assert exact.converged
            # Internal consistency of the certificate ledger.
            assert exact.ii == oracle["achieved_ii"]
            assert oracle["proven_lower_ii"] <= exact.ii
            assert oracle["proven_lower_ii"] >= oracle["mii"]
            # Exact schedules are real programs: certifier + simulator.
            report = certify_code(generate_code(exact), exact)
            assert report.ok, report.violations
            diff = run_differential(exact, 11)
            assert diff.match, diff.summary()
            # The heuristic never beats a proven lower bound it is
            # subject to.
            heur = MirsC(machine, strict=False).schedule(graph.clone())
            covered, _ = relaxation_covers(heur)
            if not (covered and heur.converged):
                continue
            if heur.ii >= oracle["proven_lower_ii"]:
                continue
            # A lower heuristic II is only a violation if some UNSAT
            # certificate at that II actually covers its span.
            horizons = [
                c["horizon"]
                for c in oracle["certificates"]
                if c["verdict"] == "unsat" and c["ii"] == heur.ii
            ]
            refuted = any(
                span_within_horizon(heur, h) for h in horizons if h
            )
            assert not refuted, (
                f"heuristic II={heur.ii} beats the proven lower bound "
                f"{oracle['proven_lower_ii']} on {graph.name}"
            )


@pytest.mark.skipif(optional_import("z3") is None, reason="z3 not installed")
class TestZ3Backend:
    """Runs only on the z3-equipped CI leg (and locally with z3)."""

    def test_z3_agrees_with_native_on_verdicts(self):
        from repro.smt.z3backend import solve_fixed_ii_z3

        for graph, machine, iis in (
            (daxpy(), ONE_PORT, (2, 3)),
            (divpack(), DIVPACK_MACHINE, (34,)),
            (random_graph(3, size=8), TWO_CLUSTER, None),
        ):
            if iis is None:
                mii = compute_mii(graph, machine)
                iis = (mii, mii + 1)
            for ii in iis:
                problem = FixedIIProblem(graph, machine, ii)
                a = solve_fixed_ii(problem, 5_000_000)
                b = solve_fixed_ii_z3(problem, 500_000_000)
                if native.UNKNOWN in (a.status, b.status):
                    continue
                assert a.status == b.status, (graph.name, ii)
                if b.status == native.SAT:
                    assert problem.check_solution(
                        b.times, b.clusters, b.move_times
                    ) == []

    def test_z3_scheduler_end_to_end(self):
        params = MirsParams(smt=SmtParams(engine="z3"))
        result = SmtScheduler(UNIFIED, params=params).schedule(daxpy())
        assert result.converged
        assert result.oracle["engine"] == "z3"
        assert result.oracle["proven_optimal"]
        native_result = SmtScheduler(
            UNIFIED, params=MirsParams(smt=SmtParams(engine="native"))
        ).schedule(daxpy())
        assert result.ii == native_result.ii
        assert run_differential(result, 17).match
