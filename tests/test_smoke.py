"""End-to-end smoke tests: the full pipeline on small hand-built loops."""

from repro import (
    LoopBuilder,
    Mirs,
    MirsC,
    NonIterativeScheduler,
    parse_config,
)


def make_axpy(trip_count: int = 100):
    b = LoopBuilder("axpy", trip_count=trip_count)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    prod = b.mul(x, a)
    total = b.add(prod, y)
    b.store(total, array=2)
    return b.build()


def make_recurrence_loop():
    b = LoopBuilder("recur", trip_count=100)
    x = b.load(array=0)
    acc = b.add(x)
    b.loop_carried(acc, acc, distance=1)
    b.store(acc, array=1)
    return b.build()


def test_mirs_unified_schedules_axpy():
    machine = parse_config("1-(GP8M4-REG64)")
    result = Mirs(machine).schedule(make_axpy())
    assert result.converged
    assert result.ii >= result.mii
    assert result.move_operations == 0


def test_mirsc_clustered_schedules_axpy():
    machine = parse_config("4-(GP2M1-REG32)")
    result = MirsC(machine).schedule(make_axpy())
    assert result.converged
    assert result.ii >= result.mii


def test_mirsc_schedules_recurrence():
    machine = parse_config("2-(GP4M2-REG32)")
    result = MirsC(machine).schedule(make_recurrence_loop())
    assert result.converged
    # The add->add recurrence with distance 1 and latency 4 forces II >= 4.
    assert result.ii >= 4


def test_baseline_schedules_axpy():
    machine = parse_config("2-(GP4M2-REG64)")
    result = NonIterativeScheduler(machine).schedule(make_axpy())
    assert result.converged


def test_mirsc_beats_or_matches_baseline_on_ii():
    machine = parse_config("4-(GP2M1-REG64)")
    graph = make_axpy()
    ours = MirsC(machine).schedule(graph)
    baseline = NonIterativeScheduler(machine).schedule(graph)
    assert ours.converged
    if baseline.converged:
        assert ours.ii <= baseline.ii


def test_tight_registers_force_spills_or_larger_ii():
    machine = parse_config("1-(GP8M4-REG8)")
    b = LoopBuilder("pressure", trip_count=50)
    loads = [b.load(array=i) for i in range(6)]
    prods = [b.mul(loads[i], loads[(i + 1) % 6]) for i in range(6)]
    acc = b.add(*prods[:3])
    acc2 = b.add(*prods[3:])
    b.store(b.add(acc, acc2), array=10)
    graph = b.build()
    result = Mirs(machine).schedule(graph)
    assert result.converged
    assert all(used <= 8 for used in result.register_usage.values())
