"""Tests for the cycle-accurate execution simulator (repro.sim).

The centrepiece is the differential acceptance test: for every loop of
the default 16-loop workbench on two machine configurations, executing
the generated code must reproduce the scalar reference interpretation
bit for bit, and the measured useful cycles must equal
``II * (N + SC - 1)`` for the simulated trip count.
"""

import random

import pytest

from repro import LoopBuilder, MirsC
from repro.codegen import generate_code
from repro.exec import ResultCache, simulation_cache_key
from repro.machine.resources import OpKind
from repro.sim import (
    ReferenceInterpreter,
    VliwSimulator,
    run_differential,
    run_reference,
    simulate,
    simulate_many,
    simulate_schedule,
)
from repro.sim import ops
from repro.sim.vliw import effective_iterations
from repro.workloads.perfect import cached_suite

from tests.helpers import (
    FOUR_CLUSTER_TIGHT,
    UNIFIED,
    daxpy,
    random_graph,
    reduction,
)

DIFF_ITERATIONS = 24


# ----------------------------------------------------------------------
# Value semantics
# ----------------------------------------------------------------------


class TestOps:
    def test_values_stay_in_field(self):
        for kind in OpKind:
            value = ops.evaluate(kind, [ops.FIELD_PRIME - 1, 12345])
            assert 0 <= value < ops.FIELD_PRIME

    def test_operand_order_is_erased(self):
        operands = [987654321, 123456789, 42]
        for kind in (OpKind.ADD, OpKind.MUL, OpKind.DIV, OpKind.STORE):
            baseline = ops.evaluate(kind, list(operands))
            for _ in range(5):
                shuffled = list(operands)
                random.Random(0).shuffle(shuffled)
                assert ops.evaluate(kind, shuffled) == baseline

    def test_kinds_are_distinguished(self):
        operands = [7, 11]
        values = {
            ops.evaluate(kind, list(operands))
            for kind in (OpKind.ADD, OpKind.MUL, OpKind.DIV, OpKind.SQRT)
        }
        assert len(values) == 4

    def test_identity_functions_are_pure(self):
        assert ops.initial_value(3, -2) == ops.initial_value(3, -2)
        assert ops.initial_value(3, -2) != ops.initial_value(3, -1)
        assert ops.invariant_value(0) != ops.invariant_value(1)
        assert ops.initial_memory(64) != ops.initial_memory(72)

    def test_move_forwards_its_operand(self):
        assert ops.evaluate(OpKind.MOVE, [991]) == 991

    def test_plain_load_yields_memory_word(self):
        assert ops.load_value(123456, []) == 123456


# ----------------------------------------------------------------------
# Reference interpreter
# ----------------------------------------------------------------------


class TestReference:
    def test_daxpy_store_values(self):
        """The store writes add(mul(x, a), y) of the same iteration."""
        graph = daxpy()
        run = run_reference(graph, 5)
        a = ops.invariant_value(graph.invariants()[0].id)
        for iteration in range(5):
            x = run.values[(0, iteration)]
            y = run.values[(1, iteration)]
            product = ops.evaluate(OpKind.MUL, [x, a])
            total = ops.evaluate(OpKind.ADD, [product, y])
            assert run.values[(3, iteration)] == total
            address = graph.node(4).mem_ref.address(iteration)
            assert run.memory[address] == total

    def test_loads_see_prior_stores(self):
        b = LoopBuilder("feedback", trip_count=10)
        x = b.load(array=0, stride=1)
        b.store(x, array=0, stride=1)  # same address stream
        graph = b.build()
        run = run_reference(graph, 3)
        # The load reads the untouched word first, the store writes it
        # back verbatim: memory must equal the initial contents.
        for iteration in range(3):
            address = graph.node(0).mem_ref.address(iteration)
            assert run.memory[address] == ops.initial_memory(address)

    def test_live_in_collapse(self):
        graph = reduction()  # acc -> acc at distance 1
        distinct = ReferenceInterpreter(graph).run(3)
        collapsed = ReferenceInterpreter(graph, live_in_moduli=1).run(3)
        # With distance 1 both conventions agree: iteration 0 reads the
        # producer's instance -1, which is its own collapse class.
        assert distinct.values == collapsed.values

    def test_zero_distance_cycle_rejected(self):
        from repro.errors import GraphError
        from repro.graph.ddg import DepKind, DependenceGraph

        graph = DependenceGraph("cyclic")
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.ADD)
        graph.add_edge(a.id, b.id, kind=DepKind.REG, distance=0)
        graph.add_edge(b.id, a.id, kind=DepKind.REG, distance=0)
        with pytest.raises(GraphError):
            ReferenceInterpreter(graph)


# ----------------------------------------------------------------------
# VLIW simulator
# ----------------------------------------------------------------------


class TestSimulator:
    def test_useful_cycles_follow_the_formula(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        run = simulate(result, 40)
        sim = run.result
        assert sim.useful_cycles == sim.ii * (
            sim.iterations + sim.stage_count - 1
        )

    def test_effective_iterations_round_up_to_kernel_passes(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        fill = code.stage_count - 1
        for requested in (1, fill + 1, 40):
            effective = effective_iterations(code, requested)
            assert effective >= max(requested, fill + code.mve_factor)
            assert (effective - fill) % code.mve_factor == 0
        with pytest.raises(ValueError):
            effective_iterations(code, 0)

    def test_instruction_counts(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        run = simulate(result, 30)
        sim = run.result
        # Every operation executes once per iteration.
        operations = len(result.graph)
        assert sim.instructions == operations * sim.iterations
        assert sim.loads == 2 * sim.iterations
        assert sim.stores == sim.iterations

    def test_observed_stalls_respond_to_prefetching(self):
        """Binding-prefetched loads tolerate their misses by construction."""
        from repro.machine.technology import TechnologyModel
        from repro.memsim.prefetch import apply_binding_prefetch

        b = LoopBuilder("gather", trip_count=512)
        total = None
        for j in range(3):
            v = b.load(array=j, stride=16)  # 4 lines apart: misses often
            total = v if total is None else b.add(total, v)
        b.store(total, array=50)
        graph = b.build()

        technology = TechnologyModel()
        normal = MirsC(UNIFIED).schedule(graph.clone())
        stalls_normal = simulate(normal, 64).result.stall_cycles

        prefetched_graph = apply_binding_prefetch(graph, UNIFIED, technology)
        prefetched = MirsC(UNIFIED).schedule(prefetched_graph)
        stalls_prefetched = simulate(prefetched, 64).result.stall_cycles

        assert stalls_normal > 0
        assert stalls_prefetched < stalls_normal

    def test_state_digest_is_deterministic(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        first = simulate(result, 25).result
        second = simulate(result, 25).result
        assert first == second


# ----------------------------------------------------------------------
# Differential validation (the acceptance criterion)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[UNIFIED, FOUR_CLUSTER_TIGHT],
                ids=lambda m: m.name)
def workbench_schedules(request):
    machine = request.param
    loops = cached_suite(16)
    scheduler = MirsC(machine)
    return [scheduler.schedule(loop.graph.clone()) for loop in loops]


class TestDifferential:
    def test_workbench_code_matches_reference(self, workbench_schedules):
        for result in workbench_schedules:
            report = run_differential(result, DIFF_ITERATIONS)
            assert report.match, report.summary()
            sim = report.simulation
            assert sim.useful_cycles == sim.ii * (
                sim.iterations + sim.stage_count - 1
            )
            assert sim.iterations >= DIFF_ITERATIONS

    def test_random_graphs_match(self):
        for seed in range(6):
            graph = random_graph(seed, size=9)
            result = MirsC(FOUR_CLUSTER_TIGHT).schedule(graph)
            report = run_differential(result, 13)
            assert report.match, report.summary()

    def test_mismatch_is_detected(self):
        """Corrupted code must not silently 'match' the reference."""
        import dataclasses

        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        all_names = sorted({ns[0] for ns in code.registers.values()})
        # Sabotage: rewire one kernel instruction's first register
        # operand to a different value's register — exactly the shape of
        # a renaming bug in the emitter.
        done = False
        for bundle in code.kernel:
            for index, inst in enumerate(bundle):
                sources = [s for s in inst.sources if not s.startswith("inv:")]
                if not sources:
                    continue
                wrong = next(n for n in all_names if n != sources[0])
                patched = tuple(
                    wrong if s == sources[0] else s for s in inst.sources
                )
                bundle[index] = dataclasses.replace(inst, sources=patched)
                done = True
                break
            if done:
                break
        assert done
        run = VliwSimulator(result, code=code).run(20)
        reference = ReferenceInterpreter(result.graph).run(
            run.result.iterations
        )
        assert run.values != reference.values


# ----------------------------------------------------------------------
# Cached / batched simulation
# ----------------------------------------------------------------------


class TestRunner:
    def test_simulate_many_orders_and_caches(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        loops = cached_suite(3)
        scheduler = MirsC(UNIFIED)
        schedules = [scheduler.schedule(loop.graph.clone()) for loop in loops]

        first = simulate_many(schedules, 20, cache=cache)
        assert [r.loop for r in first] == [loop.graph.name for loop in loops]

        # A second call must be served entirely from the cache: break the
        # simulation path and make sure nobody needs it.
        import repro.sim.runner as runner_module

        def boom(item):
            raise AssertionError("cache miss on a warm cache")

        monkeypatch.setattr(runner_module, "_simulate_item", boom)
        second = simulate_many(schedules, 20, cache=cache)
        assert second == first

    def test_run_differential_uses_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        result = MirsC(UNIFIED).schedule(daxpy())
        first = run_differential(result, 20, cache=cache)
        assert first.match
        assert len(cache) == 1

        # Warm rerun must not execute anything.
        import repro.sim.differential as differential_module

        class Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("simulated on a warm cache")

        monkeypatch.setattr(differential_module, "VliwSimulator", Boom)
        assert run_differential(result, 20, cache=cache) == first

    def test_simulate_schedule_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = MirsC(UNIFIED).schedule(daxpy())
        first = simulate_schedule(result, 20, cache=cache)
        assert len(cache) == 1
        assert simulate_schedule(result, 20, cache=cache) == first

    def test_cache_key_sensitivity(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        key_20 = simulation_cache_key(result, 20)
        key_21 = simulation_cache_key(result, 21)
        assert key_20 != key_21
        assert key_20 == simulation_cache_key(result, 20)


class TestSurplusIterations:
    """Simulation-time reporting of non-dividing unroll semantics."""

    def _unrolled_schedule(self, factor, trip_count):
        import warnings

        from repro.workloads.unroll import unroll

        b = LoopBuilder("nondiv", trip_count=trip_count)
        b.store(b.add(b.load(array=0)), array=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            graph = unroll(b.build(), factor)
        return MirsC(UNIFIED).schedule(graph)

    def test_non_dividing_unroll_reports_surplus(self):
        # trip 10, factor 3 -> unrolled trip 4 covers 12 source
        # iterations: 2 surplus.
        schedule = self._unrolled_schedule(3, 10)
        graph = schedule.graph
        assert graph.unroll_factor == 3
        assert graph.source_trip_count == 10
        run = simulate(schedule, graph.trip_count)
        assert run.result.unroll_factor == 3
        assert run.result.surplus_iterations == 2
        assert "surplus source iteration" in run.result.summary()

    def test_dividing_unroll_reports_none(self):
        schedule = self._unrolled_schedule(2, 10)
        run = simulate(schedule, schedule.graph.trip_count)
        assert run.result.unroll_factor == 2
        assert run.result.surplus_iterations == 0
        assert "surplus source iteration" not in run.result.summary()

    def test_partial_run_reports_none(self):
        # Below the loop's trip count the surplus is not executed.
        schedule = self._unrolled_schedule(3, 1000)
        run = simulate(schedule, 6)
        assert run.result.surplus_iterations == 0

    def test_clone_and_pickle_preserve_source_trip(self):
        import pickle

        from repro.workloads.unroll import unroll

        b = LoopBuilder("keep", trip_count=9)
        b.store(b.add(b.load(array=0)), array=1)
        with pytest.warns(UserWarning):
            graph = unroll(b.build(), 2)
        assert graph.source_trip_count == 9
        assert graph.clone().source_trip_count == 9
        assert pickle.loads(pickle.dumps(graph)).source_trip_count == 9
        # A second (dividing) unroll composes the factor, keeps the source.
        again = unroll(graph, 5)
        assert again.unroll_factor == 10
        assert again.source_trip_count == 9
