"""Integration tests for the experiment drivers (tiny suites).

These run each table/figure driver end-to-end on a handful of loops and
pin the qualitative shapes the paper reports; the benchmarks rerun them
at larger scale.
"""

import pytest

from repro.eval.experiments import (
    figure2_rows,
    figure5_rows,
    figure6_rows,
    figure7_rows,
    simulator_rows,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.machine.config import paper_configuration
from repro.workloads.perfect import cached_suite

LOOPS = cached_suite(4)


class TestRunner:
    def test_schedule_suite_mirsc(self):
        run = schedule_suite(paper_configuration(2, 64), LOOPS, "mirsc")
        assert len(run.results) == len(LOOPS)
        assert run.not_converged_count == 0
        assert run.sum_ii() > 0
        assert run.sum_cycles() > 0

    def test_schedule_suite_baseline(self):
        run = schedule_suite(paper_configuration(2, None), LOOPS, "baseline")
        assert run.sum_ii(run.converged_indices()) == run.sum_ii()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            schedule_suite(paper_configuration(1, 64), LOOPS, "magic")


class TestTableDrivers:
    def test_figure2_shape(self):
        headers, rows, note = figure2_rows()
        assert len(rows) == 12
        assert len(headers) == len(rows[0])

    def test_table1_shape(self):
        headers, rows, _ = table1_rows(
            LOOPS, clusters=(1, 2), move_latencies=(1,)
        )
        assert len(rows) == 2
        for row in rows:
            assert row[2] == len(LOOPS)
            # not-different + different <= loops
            assert row[3] + row[4] <= len(LOOPS)

    def test_table2_shape(self):
        headers, rows, _ = table2_rows(
            LOOPS, clusters=(2,), move_latencies=(1,)
        )
        (row,) = rows
        assert row[0] == 2
        assert row[6] <= 1.0 or row[3] == 0  # II ratio

    def test_table3_shape(self):
        headers, rows, _ = table3_rows(LOOPS, move_latencies=(1,))
        assert len(rows) == 6
        for row in rows:
            assert row[3] >= 0 and row[4] >= 0

    def test_figure5_shape(self):
        headers, rows, _ = figure5_rows(
            LOOPS,
            clusters=(1, 2),
            registers=(32, 64),
            move_latencies=(1,),
        )
        assert len(rows) == 4
        for row in rows:
            assert row[3] > 0 and row[5] > 0

    def test_figure6_speedup_reference(self):
        headers, rows, _ = figure6_rows(
            LOOPS, clusters=(1, 2), bus_counts=(2,)
        )
        assert rows[0][3] == 1.0  # k=1 is its own reference

    def test_figure7_modes(self):
        headers, rows, _ = figure7_rows(LOOPS, configs=((1, 64),))
        modes = {row[0] for row in rows}
        assert modes == {"normal", "prefetch"}
        normal = [r for r in rows if r[0] == "normal"][0]
        prefetch = [r for r in rows if r[0] == "prefetch"][0]
        assert prefetch[4] <= normal[4] + 1e-9  # stall component shrinks

    def test_simulator_rows_measured_vs_analytic(self):
        headers, rows, _ = simulator_rows(
            LOOPS[:2], configs=("1-(GP8M4-REG64)",), iterations=20
        )
        assert len(headers) == len(rows[0])
        for row in rows:
            useful_sim = row[headers.index("useful sim")]
            useful_model = row[headers.index("useful model")]
            assert useful_sim == useful_model
            assert row[-1] == "ok"


class TestReporting:
    def test_render_table_basics(self):
        text = render_table(
            "Title", ["a", "b"], [[1, 2.5], ["x", 10_000.0]], "note"
        )
        assert "Title" in text
        assert "=====" in text
        assert "note" in text
        assert "10,000" in text

    def test_render_empty_rows(self):
        text = render_table("Empty", ["col"], [])
        assert "Empty" in text
