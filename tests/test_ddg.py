"""Unit tests for the dependence graph."""

import pytest

from repro import DependenceGraph, DepKind, GraphError, MemRef, OpKind


@pytest.fixture
def graph():
    return DependenceGraph("test", trip_count=10)


class TestNodes:
    def test_new_node_assigns_fresh_ids(self, graph):
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.MUL)
        assert a.id != b.id
        assert len(graph) == 2

    def test_names_are_generated(self, graph):
        node = graph.new_node(OpKind.LOAD)
        assert node.name.startswith("load")

    def test_contains_and_lookup(self, graph):
        node = graph.new_node(OpKind.ADD)
        assert node.id in graph
        assert graph.node(node.id) is node
        assert 999 not in graph
        with pytest.raises(GraphError):
            graph.node(999)

    def test_remove_node_removes_edges(self, graph):
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.MUL)
        graph.add_edge(a.id, b.id)
        graph.remove_node(b.id)
        assert graph.out_edges(a.id) == []
        assert b.id not in graph

    def test_remove_node_drops_invariant_consumption(self, graph):
        a = graph.new_node(OpKind.ADD)
        inv = graph.new_invariant(consumers={a.id})
        graph.remove_node(a.id)
        assert inv.consumers == set()


class TestEdges:
    def test_add_and_query(self, graph):
        a = graph.new_node(OpKind.LOAD)
        b = graph.new_node(OpKind.ADD)
        edge = graph.add_edge(a.id, b.id, distance=2)
        assert edge in graph.out_edges(a.id)
        assert edge in graph.in_edges(b.id)
        assert graph.preds(b.id) == {a.id}
        assert graph.succs(a.id) == {b.id}

    def test_parallel_edges_allowed(self, graph):
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.ADD)
        graph.add_edge(a.id, b.id, distance=0)
        graph.add_edge(a.id, b.id, distance=1)
        assert len(graph.out_edges(a.id)) == 2

    def test_store_produces_no_register_value(self, graph):
        store = graph.new_node(OpKind.STORE)
        other = graph.new_node(OpKind.ADD)
        with pytest.raises(GraphError):
            graph.add_edge(store.id, other.id, kind=DepKind.REG)
        # Memory ordering out of a store is fine.
        graph.add_edge(store.id, other.id, kind=DepKind.MEM)

    def test_negative_distance_rejected(self, graph):
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.ADD)
        with pytest.raises(GraphError):
            graph.add_edge(a.id, b.id, distance=-1)

    def test_remove_edge(self, graph):
        a = graph.new_node(OpKind.ADD)
        b = graph.new_node(OpKind.ADD)
        edge = graph.add_edge(a.id, b.id)
        graph.remove_edge(edge)
        assert graph.out_edges(a.id) == []
        with pytest.raises(GraphError):
            graph.remove_edge(edge)

    def test_reg_consumers_and_producers(self, graph):
        a = graph.new_node(OpKind.LOAD)
        b = graph.new_node(OpKind.ADD)
        s = graph.new_node(OpKind.STORE)
        graph.add_edge(a.id, b.id, kind=DepKind.REG)
        graph.add_edge(b.id, s.id, kind=DepKind.REG)
        graph.add_edge(s.id, a.id, kind=DepKind.MEM, distance=1)
        assert [e.dst for e in graph.reg_consumers(b.id)] == [s.id]
        assert [e.src for e in graph.reg_producers(b.id)] == [a.id]


class TestInvariants:
    def test_new_invariant(self, graph):
        a = graph.new_node(OpKind.ADD)
        inv = graph.new_invariant(consumers={a.id})
        assert graph.invariant(inv.id) is inv
        assert graph.invariants_of(a.id) == [inv]

    def test_unknown_invariant(self, graph):
        with pytest.raises(GraphError):
            graph.invariant(42)

    def test_invariant_consumer_must_exist(self, graph):
        with pytest.raises(GraphError):
            graph.new_invariant(consumers={123})


class TestClone:
    def test_clone_is_deep(self, graph):
        a = graph.new_node(OpKind.LOAD, mem_ref=MemRef(array=1))
        b = graph.new_node(OpKind.ADD)
        graph.add_edge(a.id, b.id)
        inv = graph.new_invariant(consumers={b.id})
        copy = graph.clone()
        copy.remove_node(b.id)
        assert b.id in graph
        assert inv.consumers == {b.id}
        assert copy.invariant(inv.id).consumers == set()

    def test_clone_preserves_attributes(self, graph):
        node = graph.new_node(
            OpKind.LOAD, mem_ref=MemRef(array=3, stride=2), latency_override=9
        )
        copy = graph.clone()
        cloned = copy.node(node.id)
        assert cloned.mem_ref == node.mem_ref
        assert cloned.latency_override == 9

    def test_clone_ids_continue_without_collision(self, graph):
        graph.new_node(OpKind.ADD)
        copy = graph.clone()
        fresh = copy.new_node(OpKind.MUL)
        assert fresh.id not in [n.id for n in graph.nodes()]


class TestValidationAndStats:
    def test_validate_passes_on_consistent_graph(self, graph):
        a = graph.new_node(OpKind.LOAD)
        b = graph.new_node(OpKind.ADD)
        graph.add_edge(a.id, b.id)
        graph.validate()

    def test_count_kind(self, graph):
        graph.new_node(OpKind.LOAD)
        graph.new_node(OpKind.LOAD)
        graph.new_node(OpKind.ADD)
        assert graph.count_kind(OpKind.LOAD) == 2
        assert graph.count_kind(OpKind.SQRT) == 0

    def test_memory_nodes(self, graph):
        graph.new_node(OpKind.LOAD)
        graph.new_node(OpKind.STORE)
        graph.new_node(OpKind.MUL)
        assert len(graph.memory_nodes()) == 2


class TestMemRef:
    def test_addresses_advance_by_stride(self):
        ref = MemRef(array=2, offset=3, stride=4, element_size=8)
        assert ref.address(1) - ref.address(0) == 4 * 8
        assert ref.address(0) == (2 << 24) + 3 * 8

    def test_distinct_arrays_never_collide(self):
        a = MemRef(array=1)
        b = MemRef(array=2)
        addresses_a = {a.address(i) for i in range(100)}
        addresses_b = {b.address(i) for i in range(100)}
        assert not (addresses_a & addresses_b)
