"""Unit tests for the machine configuration model."""

import pytest

from repro import ConfigError, MachineConfig, OpKind, parse_config
from repro.machine.config import (
    ClusterConfig,
    minimum_buses_for,
    paper_configuration,
    scalability_configuration,
)
from repro.machine.resources import ResourceClass


class TestParseConfig:
    def test_parses_paper_syntax(self):
        machine = parse_config("2-(GP4M2-REG64)")
        assert machine.clusters == 2
        assert machine.cluster.gp_units == 4
        assert machine.cluster.mem_ports == 2
        assert machine.cluster.registers == 64

    def test_round_trips_name(self):
        for name in ("1-(GP8M4-REG16)", "4-(GP2M1-REG128)", "2-(GP4M2-REGinf)"):
            assert parse_config(name).name == name

    def test_unbounded_registers(self):
        machine = parse_config("1-(GP8M4-REGinf)")
        assert machine.cluster.registers is None
        assert machine.total_registers is None

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_config("8 clusters please")

    def test_rejects_malformed_counts(self):
        with pytest.raises(ConfigError):
            parse_config("0-(GP8M4-REG64)")

    def test_move_latency_and_buses_kwargs(self):
        machine = parse_config("2-(GP4M2-REG64)", buses=3, move_latency=3)
        assert machine.buses == 3
        assert machine.move_latency == 3


class TestDerivedQuantities:
    def test_totals(self):
        machine = parse_config("4-(GP2M1-REG32)")
        assert machine.total_gp_units == 8
        assert machine.total_mem_ports == 4
        assert machine.total_registers == 128

    def test_is_clustered(self):
        assert not parse_config("1-(GP8M4-REG64)").is_clustered
        assert parse_config("2-(GP4M2-REG64)").is_clustered

    def test_latencies_match_paper(self):
        machine = parse_config("1-(GP8M4-REG64)")
        assert machine.latency(OpKind.ADD) == 4
        assert machine.latency(OpKind.MUL) == 4
        assert machine.latency(OpKind.DIV) == 17
        assert machine.latency(OpKind.SQRT) == 30

    def test_move_latency_via_config(self):
        machine = parse_config("2-(GP4M2-REG64)", move_latency=3)
        assert machine.latency(OpKind.MOVE) == 3

    def test_occupancy_pipelined_vs_not(self):
        machine = parse_config("1-(GP8M4-REG64)")
        assert machine.occupancy(OpKind.ADD) == 1
        assert machine.occupancy(OpKind.MUL) == 1
        assert machine.occupancy(OpKind.DIV) == 17
        assert machine.occupancy(OpKind.SQRT) == 30
        assert machine.occupancy(OpKind.LOAD) == 1

    def test_instances(self):
        machine = parse_config("2-(GP4M2-REG64)", buses=3)
        assert machine.instances(ResourceClass.GP_FU) == 4
        assert machine.instances(ResourceClass.MEM_PORT) == 2
        assert machine.instances(ResourceClass.OUT_PORT) == 1
        assert machine.instances(ResourceClass.IN_PORT) == 1
        assert machine.instances(ResourceClass.BUS) == 3

    def test_unbounded_buses(self):
        machine = parse_config("2-(GP4M2-REG64)", buses=None)
        assert machine.instances(ResourceClass.BUS) is None


class TestBuilders:
    def test_with_registers(self):
        machine = parse_config("2-(GP4M2-REG64)")
        smaller = machine.with_registers(16)
        assert smaller.cluster.registers == 16
        assert machine.cluster.registers == 64  # original untouched

    def test_with_move_latency_and_buses(self):
        machine = parse_config("2-(GP4M2-REG64)")
        assert machine.with_move_latency(3).move_latency == 3
        assert machine.with_buses(None).buses is None

    def test_paper_configuration_splits_resources(self):
        for k in (1, 2, 4):
            machine = paper_configuration(k, 32)
            assert machine.total_gp_units == 8
            assert machine.total_mem_ports == 4

    def test_paper_configuration_rejects_uneven_split(self):
        with pytest.raises(ConfigError):
            paper_configuration(3, 32)

    def test_scalability_configuration_replicates_element(self):
        machine = scalability_configuration(6)
        assert machine.clusters == 6
        assert machine.cluster.gp_units == 2
        assert machine.cluster.mem_ports == 1
        assert machine.cluster.registers == 32

    def test_minimum_buses_rule_of_thumb(self):
        assert minimum_buses_for(1) == 1
        assert minimum_buses_for(4) == 2
        assert minimum_buses_for(8) == 4


class TestValidation:
    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                clusters=1,
                cluster=ClusterConfig(gp_units=1, mem_ports=1, registers=8),
                latencies={OpKind.ADD: 0},
            )

    def test_rejects_zero_registers(self):
        with pytest.raises(ConfigError):
            ClusterConfig(gp_units=1, mem_ports=1, registers=0)

    def test_rejects_zero_buses(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                clusters=2,
                cluster=ClusterConfig(gp_units=4, mem_ports=2, registers=8),
                buses=0,
            )

    def test_rejects_bad_move_latency(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                clusters=2,
                cluster=ClusterConfig(gp_units=4, mem_ports=2, registers=8),
                move_latency=0,
            )
