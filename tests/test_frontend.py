"""Tests for the source-loop frontend (:mod:`repro.frontend`).

Covers the whole pipeline the acceptance criteria name:

* parsing (the supported fragment and its rejections, parser registry,
  tree-sitter C gating),
* name classification and the exact memory dependence test,
* lowering (scalar recurrences through copy chains, CSE'd loads,
  invariants, MemRef streams),
* the RecMII acceptance criterion: ``ewma2``'s copy chain produces a
  distance-2 arc that *halves* RecMII versus a defaulted distance-1,
* the three-link source differential over the full corpus on both
  reference machines (schedule + certify + bit-for-bit validation).
"""

from __future__ import annotations

import textwrap

import pytest

from repro import LoopBuilder, ScheduleRequest, generate_code
from repro.analysis import certify_code
from repro.core.request import SessionConfig
from repro.errors import FrontendError
from repro.frontend import (
    classify_names,
    lower_kernel,
    lower_source,
    memory_dependences,
    parse_source,
    parser_for,
    run_source,
    run_source_differential,
)
from repro.frontend.analyze import walk_expr
from repro.frontend.corpus import (
    CORPUS_KERNELS,
    corpus_path,
    load_corpus,
    load_kernel,
)
from repro.frontend.parser import (
    DEFAULT_TRIP_COUNT,
    PythonAstParser,
    available_parsers,
    get_parser,
)
from repro.graph.ddg import DepKind
from repro.graph.recurrences import recurrence_mii
from repro.machine.resources import OpKind
from repro.sim.reference import ReferenceInterpreter

from tests.helpers import FOUR_CLUSTER, UNIFIED

MACHINES = (UNIFIED, FOUR_CLUSTER)


def parse_text(text: str, **kwargs):
    """Parse dedented Python source text into kernels."""
    return PythonAstParser().parse(
        textwrap.dedent(text), source="<test>", **kwargs
    )


def one_kernel(text: str, **kwargs):
    kernels = parse_text(text, **kwargs)
    assert len(kernels) == 1
    return kernels[0]


def _subscripts(kernel):
    """Every Subscript of the kernel (targets and expression reads)."""
    from repro.frontend.ir import Subscript

    for stmt in kernel.body:
        if isinstance(stmt.target, Subscript):
            yield stmt.target
        for node in walk_expr(stmt.expr):
            if isinstance(node, Subscript):
                yield node


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


class TestPythonParser:
    def test_literal_range_and_body(self):
        kernel = one_kernel(
            """
            def k(x, y):
                for i in range(100):
                    y[i] = x[i] * 2.0
            """
        )
        assert kernel.name == "k"
        assert kernel.params == ("x", "y")
        assert kernel.loop.var == "i"
        assert kernel.loop.start == 0
        assert kernel.loop.step == 1
        assert kernel.loop.trip_count == 100
        assert kernel.loop.symbolic_bound is None
        assert len(kernel.body) == 1

    def test_symbolic_bound_uses_default_trip_count(self):
        text = """
            def k(x, y, n):
                for i in range(n):
                    y[i] = x[i]
            """
        kernel = one_kernel(text)
        assert kernel.loop.trip_count == DEFAULT_TRIP_COUNT
        assert kernel.loop.symbolic_bound == "n"
        assert one_kernel(text, default_trip_count=7).loop.trip_count == 7

    def test_start_step_and_affine_offsets(self):
        kernel = one_kernel(
            """
            def k(a, b):
                for i in range(1, 50, 2):
                    b[i] = a[i - 1] + a[2 * i + 3]
            """
        )
        assert kernel.loop.start == 1
        assert kernel.loop.step == 2
        assert kernel.loop.trip_count == 25
        assert {(s.array, s.coeff, s.offset) for s in _subscripts(kernel)} == {
            ("b", 1, 0),
            ("a", 1, -1),
            ("a", 2, 3),
        }

    def test_augassign_desugars(self):
        kernel = one_kernel(
            """
            def dotk(x, y, s):
                for i in range(8):
                    s += x[i] * y[i]
            """
        )
        stmt = kernel.body[0]
        assert stmt.target.name == "s"
        assert stmt.expr.op == "+"
        assert stmt.expr.left.name == "s"

    def test_sqrt_call_and_negative_literal(self):
        kernel = one_kernel(
            """
            def k(x, y):
                for i in range(8):
                    y[i] = sqrt(x[i]) + (-2.5)
            """
        )
        lowered = lower_kernel(kernel)
        kinds = {n.kind for n in lowered.graph.nodes()}
        assert OpKind.SQRT in kinds
        assert "lit_-2.5" in lowered.invariants

    def test_innermost_loop_of_a_nest_is_taken(self):
        kernel = one_kernel(
            """
            def k(x, y, n, m):
                for j in range(m):
                    for i in range(n):
                        y[i] = x[i]
            """
        )
        assert kernel.loop.var == "i"

    def test_functions_without_loops_are_skipped(self):
        kernels = parse_text(
            """
            def helper(v):
                return v + 1

            def k(x, y):
                for i in range(4):
                    y[i] = x[i]
            """
        )
        assert [k.name for k in kernels] == ["k"]

    @pytest.mark.parametrize(
        "body, message",
        [
            ("for i in range(4):\n        x[j] = 1.0", "symbolic offsets"),
            ("for i in range(4):\n        x[i * i] = 1.0", "non-affine"),
            ("for i in whatever(4):\n        x[i] = 1.0", "range"),
            ("for i in range(4):\n        x[i] = True", "numeric literals"),
            ("for i in range(0):\n        x[i] = 1.0", "no iterations"),
            ("for i in range(4):\n        x[i] = i % 2", "operator"),
            ("for i in range(4):\n        print(x[i])", "assignments"),
        ],
    )
    def test_unsupported_fragments_rejected(self, body, message):
        with pytest.raises(FrontendError, match=message):
            parse_text(f"def k(x, j):\n    {body}")

    def test_sibling_loops_rejected(self):
        with pytest.raises(FrontendError, match="top-level loop"):
            parse_text(
                """
                def k(x, y):
                    for i in range(4):
                        y[i] = x[i]
                    for i in range(4):
                        x[i] = y[i]
                """
            )


class TestParserRegistry:
    def test_python_parser_registered_and_available(self):
        assert available_parsers().get("python") is True
        assert get_parser("python").name == "python"

    def test_parser_for_by_suffix(self):
        assert parser_for("anything.py").name == "python"

    def test_unknown_parser_and_suffix(self):
        with pytest.raises(FrontendError, match="no parser registered"):
            get_parser("fortran")
        with pytest.raises(FrontendError, match="no parser claims"):
            parser_for("loop.f90")

    def test_parse_source_errors(self, tmp_path):
        with pytest.raises(FrontendError, match="cannot read"):
            parse_source(tmp_path / "missing.py")
        empty = tmp_path / "empty.py"
        empty.write_text("x = 1\n")
        with pytest.raises(FrontendError, match="no supported loop"):
            parse_source(empty)
        with pytest.raises(FrontendError, match="nope"):
            parse_source(corpus_path("saxpy"), kernel="nope")

    def test_c_parser_gated_cleanly(self):
        from repro.frontend.cparse import c_parser_available, make_c_parser

        if c_parser_available():  # pragma: no cover - optional dep
            assert make_c_parser().name == "c"
        else:
            # The registry lists it, marks it unavailable, and using it
            # fails with an install hint - not an ImportError.
            assert available_parsers().get("c") is False
            with pytest.raises(FrontendError, match="C parser unavailable"):
                make_c_parser()
            with pytest.raises(FrontendError, match="C parser unavailable"):
                parser_for("kernels.c")


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------


class TestAnalysis:
    def test_classify_roles(self):
        kernel = one_kernel(
            """
            def k(x, y, a, s, n):
                for i in range(n):
                    s = s + a * x[i]
                    y[i] = s
            """
        )
        roles = classify_names(kernel)
        assert roles.induction == "i"
        assert set(roles.arrays) == {"x", "y"}
        assert set(roles.loop_scalars) == {"s"}
        assert set(roles.invariants) == {"a"}
        assert roles.role_of("a") == "invariant"

    def test_induction_variable_misuse_rejected(self):
        with pytest.raises(FrontendError, match="assigned inside"):
            classify_names(one_kernel(
                """
                def k(x):
                    for i in range(4):
                        i = i
                """
            ))
        with pytest.raises(FrontendError, match="used as a value"):
            classify_names(one_kernel(
                """
                def k(x):
                    for i in range(4):
                        x[i] = i
                """
            ))

    def test_array_scalar_conflict_rejected(self):
        with pytest.raises(FrontendError, match="array and as a"):
            classify_names(one_kernel(
                """
                def k(x, n):
                    for i in range(n):
                        x[i] = x
                """
            ))

    def test_bound_used_in_body_rejected(self):
        with pytest.raises(FrontendError, match="loop bound"):
            classify_names(one_kernel(
                """
                def k(x, n):
                    for i in range(n):
                        x[i] = n
                """
            ))

    def test_saxpy_anti_dependence(self):
        deps = memory_dependences(one_kernel(
            """
            def saxpy(a, x, y, n):
                for i in range(n):
                    y[i] = a * x[i] + y[i]
            """
        ))
        assert [(d.kind, d.distance) for d in deps] == [("anti", 0)]
        assert deps[0].describe() == "anti y[1i+0] -> y[1i+0] distance=0"

    def test_prefix_flow_distance_one(self):
        deps = memory_dependences(one_kernel(
            """
            def prefix(a, n):
                for i in range(1, n):
                    a[i] = a[i] + a[i - 1]
            """
        ))
        kinds = {(d.kind, d.distance) for d in deps}
        assert ("flow", 1) in kinds  # write a[i] -> read a[i-1] next iter
        assert ("anti", 0) in kinds  # read a[i] before write a[i]

    def test_disjoint_streams_have_no_dependence(self):
        deps = memory_dependences(one_kernel(
            """
            def k(a, n):
                for i in range(n):
                    a[2 * i] = a[2 * i + 1]
            """
        ))
        assert deps == []  # odd/even words never collide

    def test_read_read_pairs_skipped(self):
        deps = memory_dependences(one_kernel(
            """
            def k(a, b, n):
                for i in range(n):
                    b[i] = a[i] + a[i + 1]
            """
        ))
        assert [d for d in deps if d.src.array == "a"] == []

    def test_mixed_strides_rejected(self):
        with pytest.raises(FrontendError, match="uniform stride"):
            memory_dependences(one_kernel(
                """
                def k(a, n):
                    for i in range(n):
                        a[i] = a[2 * i]
                """
            ))


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------


class TestLowering:
    def test_saxpy_structure(self):
        lowered = load_kernel("saxpy")
        graph = lowered.graph
        kinds = sorted(n.kind.name for n in graph.nodes())
        assert kinds == ["ADD", "LOAD", "LOAD", "MUL", "STORE"]
        assert list(lowered.arrays) == ["x", "y"]
        assert list(lowered.invariants) == ["a"]
        # The analyzed anti-dependence rides into the graph as a MEM arc.
        mem = [e for e in graph.edges() if e.kind is DepKind.MEM]
        assert [e.distance for e in mem] == [0]

    def test_mem_refs_rebased_to_the_loop_start(self):
        [lowered] = lower_source(corpus_path("stencil5"))
        # stencil5 counts range(1, n): lowering folds the start into the
        # stream offset (offset = coeff*start + offset).
        mid_refs = sorted(
            (n.mem_ref.offset, n.mem_ref.stride)
            for n in lowered.graph.nodes()
            if n.kind is OpKind.LOAD and n.name.startswith("ld_mid")
        )
        assert mid_refs == [(0, 1), (2, 1)]  # mid[i-1], mid[i+1] at i=1+j

    def test_cse_merges_repeated_loads(self):
        lowered = load_kernel("softclip")
        loads = [n for n in lowered.graph.nodes() if n.kind is OpKind.LOAD]
        assert len(loads) == 1  # x[i] read twice, loaded once

    def test_store_invalidates_load_cache(self):
        lowered = lower_kernel(one_kernel(
            """
            def k(a, b, n):
                for i in range(n):
                    a[i] = b[i]
                    b[i] = a[i] + 1.0
            """
        ))
        a_loads = [
            n
            for n in lowered.graph.nodes()
            if n.kind is OpKind.LOAD
            and n.mem_ref.array == lowered.arrays["a"]
        ]
        assert len(a_loads) == 1  # the re-read after the store is real

    def test_copy_chain_binding_distances(self):
        lowered = load_kernel("ewma2")
        bindings = {
            name: (binding.node_id, binding.shift)
            for name, binding in lowered.scalars.items()
        }
        node = bindings["t"][0]
        assert bindings["s1"] == (node, 0)  # s1 = t this iteration
        assert bindings["s2"] == (node, 1)  # s2 = old s1 = t one iter ago

    def test_invariant_scalar_binding(self):
        # A scalar only copied from an invariant stays an invariant.
        lowered = lower_kernel(one_kernel(
            """
            def k(x, y, c, n):
                for i in range(n):
                    d = c
                    y[i] = x[i] * d
            """
        ))
        assert lowered.scalars["d"].invariant_id is not None
        assert lowered.scalars["d"].node_id is None

    def test_copy_cycle_rejected(self):
        with pytest.raises(FrontendError, match="copy cycle"):
            lower_kernel(one_kernel(
                """
                def k(x, n):
                    for i in range(n):
                        a = b
                        b = a
                        x[i] = a
                """
            ))

    def test_corpus_lowers_and_validates(self):
        corpus = load_corpus()
        assert len(corpus) == len(CORPUS_KERNELS) >= 10
        for lowered in corpus:
            lowered.graph.validate()
            assert lowered.graph.trip_count >= 1
            assert len(lowered.graph) >= 2


# ----------------------------------------------------------------------
# The RecMII acceptance criterion
# ----------------------------------------------------------------------


class TestRecurrenceDistances:
    def test_ewma2_carries_a_distance_two_arc(self):
        graph = load_kernel("ewma2").graph
        carried = [
            e
            for e in graph.edges()
            if e.kind is DepKind.REG and e.distance > 0
        ]
        assert [e.distance for e in carried] == [2]

    def test_analyzed_distance_halves_recmii(self):
        """The frontend-derived distance-2 arc changes RecMII: the
        analyzed corpus kernel reads 4 where the same circuit with the
        distance defaulted to 1 reads 8."""
        assert recurrence_mii(load_kernel("ewma2").graph, UNIFIED) == 4

        def twin(distance):
            b = LoopBuilder("ewma2_twin", trip_count=120)
            x = b.load(array=0)
            prod = b.mul(b.invariant("b"))  # s2 * b
            t = b.add(prod, x)
            b.loop_carried(t, prod, distance=distance)
            b.store(t, array=1)
            return b.build()

        assert recurrence_mii(twin(2), UNIFIED) == 4
        assert recurrence_mii(twin(1), UNIFIED) == 8

    def test_prefix_memory_recurrence_is_real(self):
        # load + add + store around the analyzed distance-1 MEM arc.
        assert recurrence_mii(load_kernel("prefix").graph, UNIFIED) == 7


# ----------------------------------------------------------------------
# Source interpretation and the three-link differential
# ----------------------------------------------------------------------


class TestSourceSemantics:
    @pytest.mark.parametrize("name", ("saxpy", "iir2", "prefix", "ewma2"))
    def test_source_matches_lowered_graph(self, name):
        lowered = load_kernel(name)
        source = run_source(lowered, 12)
        reference = ReferenceInterpreter(lowered.graph).run(12)
        assert source.values == reference.values
        assert source.memory == reference.memory

    def test_differential_detects_a_wrong_distance(self):
        # Sabotage the lowered graph: clamp ewma2's carried arc to
        # distance 1.  Source semantics and graph semantics must split.
        lowered = load_kernel("ewma2")
        graph = lowered.graph
        edge = next(
            e
            for e in graph.edges()
            if e.kind is DepKind.REG and e.distance == 2
        )
        graph.remove_edge(edge)
        graph.add_edge(
            edge.src,
            edge.dst,
            kind=DepKind.REG,
            distance=1,
            latency=edge.latency,
        )
        source = run_source(lowered, 8)
        reference = ReferenceInterpreter(graph).run(8)
        assert source.values != reference.values


class TestEndToEnd:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_corpus_schedules_certifies_and_matches(self, machine):
        """The headline acceptance criterion, per reference machine:
        every corpus kernel schedules, its emitted pipeline passes the
        static certifier with zero violations, and all three
        differential links agree bit for bit (no skipped link)."""
        request = ScheduleRequest()
        for lowered in load_corpus():
            result = request.make_scheduler(machine).schedule(
                lowered.graph.clone()
            )
            assert result.converged, lowered.name
            assert result.ii >= result.mii
            report = certify_code(generate_code(result), result)
            assert report.ok, f"{lowered.name}: {report.summary()}"
            diff = run_source_differential(lowered, result, 24, cache=False)
            assert diff.hazards == (), f"{lowered.name}: {diff.hazards}"
            assert diff.analysis_match, f"{lowered.name}: {diff.summary()}"
            assert diff.emitted_match, f"{lowered.name}: {diff.summary()}"
            assert diff.source_match is True, (
                f"{lowered.name}: {diff.summary()}"
            )

    def test_frontend_rows_driver(self):
        from repro.eval.experiments import frontend_rows

        headers, rows, note = frontend_rows(
            session=SessionConfig(cache=False),
            kernels=("saxpy", "ewma2"),
            configs=("1-(GP8M4-REG64)",),
            iterations=12,
        )
        assert headers[-1] == "differential"
        assert [row[-1] for row in rows] == ["match", "match"]
        assert [row[-2] for row in rows] == ["ok", "ok"]
        assert "2/2" in note
        # The RecMII column is the analyzed one: ewma2 reads 4.
        ewma_row = next(row for row in rows if row[1] == "ewma2")
        assert ewma_row[headers.index("RecMII")] == 4


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestFrontendCli:
    def test_schedule_source(self, capsys):
        from repro.cli import main

        assert main(
            ["schedule", "--source", "saxpy",
             "--config", "1-(GP8M4-REG64)", "--code"]
        ) == 0
        out = capsys.readouterr().out
        assert "saxpy" in out
        assert "II=1" in out

    def test_schedule_source_and_loop_conflict(self, capsys):
        from repro.cli import main

        assert main(["schedule", "--source", "saxpy", "--loop", "3"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_frontend_show_corpus_table(self, capsys):
        from repro.cli import main

        assert main(["frontend", "show"]) == 0
        out = capsys.readouterr().out
        for name in CORPUS_KERNELS:
            assert name in out
        assert "RecMII" in out
        assert "python (available)" in out

    def test_frontend_show_kernel(self, capsys):
        from repro.cli import main

        assert main(["frontend", "show", "ewma2"]) == 0
        out = capsys.readouterr().out
        assert "induction 'i'" in out
        assert "1 iteration(s) back" in out
        assert "RecMII 4" in out

    def test_frontend_show_unknown_source(self, capsys):
        from repro.cli import main

        assert main(["frontend", "show", "no_such_kernel.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_frontend_run_two_kernels(self, capsys):
        from repro.cli import main

        assert main(
            ["frontend", "run", "--config", "1-(GP8M4-REG64)",
             "--iterations", "12", "--no-cache", "saxpy", "ewma2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2/2 kernels validated" in out
        assert "match" in out
