"""Tests for the static code certifier (repro.analysis).

Two acceptance criteria anchor this file:

* **Soundness on legal code** — every pipeline the scheduler emits for
  the 16-loop workbench, on both reference machines, must certify with
  zero violations;
* **Completeness on seeded bugs** — re-introducing each historical
  emitter bug (the MVE copy-label shift, a register-renaming collision,
  a cross-cluster move collapse) and classic bundle-level illegalities
  (resource overfill, write-write collision, replication breakage) must
  be *rejected statically*, each with the expected violation kind,
  without ever running the simulator.
"""

import dataclasses
import re

import pytest

from repro import MirsC, certify_code, certify_schedule
from repro.analysis import BundleCFG, CertifierReport, ViolationKind
from repro.analysis.cfg import register_cluster, split_sources
from repro.codegen import generate_code
from repro.codegen.emitter import CERTIFY_ENV, GeneratedCode
from repro.errors import CertificationError, CodegenError
from repro.obs import RecordingTracer
from repro.workloads.perfect import cached_suite

from tests.helpers import FOUR_CLUSTER_TIGHT, UNIFIED, daxpy, reduction


# ----------------------------------------------------------------------
# Sabotage helpers: each returns a mutated *copy* of the emitted code,
# reproducing one historical (or representative) emitter bug.
# ----------------------------------------------------------------------


def _map_names(code: GeneratedCode, rename, sections=("prologue", "kernel",
                                                      "epilogue")):
    """Rebuild ``code`` with every register name passed through ``rename``."""

    def patch(bundles):
        return [
            [
                dataclasses.replace(
                    inst,
                    dest=rename(inst.dest) if inst.dest else None,
                    sources=tuple(sorted(rename(s) for s in inst.sources)),
                )
                for inst in bundle
            ]
            for bundle in bundles
        ]

    fields = {
        section: patch(getattr(code, section))
        if section in sections
        else [list(b) for b in getattr(code, section)]
        for section in ("prologue", "kernel", "epilogue")
    }
    return dataclasses.replace(code, **fields)


def drop_copy_label_shift(code: GeneratedCode) -> GeneratedCode:
    """PR-2 bug #1: kernel copy labels without the SC-1 shift.

    Relabeling copy ``k`` to ``(k - (SC-1)) % MVE`` in the kernel and
    epilogue is exactly what emitting ``(copy - stage) % mve`` instead
    of ``(copy - stage + SC-1) % mve`` produces: the kernel reads
    renamed registers the prologue never wrote.
    """
    sc, mve = code.stage_count, code.mve_factor

    def rename(name: str) -> str:
        return re.sub(
            r"\.k(\d+)",
            lambda m: f".k{(int(m.group(1)) - (sc - 1)) % mve}",
            name,
        )

    return _map_names(code, rename, sections=("kernel", "epilogue"))


def collide_renamed_registers(code: GeneratedCode) -> GeneratedCode:
    """PR-2 bug #2: two expanded values based on one architectural name.

    Every ``.k`` copy of the second expanded value is rebased onto the
    first expanded value's base register, so their renamed copies
    collide name-for-name.
    """
    expanded = [
        value
        for value, names in sorted(code.registers.items())
        if len(set(names)) > 1
    ]
    assert len(expanded) >= 2, "fixture needs two modulo-expanded values"
    base_keep = code.registers[expanded[0]][0].partition(".")[0]
    base_lose = code.registers[expanded[1]][0].partition(".")[0]

    def rename(name: str) -> str:
        head, dot, tail = name.partition(".")
        if head == base_lose and dot:
            return base_keep + dot + tail
        return name

    mutated = _map_names(code, rename)
    mutated.registers = {
        value: [rename(name) for name in names]
        for value, names in code.registers.items()
    }
    return mutated


def collapse_move_source(code: GeneratedCode) -> GeneratedCode:
    """PR-5 bug shape: a move consumer bypasses the emitted move.

    The first instruction reading a move's destination is rewired to
    read the move's *source* register instead - a cross-cluster read
    without interconnect.
    """
    moves = {
        inst.dest: inst
        for bundle in code.kernel
        for inst in bundle
        if inst.mnemonic == "move" and inst.dest is not None
    }
    assert moves, "fixture needs an inter-cluster move in the kernel"

    def patch(bundles):
        done = False
        out = []
        for bundle in bundles:
            patched = []
            for inst in bundle:
                if not done and inst.mnemonic != "move":
                    registers, _ = split_sources(inst.sources)
                    hit = next((r for r in registers if r in moves), None)
                    if hit is not None:
                        move = moves[hit]
                        move_src = split_sources(move.sources)[0][0]
                        sources = tuple(
                            sorted(
                                move_src if s == hit else s
                                for s in inst.sources
                            )
                        )
                        inst = dataclasses.replace(inst, sources=sources)
                        done = True
                patched.append(inst)
            out.append(patched)
        assert done, "fixture needs a same-kernel move consumer"
        return out

    return dataclasses.replace(code, kernel=patch(code.kernel))


def overfill_bundle(code: GeneratedCode) -> GeneratedCode:
    """Pile every kernel compute instruction into one bundle.

    The relocated instructions keep their register names, so dataflow
    still resolves; only the per-cycle resource usage becomes illegal.
    """
    kernel = [list(b) for b in code.kernel]
    computes = [
        (index, inst)
        for index, bundle in enumerate(kernel)
        for inst in bundle
        if inst.mnemonic in ("add", "mul", "div", "sqrt")
    ]
    assert len(computes) >= 2, "fixture needs compute operations"
    target = computes[0][0]
    for index, inst in computes[1:]:
        kernel[index] = [i for i in kernel[index] if i is not inst]
        kernel[target] = kernel[target] + [inst]
    return dataclasses.replace(code, kernel=kernel)


SABOTAGES = [
    pytest.param(
        drop_copy_label_shift, ViolationKind.STALE_LIVE_IN,
        id="drop-copy-label-shift",
    ),
    pytest.param(
        collide_renamed_registers, ViolationKind.WRONG_PRODUCER,
        id="collide-renamed-register",
    ),
    pytest.param(
        collapse_move_source, ViolationKind.CROSS_CLUSTER,
        id="collapse-move-source",
    ),
    pytest.param(
        overfill_bundle, ViolationKind.RESOURCE,
        id="overfill-bundle-resources",
    ),
]


# ----------------------------------------------------------------------
# Clean code certifies
# ----------------------------------------------------------------------


@pytest.fixture(scope="module", params=[UNIFIED, FOUR_CLUSTER_TIGHT],
                ids=lambda m: m.name)
def workbench_reports(request):
    machine = request.param
    loops = cached_suite(16)
    scheduler = MirsC(machine)
    reports = []
    for loop in loops:
        result = scheduler.schedule(loop.graph.clone())
        reports.append(certify_code(generate_code(result), result))
    return reports


class TestCleanWorkbench:
    def test_zero_violations_on_both_machines(self, workbench_reports):
        for report in workbench_reports:
            assert report.ok, report.summary()

    def test_reports_carry_work_evidence(self, workbench_reports):
        for report in workbench_reports:
            assert report.reads_checked > 0
            assert report.bundles_checked > 0
            assert report.passes_checked >= 1
            assert report.mve_factor >= 1

    def test_fixpoint_converges_fast(self, workbench_reports):
        """Legal pipelines stabilize within a couple of kernel passes -
        the cost model the <5%-of-differential gate relies on."""
        for report in workbench_reports:
            assert report.passes_checked <= 3, report.summary()


class TestConvenienceApi:
    def test_certify_schedule_emits_and_certifies(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        report = certify_schedule(result)
        assert report.ok
        assert report.loop == result.loop

    def test_report_round_trips_to_dict(self):
        result = MirsC(UNIFIED).schedule(reduction())
        report = certify_schedule(result)
        payload = report.as_dict()
        assert payload["violations"] == []
        assert payload["loop"] == report.loop
        assert payload["reads_checked"] == report.reads_checked

    def test_trace_records_certify_span(self):
        tracer = RecordingTracer()
        result = MirsC(UNIFIED).schedule(reduction())
        certify_schedule(result, trace=tracer)
        spans = [e for e in tracer.events if e.name == "certify"]
        assert len(spans) == 1
        assert spans[0].args["ok"] is True


# ----------------------------------------------------------------------
# Sabotaged code is rejected with the right kind
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def deep_schedule():
    """DAXPY on the unified machine: deep MVE with (SC-1) % MVE != 0,
    so every copy-label convention actually matters."""
    result = MirsC(UNIFIED).schedule(daxpy())
    code = generate_code(result)
    assert code.mve_factor >= 3
    assert (code.stage_count - 1) % code.mve_factor != 0
    return result, code


@pytest.fixture(scope="module")
def clustered_schedule():
    """A clustered schedule with at least one inter-cluster move."""
    loops = cached_suite(16)
    scheduler = MirsC(FOUR_CLUSTER_TIGHT)
    for loop in loops:
        result = scheduler.schedule(loop.graph.clone())
        if not result.converged:
            continue
        code = generate_code(result)
        if any(
            inst.mnemonic == "move"
            for bundle in code.kernel
            for inst in bundle
        ):
            return result, code
    pytest.skip("no workbench loop produced an inter-cluster move")


class TestSabotage:
    @pytest.mark.parametrize("mutate,expected_kind", SABOTAGES)
    def test_mutation_is_rejected_with_kind(
        self, mutate, expected_kind, deep_schedule, clustered_schedule
    ):
        # Cross-cluster sabotage needs a clustered machine; the others
        # exercise the deep-MVE unified pipeline.
        result, code = (
            clustered_schedule
            if mutate is collapse_move_source
            else deep_schedule
        )
        clean = certify_code(code, result)
        assert clean.ok, clean.summary()
        mutated = mutate(code)
        report = certify_code(mutated, result)
        assert not report.ok
        assert expected_kind in report.kinds(), report.summary()

    def test_write_write_collision_is_detected(self, deep_schedule):
        result, code = deep_schedule
        kernel = [list(b) for b in code.kernel]
        victim = next(
            (index, inst)
            for index, bundle in enumerate(kernel)
            for inst in bundle
            if inst.dest is not None
        )
        index, inst = victim
        kernel[index] = kernel[index] + [inst]
        bad = dataclasses.replace(code, kernel=kernel)
        report = certify_code(bad, result)
        assert ViolationKind.WRITE_WRITE in report.kinds(), report.summary()

    def test_dropped_instruction_breaks_replication(self, deep_schedule):
        result, code = deep_schedule
        kernel = [list(b) for b in code.kernel]
        removed = None
        for index, bundle in enumerate(kernel):
            if bundle:
                removed = bundle[0]
                kernel[index] = bundle[1:]
                break
        assert removed is not None
        bad = dataclasses.replace(code, kernel=kernel)
        report = certify_code(bad, result)
        assert ViolationKind.REPLICATION in report.kinds(), report.summary()
        assert any(
            v.operation == removed.node
            for v in report.violations
            if v.kind is ViolationKind.REPLICATION
        )

    def test_undefined_register_read(self, deep_schedule):
        result, code = deep_schedule

        def rename(name: str) -> str:
            return name.replace("r0.", "r999.")

        bad = _map_names(code, rename, sections=("kernel",))
        report = certify_code(bad, result)
        assert not report.ok
        assert report.kinds() & {
            ViolationKind.UNDEFINED_READ,
            ViolationKind.STALE_LIVE_IN,
            ViolationKind.WRONG_PRODUCER,
        }

    def test_truncated_epilogue_is_structural(self, deep_schedule):
        result, code = deep_schedule
        bad = dataclasses.replace(code, epilogue=code.epilogue[:-1])
        report = certify_code(bad, result)
        assert report.kinds() == {ViolationKind.STRUCTURE}

    def test_violations_are_deduplicated_across_passes(self, deep_schedule):
        """A single static defect must not be re-reported once per
        explored kernel pass / epilogue replay."""
        result, code = deep_schedule
        bad = drop_copy_label_shift(code)
        report = certify_code(bad, result)
        keys = [
            (v.kind, v.section, v.bundle, v.register, v.operation)
            for v in report.violations
        ]
        assert len(keys) == len(set(keys))


# ----------------------------------------------------------------------
# The REPRO_STATIC_CERTIFY sanitizer hook
# ----------------------------------------------------------------------


class TestSanitizerHook:
    def test_clean_code_passes_under_hook(self, monkeypatch):
        monkeypatch.setenv(CERTIFY_ENV, "1")
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        assert code.kernel  # emitted and certified without raising

    def test_violations_raise_certification_error(self, monkeypatch):
        result = MirsC(UNIFIED).schedule(daxpy())
        # Force the certifier to reject whatever generate_code emits.
        from repro.analysis import CertifierViolation

        def reject(code, schedule, **kwargs):
            real = certify_code(code, schedule)
            return dataclasses.replace(
                real,
                violations=(
                    CertifierViolation(
                        kind=ViolationKind.STRUCTURE,
                        section="code",
                        bundle=-1,
                        detail="injected by test",
                    ),
                ),
            )

        monkeypatch.setenv(CERTIFY_ENV, "1")
        monkeypatch.setattr("repro.analysis.certify_code", reject)
        with pytest.raises(CertificationError) as excinfo:
            generate_code(result)
        assert excinfo.value.loop == result.loop
        assert isinstance(excinfo.value.report, CertifierReport)
        assert "injected by test" in str(excinfo.value)

    def test_hook_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CERTIFY_ENV, raising=False)
        calls = []
        monkeypatch.setattr(
            "repro.analysis.certify_code",
            lambda *a, **k: calls.append(a),
        )
        result = MirsC(UNIFIED).schedule(reduction())
        generate_code(result)
        assert calls == []


# ----------------------------------------------------------------------
# Typed codegen errors
# ----------------------------------------------------------------------


class TestCodegenErrors:
    def test_not_converged_carries_loop_and_kind(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        broken = dataclasses.replace(result, converged=False)
        with pytest.raises(CodegenError) as excinfo:
            generate_code(broken)
        assert excinfo.value.kind == "not-converged"
        assert excinfo.value.loop == result.loop

    def test_codegen_error_is_a_value_error(self):
        assert issubclass(CodegenError, ValueError)

    def test_certify_schedule_propagates_codegen_error(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        broken = dataclasses.replace(result, converged=False)
        with pytest.raises(CodegenError):
            certify_schedule(broken)


# ----------------------------------------------------------------------
# CFG plumbing
# ----------------------------------------------------------------------


class TestBundleCfg:
    def test_cycle_and_block_accounting(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        code = generate_code(result)
        cfg = BundleCFG(code)
        sites = list(cfg.linearized(passes=2))
        cycles = [site.cycle for site in sites]
        assert cycles == list(range(len(sites)))  # gap-free linearization
        assert all(site.block == site.cycle // code.ii for site in sites)
        kernel_sites = [s for s in sites if s.section == "kernel"]
        assert len(kernel_sites) == 2 * code.ii * code.mve_factor

    def test_register_cluster_parsing(self):
        assert register_cluster("c0:r7") == 0
        assert register_cluster("c3:r12.k2") == 3
        assert register_cluster("inv:a") is None
        assert register_cluster("r7") is None

    def test_split_sources(self):
        registers, invariants = split_sources(("c0:r1", "inv:a", "c1:r2.k0"))
        assert registers == ["c0:r1", "c1:r2.k0"]
        assert invariants == ["a"]
