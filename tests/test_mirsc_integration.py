"""Integration tests: MIRS-C across the paper's configuration matrix."""

import pytest

from repro import (
    MirsC,
    MirsParams,
    Mirs,
    SchedulingError,
    verify_schedule,
)
from repro.machine.config import paper_configuration, scalability_configuration
from repro.workloads.perfect import cached_suite

LOOPS = cached_suite(6)


@pytest.mark.parametrize("clusters", [1, 2, 4])
@pytest.mark.parametrize("registers", [32, None])
def test_matrix_converges_and_verifies(clusters, registers):
    machine = paper_configuration(clusters, registers)
    for loop in LOOPS:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged
        violations = verify_schedule(
            result.graph,
            machine,
            result.ii,
            result.times,
            result.clusters,
            result.register_usage,
        )
        assert violations == [], f"{loop.graph.name}: {violations[:3]}"


@pytest.mark.parametrize("move_latency", [1, 3])
def test_move_latency_variants(move_latency):
    machine = paper_configuration(4, 32, move_latency=move_latency)
    for loop in LOOPS[:3]:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged


def test_bus_starved_machine_still_converges():
    machine = scalability_configuration(8, buses=1)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    assert result.converged


def test_unbounded_buses():
    machine = scalability_configuration(8, buses=None)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    assert result.converged


def test_register_constraint_is_hard():
    machine = paper_configuration(4, 16)
    for loop in LOOPS:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged
        assert all(used <= 16 for used in result.register_usage.values())


def test_spills_only_when_constrained():
    roomy = paper_configuration(1, 128)
    for loop in LOOPS[:3]:
        result = MirsC(roomy).schedule(loop.graph)
        assert result.spill_operations == 0 or result.max_live[0] > 64


def test_execution_cycles_account_for_pipeline_fill():
    machine = paper_configuration(1, 64)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    expected = result.ii * (result.trip_count + result.stage_count - 1)
    assert result.execution_cycles == expected


def test_mirs_alias_requires_single_cluster():
    with pytest.raises(SchedulingError):
        Mirs(paper_configuration(2, 64))
    result = Mirs(paper_configuration(1, 64)).schedule(LOOPS[0].graph)
    assert result.converged


def test_moves_appear_only_on_clustered_machines():
    unified = paper_configuration(1, 64)
    clustered = paper_configuration(4, 64)
    for loop in LOOPS[:3]:
        assert MirsC(unified).schedule(loop.graph).move_operations == 0
    assert any(
        MirsC(clustered).schedule(loop.graph).move_operations > 0
        for loop in LOOPS
    )


def test_summary_is_printable():
    result = MirsC(paper_configuration(2, 64)).schedule(LOOPS[0].graph)
    summary = result.summary()
    assert "II=" in summary and "ok" in summary


def test_custom_params_accepted():
    params = MirsParams(
        budget_ratio=2, spill_gauge=1.5, min_span_gauge=2, distance_gauge=8
    )
    machine = paper_configuration(2, 32)
    result = MirsC(machine, params=params).schedule(LOOPS[0].graph)
    assert result.converged


def test_mirs_forwards_strict():
    """Regression: ``Mirs(machine, strict=False)`` used to be a
    ``TypeError`` (the kwarg was silently dropped from the signature),
    so single-cluster ablation runs could not opt out of
    ``ConvergenceError``."""
    from repro import ConvergenceError
    from tests.helpers import wide

    machine = paper_configuration(1, 64)
    starved = MirsParams(max_ii=1)  # wide(8) needs II >= 4: cannot converge
    graph = wide(8)

    result = Mirs(machine, params=starved, strict=False).schedule(graph)
    assert not result.converged
    assert result.ii == 1  # the cap it gave up at

    with pytest.raises(ConvergenceError):
        Mirs(machine, params=starved).schedule(graph)  # strict by default
