"""Integration tests: MIRS-C across the paper's configuration matrix."""

import pytest

from repro import (
    MirsC,
    MirsParams,
    Mirs,
    SchedulingError,
    verify_schedule,
)
from repro.machine.config import paper_configuration, scalability_configuration
from repro.workloads.perfect import cached_suite

LOOPS = cached_suite(6)


@pytest.mark.parametrize("clusters", [1, 2, 4])
@pytest.mark.parametrize("registers", [32, None])
def test_matrix_converges_and_verifies(clusters, registers):
    machine = paper_configuration(clusters, registers)
    for loop in LOOPS:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged
        violations = verify_schedule(
            result.graph,
            machine,
            result.ii,
            result.times,
            result.clusters,
            result.register_usage,
        )
        assert violations == [], f"{loop.graph.name}: {violations[:3]}"


@pytest.mark.parametrize("move_latency", [1, 3])
def test_move_latency_variants(move_latency):
    machine = paper_configuration(4, 32, move_latency=move_latency)
    for loop in LOOPS[:3]:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged


def test_bus_starved_machine_still_converges():
    machine = scalability_configuration(8, buses=1)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    assert result.converged


def test_unbounded_buses():
    machine = scalability_configuration(8, buses=None)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    assert result.converged


def test_register_constraint_is_hard():
    machine = paper_configuration(4, 16)
    for loop in LOOPS:
        result = MirsC(machine).schedule(loop.graph)
        assert result.converged
        assert all(used <= 16 for used in result.register_usage.values())


def test_spills_only_when_constrained():
    roomy = paper_configuration(1, 128)
    for loop in LOOPS[:3]:
        result = MirsC(roomy).schedule(loop.graph)
        assert result.spill_operations == 0 or result.max_live[0] > 64


def test_execution_cycles_account_for_pipeline_fill():
    machine = paper_configuration(1, 64)
    result = MirsC(machine).schedule(LOOPS[0].graph)
    expected = result.ii * (result.trip_count + result.stage_count - 1)
    assert result.execution_cycles == expected


def test_mirs_alias_requires_single_cluster():
    with pytest.raises(SchedulingError):
        Mirs(paper_configuration(2, 64))
    result = Mirs(paper_configuration(1, 64)).schedule(LOOPS[0].graph)
    assert result.converged


def test_moves_appear_only_on_clustered_machines():
    unified = paper_configuration(1, 64)
    clustered = paper_configuration(4, 64)
    for loop in LOOPS[:3]:
        assert MirsC(unified).schedule(loop.graph).move_operations == 0
    assert any(
        MirsC(clustered).schedule(loop.graph).move_operations > 0
        for loop in LOOPS
    )


def test_summary_is_printable():
    result = MirsC(paper_configuration(2, 64)).schedule(LOOPS[0].graph)
    summary = result.summary()
    assert "II=" in summary and "ok" in summary


def test_custom_params_accepted():
    params = MirsParams(
        budget_ratio=2, spill_gauge=1.5, min_span_gauge=2, distance_gauge=8
    )
    machine = paper_configuration(2, 32)
    result = MirsC(machine, params=params).schedule(LOOPS[0].graph)
    assert result.converged


class TestIncrementalAllocatorEquivalence:
    """Differential coverage of the incremental arc-colouring engine:
    whole-run schedules must be bit-identical with the engine on and
    off, pinned to the committed pre-engine fingerprint capture."""

    FINGERPRINTS = None

    @classmethod
    def _fingerprints(cls):
        if cls.FINGERPRINTS is None:
            import json
            import pathlib

            cls.FINGERPRINTS = json.loads(
                (
                    pathlib.Path(__file__).parent
                    / "data"
                    / "workbench_fingerprints.json"
                ).read_text()
            )
        return cls.FINGERPRINTS

    @pytest.mark.parametrize(
        "config", ["1-(GP8M4-REG64)", "4-(GP2M1-REG32)"]
    )
    @pytest.mark.parametrize("incremental", [True, False])
    def test_workbench_fingerprints_with_allocator_on_and_off(
        self, config, incremental
    ):
        from repro.exec import result_fingerprint
        from repro.machine.config import parse_config
        from repro.workloads.perfect import cached_suite

        expected = self._fingerprints()[config]
        machine = parse_config(config)
        params = MirsParams(incremental_colouring=incremental)
        mismatched = [
            loop.graph.name
            for loop in cached_suite(16)
            if result_fingerprint(
                MirsC(machine, params=params, strict=False).schedule(
                    loop.graph
                )
            )
            != expected[loop.graph.name]
        ]
        assert mismatched == []

    def test_differential_validation_on_incremental_path(self):
        """repro.sim end-to-end: code generated from schedules produced
        with the incremental allocator executes bit-identically to the
        scalar reference interpreter (and matches the engine-off run)."""
        from repro.exec import result_fingerprint
        from repro.sim import run_differential
        from repro.workloads.perfect import cached_suite

        machine = paper_configuration(4, 32)
        for loop in cached_suite(3):
            on = MirsC(machine).schedule(loop.graph)
            report = run_differential(on, 17)
            assert report.match, report.summary()
            off = MirsC(
                machine, params=MirsParams(incremental_colouring=False)
            ).schedule(loop.graph)
            assert result_fingerprint(on) == result_fingerprint(off)


class TestPaperScaleRegressions:
    """Latent bugs surfaced by the first full 1258-loop nightly sweep
    (the 16-loop subset never hits them).  Built-in verification is on,
    so a regression raises ``SchedulingError`` rather than asserting."""

    @staticmethod
    def _paper_loop(name):
        from repro.workloads.perfect import cached_suite

        return next(
            loop.graph
            for loop in cached_suite(1258)
            if loop.graph.name == name
        )

    def test_unpipelined_div_packing_verifies(self):
        """divheavy1070@x2: a *valid* packing of 17-cycle unpipelined
        divides used to be rejected by the verifier's order-dependent
        first-fit replay (the exact instance-assignment check accepts
        it; see also tests/test_verify.py)."""
        graph = self._paper_loop("divheavy1070@x2")
        for clusters, registers in ((1, 64), (4, 32)):
            machine = paper_configuration(clusters, registers)
            result = MirsC(machine).schedule(graph.clone())
            assert result.converged

    def test_move_with_consumers_replaced_across_clusters(self):
        """reduction512@x2 on the clustered machine: consumers of an
        off-schedule move re-placed into different clusters used to be
        collapsed onto one destination - removal then reconnected a
        foreign-cluster consumer straight to the producer (cross-cluster
        read) with a violated merged edge."""
        graph = self._paper_loop("reduction512@x2")
        result = MirsC(paper_configuration(4, 32)).schedule(graph.clone())
        assert result.converged


def test_mirs_forwards_strict():
    """Regression: ``Mirs(machine, strict=False)`` used to be a
    ``TypeError`` (the kwarg was silently dropped from the signature),
    so single-cluster ablation runs could not opt out of
    ``ConvergenceError``."""
    from repro import ConvergenceError
    from tests.helpers import wide

    machine = paper_configuration(1, 64)
    starved = MirsParams(max_ii=1)  # wide(8) needs II >= 4: cannot converge
    graph = wide(8)

    result = Mirs(machine, params=starved, strict=False).schedule(graph)
    assert not result.converged
    assert result.ii == 1  # the cap it gave up at

    with pytest.raises(ConvergenceError):
        Mirs(machine, params=starved).schedule(graph)  # strict by default
