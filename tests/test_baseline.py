"""Unit tests for the non-iterative baseline scheduler [31]."""

import pytest

from repro import LoopBuilder, MirsC, NonIterativeScheduler, parse_config, verify_schedule

from tests.helpers import FOUR_CLUSTER, UNIFIED, daxpy, reduction, wide


class TestBaselineBehaviour:
    def test_schedules_simple_loops(self):
        result = NonIterativeScheduler(UNIFIED).schedule(daxpy())
        assert result.converged
        assert result.ii >= result.mii

    def test_never_ejects(self):
        result = NonIterativeScheduler(FOUR_CLUSTER).schedule(wide(8))
        assert result.converged
        assert result.stats.ejections == 0

    def test_never_spills(self):
        machine = parse_config("1-(GP8M4-REG12)")
        b = LoopBuilder("pressure", trip_count=10)
        loads = [b.load(array=i) for i in range(6)]
        acc = loads[0]
        for load in loads[1:]:
            acc = b.add(acc, load)
        b.store(acc, array=99)
        graph = b.build()
        result = NonIterativeScheduler(machine).schedule(graph)
        assert result.spill_operations == 0
        if result.converged:
            # Register shortage was resolved purely by raising the II.
            assert result.ii >= result.mii

    def test_verifier_accepts_results(self):
        graph = daxpy()
        result = NonIterativeScheduler(FOUR_CLUSTER).schedule(graph)
        assert result.converged
        violations = verify_schedule(
            result.graph,
            FOUR_CLUSTER,
            result.ii,
            result.times,
            result.clusters,
            result.register_usage,
        )
        assert violations == []

    @staticmethod
    def _invariant_heavy():
        """Six invariants, each feeding its own link of a chain.

        Invariants pin one register each for the baseline at *any* II
        (6 > 4 registers: structurally non-convergent), but MIRS-C can
        re-materialize each one next to its consumer and fit in 4.
        """
        b = LoopBuilder("invheavy", trip_count=10)
        node = b.add()
        inv = b.invariant("c0")
        inv.consumers.add(node.id)
        for i in range(1, 6):
            node = b.add(node)
            inv = b.invariant(f"c{i}")
            inv.consumers.add(node.id)
        b.store(node, array=0)
        return b.build()

    def test_non_convergence_on_impossible_pressure(self):
        machine = parse_config("1-(GP8M4-REG4)")
        result = NonIterativeScheduler(machine).schedule(
            self._invariant_heavy()
        )
        assert not result.converged
        with pytest.raises(ValueError):
            _ = result.execution_cycles

    def test_mirsc_converges_where_baseline_cannot(self):
        machine = parse_config("1-(GP8M4-REG4)")
        graph = self._invariant_heavy()
        assert not NonIterativeScheduler(machine).schedule(graph).converged
        ours = MirsC(machine).schedule(graph)
        assert ours.converged
        assert all(r <= 4 for r in ours.register_usage.values())


class TestHeadToHead:
    @pytest.mark.parametrize("machine_name", [
        "1-(GP8M4-REGinf)", "2-(GP4M2-REGinf)", "4-(GP2M1-REGinf)",
    ])
    def test_mirsc_never_worse_on_ii_unbounded(self, machine_name):
        machine = parse_config(machine_name)
        for graph in (daxpy(), reduction(), wide(4)):
            ours = MirsC(machine).schedule(graph)
            base = NonIterativeScheduler(machine).schedule(graph)
            assert ours.converged
            if base.converged:
                assert ours.ii <= base.ii
