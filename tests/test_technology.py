"""Unit tests for the Rixner-style technology model (Figure 2)."""

import pytest

from repro import ConfigError, TechnologyModel, parse_config
from repro.machine.config import paper_configuration


@pytest.fixture
def tech():
    return TechnologyModel()


class TestMonotonicity:
    def test_cycle_time_grows_with_registers(self, tech):
        times = [
            tech.cycle_time_ns(paper_configuration(1, z))
            for z in (16, 32, 64, 128)
        ]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_area_grows_with_registers(self, tech):
        areas = [
            tech.area(paper_configuration(2, z)) for z in (16, 32, 64, 128)
        ]
        assert areas == sorted(areas)

    def test_power_grows_with_registers(self, tech):
        powers = [
            tech.power(paper_configuration(4, z)) for z in (16, 32, 64, 128)
        ]
        assert powers == sorted(powers)

    def test_clustering_shrinks_cycle_time_at_equal_z(self, tech):
        for z in (16, 32, 64, 128):
            unified = tech.cycle_time_ns(paper_configuration(1, z))
            two = tech.cycle_time_ns(paper_configuration(2, z))
            four = tech.cycle_time_ns(paper_configuration(4, z))
            assert four < two < unified


class TestPaperAnchors:
    """The five calibration anchors quoted in Sections 1 and 4.2."""

    def test_cycle_time_anchor(self, tech):
        clustered = paper_configuration(4, 64)
        unified16 = paper_configuration(1, 16)
        assert tech.cycle_time_ns(clustered) < tech.cycle_time_ns(unified16)
        # ... but only slightly below.
        assert tech.cycle_time_ns(clustered) > 0.9 * tech.cycle_time_ns(unified16)

    def test_area_anchor(self, tech):
        ratio = tech.area(paper_configuration(4, 64)) / tech.area(
            paper_configuration(1, 32)
        )
        assert 0.8 < ratio < 1.3

    def test_power_anchor(self, tech):
        ratio = tech.power(paper_configuration(4, 64)) / tech.power(
            paper_configuration(1, 16)
        )
        assert 0.8 < ratio < 1.2

    def test_area_reduction_factors(self, tech):
        unified = paper_configuration(1, 64)
        assert (
            0.10
            < tech.area(paper_configuration(4, 16)) / tech.area(unified)
            < 0.25
        )
        assert (
            0.30
            < tech.area(paper_configuration(2, 32)) / tech.area(unified)
            < 0.45
        )

    def test_power_reduction_factors(self, tech):
        unified = paper_configuration(1, 64)
        assert (
            0.40
            < tech.power(paper_configuration(4, 16)) / tech.power(unified)
            < 0.60
        )
        assert (
            0.60
            < tech.power(paper_configuration(2, 32)) / tech.power(unified)
            < 0.85
        )


class TestMissLatency:
    def test_25ns_conversion(self, tech):
        machine = paper_configuration(1, 64)
        cycles = tech.miss_latency_cycles(machine)
        assert cycles == -(-25.0 // tech.cycle_time_ns(machine)) or cycles >= 1
        assert cycles * tech.cycle_time_ns(machine) >= 25.0

    def test_faster_clock_means_more_miss_cycles(self, tech):
        slow = paper_configuration(1, 128)
        fast = paper_configuration(4, 16)
        assert tech.miss_latency_cycles(fast) > tech.miss_latency_cycles(slow)

    def test_execution_time(self, tech):
        machine = paper_configuration(1, 64)
        assert tech.execution_time_ns(machine, 1000) == pytest.approx(
            1000 * tech.cycle_time_ns(machine)
        )


class TestErrors:
    def test_unbounded_registers_have_no_physical_model(self, tech):
        machine = parse_config("1-(GP8M4-REGinf)")
        with pytest.raises(ConfigError):
            tech.cycle_time_ns(machine)
        with pytest.raises(ConfigError):
            tech.area(machine)
