"""Property-based tests: every schedule either scheduler produces on any
workload must satisfy the paper's invariants (DESIGN.md Section 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MirsC,
    NonIterativeScheduler,
    compute_mii,
    parse_config,
    verify_schedule,
)
from repro.workloads.unroll import unroll

from tests.helpers import (
    FOUR_CLUSTER,
    TWO_CLUSTER,
    UNIFIED,
    UNIFIED_SMALL,
    graph_seeds,
    random_graph,
)

MACHINES = [UNIFIED, TWO_CLUSTER, FOUR_CLUSTER]


@settings(max_examples=25, deadline=None)
@given(seed=graph_seeds, machine_index=st.integers(0, len(MACHINES) - 1))
def test_mirsc_schedules_are_always_valid(seed, machine_index):
    """Dependences, resources, cluster locality, register capacity."""
    machine = MACHINES[machine_index]
    graph = random_graph(seed, size=8 + seed % 5)
    result = MirsC(machine).schedule(graph)
    assert result.converged
    assert result.ii >= result.mii
    violations = verify_schedule(
        result.graph,
        machine,
        result.ii,
        result.times,
        result.clusters,
        result.register_usage,
    )
    assert violations == []


@settings(max_examples=15, deadline=None)
@given(seed=graph_seeds)
def test_mirsc_respects_tight_register_files(seed):
    machine = UNIFIED_SMALL  # 16 registers
    graph = random_graph(seed, size=10)
    result = MirsC(machine).schedule(graph)
    assert result.converged
    assert all(used <= 16 for used in result.register_usage.values())


@settings(max_examples=15, deadline=None)
@given(seed=graph_seeds)
def test_baseline_schedules_are_valid_when_converged(seed):
    machine = TWO_CLUSTER
    graph = random_graph(seed, size=9)
    result = NonIterativeScheduler(machine).schedule(graph)
    if not result.converged:
        return
    violations = verify_schedule(
        result.graph,
        machine,
        result.ii,
        result.times,
        result.clusters,
        result.register_usage,
    )
    assert violations == []


@settings(max_examples=15, deadline=None)
@given(seed=graph_seeds)
def test_mirsc_never_loses_to_baseline_unbounded(seed):
    """Table 1's invariant: with unbounded registers MIRS-C's II is never
    worse on loops both schedulers handle."""
    machine = parse_config("2-(GP4M2-REGinf)")
    graph = random_graph(seed, size=8)
    ours = MirsC(machine).schedule(graph)
    base = NonIterativeScheduler(machine).schedule(graph)
    assert ours.converged
    if base.converged:
        assert ours.ii <= base.ii


@settings(max_examples=15, deadline=None)
@given(seed=graph_seeds, factor=st.integers(2, 4))
def test_unroll_preserves_mii_rate(seed, factor):
    """Unrolling by f multiplies the work per iteration by f, so the
    resource MII must scale by at most f (and the per-original-iteration
    initiation rate never degrades just from re-indexing)."""
    graph = random_graph(seed, size=7)
    unrolled = unroll(graph, factor)
    assert len(unrolled) == factor * len(graph)
    base_mii = compute_mii(graph, UNIFIED)
    unrolled_mii = compute_mii(unrolled, UNIFIED)
    assert unrolled_mii <= factor * base_mii + 1


@settings(max_examples=20, deadline=None)
@given(seed=graph_seeds)
def test_schedule_is_deterministic(seed):
    graph = random_graph(seed, size=8)
    first = MirsC(TWO_CLUSTER).schedule(graph)
    second = MirsC(TWO_CLUSTER).schedule(graph)
    assert first.ii == second.ii
    assert first.times == second.times
    assert first.clusters == second.clusters


@settings(max_examples=15, deadline=None)
@given(seed=graph_seeds)
def test_maxlive_is_a_lower_bound_for_allocation(seed):
    graph = random_graph(seed, size=8)
    result = MirsC(UNIFIED).schedule(graph)
    for cluster, used in result.register_usage.items():
        assert used >= result.max_live[cluster] - len(
            result.graph.invariants()
        ) - 1 or used >= 0
        # Greedy wrap-around colouring stays close to MaxLive.
        assert used <= result.max_live[cluster] + 3
