"""Unit tests for wrap-around register allocation."""

import pytest

from repro import LoopBuilder
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import _colour_arcs, allocate_registers

from tests.helpers import UNIFIED


class TestColourArcs:
    def test_disjoint_arcs_share_colour(self):
        arcs = [(1, 0, 2), (2, 4, 2)]
        count, chosen = _colour_arcs(arcs, ii=8)
        assert count == 1
        assert chosen[1] == chosen[2]

    def test_overlapping_arcs_get_distinct_colours(self):
        arcs = [(1, 0, 5), (2, 3, 5)]
        count, chosen = _colour_arcs(arcs, ii=8)
        assert count == 2
        assert chosen[1] != chosen[2]

    def test_wrap_around_overlap_detected(self):
        # Arc A covers rows 6,7,0; arc B covers rows 7,0,1: they overlap.
        arcs = [(1, 6, 3), (2, 7, 3)]
        count, chosen = _colour_arcs(arcs, ii=8)
        assert count == 2

    def test_colour_count_matches_density_on_interval_family(self):
        # Nested intervals: density equals the family size.
        arcs = [(v, 0, 8 - v) for v in range(1, 5)]
        count, _ = _colour_arcs(arcs, ii=8)
        assert count == 4

    def test_empty(self):
        assert _colour_arcs([], ii=4) == (0, {})

    def test_no_two_overlapping_arcs_share_colour(self):
        import random

        rng = random.Random(7)
        ii = 12
        arcs = [
            (v, rng.randrange(ii), rng.randint(1, ii))
            for v in range(30)
        ]
        _, chosen = _colour_arcs(arcs, ii=ii)

        def rows(start, length):
            return {(start + i) % ii for i in range(length)}

        by_colour: dict[int, set] = {}
        for value, start, length in arcs:
            colour = chosen[value]
            occupied = by_colour.setdefault(colour, set())
            arc_rows = rows(start, length)
            assert not (occupied & arc_rows), "colour reuse with overlap"
            occupied |= arc_rows


class TestAllocateRegisters:
    def _analysed(self, graph, placements, ii):
        schedule = PartialSchedule(UNIFIED, ii=ii)
        for node_id, cycle in placements.items():
            schedule.place(graph.node(node_id), 0, cycle)
        return schedule

    def test_allocation_at_least_maxlive(self):
        b = LoopBuilder("a")
        x = b.load(array=0)
        y = b.load(array=1)
        z = b.add(x, y)
        b.store(z, array=2)
        graph = b.build()
        schedule = self._analysed(
            graph, {0: 0, 1: 0, 2: 2, 3: 6}, ii=4
        )
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        allocations = allocate_registers(graph, schedule, UNIFIED, analysis)
        assert allocations[0].registers_used >= analysis.max_live(0)
        # Greedy wrap-around colouring stays within a whisker of MaxLive.
        assert allocations[0].registers_used <= analysis.max_live(0) + 2

    def test_long_lifetime_gets_multiple_registers(self):
        b = LoopBuilder("long")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        schedule = self._analysed(graph, {x.id: 0, y.id: 9}, ii=3)
        allocations = allocate_registers(graph, schedule, UNIFIED)
        # Lifetime of x = 9 cycles = 3 full II periods: 3 registers.
        assert len(allocations[0].assignment[x.id]) == 3

    def test_invariant_registers_included(self):
        b = LoopBuilder("inv")
        u = b.add()
        inv = b.invariant("c")
        inv.consumers.add(u.id)
        graph = b.build()
        schedule = self._analysed(graph, {u.id: 0}, ii=4)
        allocations = allocate_registers(graph, schedule, UNIFIED)
        assert allocations[0].invariant_registers == 1
        assert allocations[0].registers_used >= 1


class TestSpilledInvariantsThreading:
    """Regression: ``spilled_invariants`` used to be *silently ignored*
    whenever ``analysis`` was provided - a tracker-provided analysis
    with a conflicting spill set now raises instead of quietly
    allocating the invariant a register it no longer holds."""

    def _invariant_state(self):
        from repro.core.params import MirsParams
        from repro.core.state import SchedulerState
        from repro.graph.mii import compute_mii
        from repro.order.hrms import hrms_order

        b = LoopBuilder("inv-thread")
        u = b.add(b.load(array=0))
        inv = b.invariant("c")
        inv.consumers.add(u.id)
        b.store(u, array=1)
        graph = b.build()
        ordering = hrms_order(graph, UNIFIED)
        state = SchedulerState(
            graph,
            UNIFIED,
            compute_mii(graph, UNIFIED) + 2,
            ordering.priority,
            MirsParams(),
        )
        for offset, node in enumerate(sorted(graph.nodes(), key=lambda n: n.id)):
            state.schedule.place(node, 0, offset * 2)
        return state, inv

    def test_conflicting_spill_set_raises(self):
        state, inv = self._invariant_state()
        with pytest.raises(ValueError, match="spilled_invariants"):
            allocate_registers(
                state.graph,
                state.schedule,
                state.machine,
                state.pressure,  # tracker carries an *empty* spill set
                spilled_invariants={(inv.id, 0)},
            )

    def test_tracker_provided_analysis_spill_set_is_honoured(self):
        """The tracker-provided-analysis path: mutating the scheduler's
        live spill set changes the allocation (the invariant's register
        is dropped), and passing the same set explicitly is accepted."""
        state, inv = self._invariant_state()
        before = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
            spilled_invariants=state.spilled_invariants,
        )
        assert before[0].invariant_registers == 1
        state.spilled_invariants.add((inv.id, 0))  # the tracker's live set
        after = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
            spilled_invariants=state.spilled_invariants,
        )
        assert after[0].invariant_registers == 0
        assert after[0].registers_used == before[0].registers_used - 1

    def test_batch_analysis_conflict_raises_too(self):
        state, inv = self._invariant_state()
        analysis = LifetimeAnalysis(state.graph, state.schedule, state.machine)
        with pytest.raises(ValueError, match="conflicts"):
            allocate_registers(
                state.graph,
                state.schedule,
                state.machine,
                analysis,
                spilled_invariants={(inv.id, 0)},
            )
