"""Unit tests for lifetime analysis, MaxLive and use segments."""

from repro import LoopBuilder
from repro.schedule.lifetimes import LifetimeAnalysis, UseSegment
from repro.schedule.partial import PartialSchedule

from tests.helpers import TWO_CLUSTER, UNIFIED


def _schedule(graph, machine, ii, placements):
    schedule = PartialSchedule(machine, ii=ii)
    for node_id, (cluster, cycle) in placements.items():
        schedule.place(graph.node(node_id), cluster, cycle)
    return schedule


class TestMaxLive:
    def test_single_value_counts_once_per_row(self):
        b = LoopBuilder("one")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        # load at 0, add at 2: lifetime of x's value is [0, 2) and of
        # y's value [2, 2+4) (no consumer -> producer latency).
        schedule = _schedule(graph, UNIFIED, 8, {x.id: (0, 0), y.id: (0, 2)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        assert analysis.max_live(0) == 1

    def test_overlapped_iterations_count_multiply(self):
        b = LoopBuilder("long")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        # Lifetime of x spans 6 cycles at II=2: three live instances.
        schedule = _schedule(graph, UNIFIED, 2, {x.id: (0, 0), y.id: (0, 6)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        lifetime = [lt for lt in analysis.lifetimes if lt.value == x.id][0]
        assert lifetime.length == 6
        assert analysis.pressure[0].rows.min() >= 3

    def test_loop_carried_use_extends_lifetime(self):
        b = LoopBuilder("lc")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        # Replace the edge with a distance-2 edge.
        edge = graph.out_edges(x.id)[0]
        graph.remove_edge(edge)
        graph.add_edge(x.id, y.id, distance=2)
        schedule = _schedule(graph, UNIFIED, 5, {x.id: (0, 0), y.id: (0, 3)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        lifetime = [lt for lt in analysis.lifetimes if lt.value == x.id][0]
        # Use happens at 3 + 2 * II = 13.
        assert lifetime.end == 13

    def test_unscheduled_consumers_ignored(self):
        b = LoopBuilder("part")
        x = b.load(array=0)
        b.add(x)  # consumer left unscheduled on purpose
        graph = b.build()
        schedule = _schedule(graph, UNIFIED, 4, {x.id: (0, 0)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        lifetime = analysis.lifetimes[0]
        assert lifetime.end == 2  # producer latency only

    def test_stores_produce_no_value(self):
        b = LoopBuilder("st")
        x = b.load(array=0)
        s = b.store(x, array=1)
        graph = b.build()
        schedule = _schedule(graph, UNIFIED, 4, {x.id: (0, 0), s.id: (0, 2)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        assert {lt.value for lt in analysis.lifetimes} == {x.id}

    def test_per_cluster_pressure(self):
        b = LoopBuilder("cl")
        x = b.load(array=0)
        y = b.load(array=1)
        graph = b.build()
        schedule = _schedule(
            graph, TWO_CLUSTER, 4, {x.id: (0, 0), y.id: (1, 0)}
        )
        analysis = LifetimeAnalysis(graph, schedule, TWO_CLUSTER)
        assert analysis.max_live(0) == 1
        assert analysis.max_live(1) == 1


class TestInvariants:
    def test_invariant_occupies_register_where_consumed(self):
        b = LoopBuilder("inv")
        u = b.add()
        v = b.mul()
        inv = b.invariant("c")
        inv.consumers |= {u.id, v.id}
        graph = b.build()
        schedule = _schedule(
            graph, TWO_CLUSTER, 4, {u.id: (0, 0), v.id: (1, 0)}
        )
        analysis = LifetimeAnalysis(graph, schedule, TWO_CLUSTER)
        assert analysis.pressure[0].invariant_registers == 1
        assert analysis.pressure[1].invariant_registers == 1

    def test_spilled_invariant_frees_register(self):
        b = LoopBuilder("inv")
        u = b.add()
        inv = b.invariant("c")
        inv.consumers.add(u.id)
        graph = b.build()
        schedule = _schedule(graph, TWO_CLUSTER, 4, {u.id: (0, 0)})
        analysis = LifetimeAnalysis(
            graph, schedule, TWO_CLUSTER, spilled_invariants={(inv.id, 0)}
        )
        assert analysis.pressure[0].invariant_registers == 0


class TestSegments:
    def test_segments_partition_lifetime(self):
        b = LoopBuilder("seg")
        x = b.load(array=0)
        u = b.add(x)
        v = b.mul(x)
        graph = b.build()
        schedule = _schedule(
            graph, UNIFIED, 16, {x.id: (0, 0), u.id: (0, 5), v.id: (0, 12)}
        )
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        segments = [s for s in analysis.segments if s.value == x.id]
        assert len(segments) == 2
        segments.sort(key=lambda s: s.end)
        assert (segments[0].start, segments[0].end) == (0, 5)
        assert (segments[1].start, segments[1].end) == (5, 12)

    def test_non_spillable_prefix(self):
        b = LoopBuilder("ns")
        x = b.load(array=0)
        u = b.add(x)
        graph = b.build()
        schedule = _schedule(graph, UNIFIED, 8, {x.id: (0, 0), u.id: (0, 1)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        segment = [s for s in analysis.segments if s.value == x.id][0]
        # The section [0, 1) lies inside the load's 2-cycle latency.
        assert not segment.spillable

    def test_spill_values_have_no_segments(self):
        b = LoopBuilder("sv")
        x = b.load(array=0)
        u = b.add(x)
        graph = b.build()
        graph.node(x.id).is_spill = True
        schedule = _schedule(graph, UNIFIED, 8, {x.id: (0, 0), u.id: (0, 4)})
        analysis = LifetimeAnalysis(graph, schedule, UNIFIED)
        assert [s for s in analysis.segments if s.value == x.id] == []

    def test_crosses_row_wrapping(self):
        segment = UseSegment(
            value=0, consumer=1, edge_distance=0,
            start=6, end=10, non_spillable_end=6, cluster=0,
        )
        ii = 8
        # Rows covered: 6, 7, 0, 1.
        assert segment.crosses_row(6, ii)
        assert segment.crosses_row(0, ii)
        assert segment.crosses_row(1, ii)
        assert not segment.crosses_row(3, ii)

    def test_long_segment_crosses_everything(self):
        segment = UseSegment(
            value=0, consumer=1, edge_distance=0,
            start=0, end=100, non_spillable_end=0, cluster=0,
        )
        assert all(segment.crosses_row(r, 8) for r in range(8))
