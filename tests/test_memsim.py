"""Unit tests for the cache simulator, trace model and stall analysis."""

import pytest

from repro import ConfigError, LoopBuilder, MirsC, TechnologyModel
from repro.machine.config import paper_configuration
from repro.memsim.cache import CacheConfig, LockupFreeCache
from repro.memsim.prefetch import (
    apply_binding_prefetch,
    prefetched_load_ids,
)
from repro.memsim.stall import MemoryModel
from repro.memsim.trace import loop_miss_rates

from tests.helpers import UNIFIED


class TestCache:
    def test_sequential_stream_misses_once_per_line(self):
        cache = LockupFreeCache()
        for address in range(0, 32 * 64, 8):  # 64 lines, 8B elements
            cache.access(address)
        assert cache.misses == 64
        assert cache.hits == 64 * 3

    def test_repeat_access_hits(self):
        cache = LockupFreeCache()
        cache.access(0)
        assert cache.access(0)
        assert cache.miss_rate == 0.5

    def test_capacity_eviction(self):
        config = CacheConfig(size_bytes=1024, line_bytes=32, associativity=1)
        cache = LockupFreeCache(config)
        # Touch 2x the capacity, then re-touch the start: all misses.
        for address in range(0, 2048, 32):
            cache.access(address)
        assert not cache.access(0)

    def test_lru_within_set(self):
        config = CacheConfig(size_bytes=128, line_bytes=32, associativity=2)
        cache = LockupFreeCache(config)  # 2 sets x 2 ways
        set_stride = 32 * config.num_sets
        a, b, c = 0, set_stride, 2 * set_stride  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b (LRU)
        assert cache.access(a)
        assert not cache.access(b)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, line_bytes=32, associativity=2)
        with pytest.raises(ConfigError):
            CacheConfig(mshrs=0)

    def test_reset(self):
        cache = LockupFreeCache()
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0


class TestTrace:
    def test_unit_stride_low_miss_rate(self):
        b = LoopBuilder("seq", trip_count=256)
        x = b.load(array=0, stride=1)
        b.store(x, array=1, stride=1)
        graph = b.build()
        rates = loop_miss_rates(graph)
        # 32B lines / 8B elements: one miss every 4 accesses.
        assert rates[x.id] == pytest.approx(0.25, abs=0.05)

    def test_large_stride_always_misses(self):
        b = LoopBuilder("stride", trip_count=256)
        x = b.load(array=0, stride=16)  # 128 bytes apart: new line each
        b.store(x, array=1)
        graph = b.build()
        rates = loop_miss_rates(graph)
        assert rates[x.id] > 0.9

    def test_no_memory_ops(self):
        b = LoopBuilder("none")
        b.add()
        assert loop_miss_rates(b.build()) == {}


class TestPrefetchPolicy:
    def _loop(self, trip_count=1000):
        b = LoopBuilder("pf", trip_count=trip_count)
        stream = b.load(array=0, stride=8)
        acc = b.add(stream)
        b.loop_carried(acc, acc, distance=1)
        rec_load = b.load(array=1)
        b.memory_dep(b.store(acc, array=1), rec_load, distance=1)
        b.loop_carried(rec_load, rec_load, distance=2)
        b.store(rec_load, array=2)
        return b.build(), stream, rec_load

    def test_stream_load_prefetched(self):
        graph, stream, rec_load = self._loop()
        machine = paper_configuration(1, 64)
        result = apply_binding_prefetch(graph, machine)
        assert stream.id in prefetched_load_ids(result)

    def test_recurrence_load_exempt(self):
        graph, stream, rec_load = self._loop()
        machine = paper_configuration(1, 64)
        result = apply_binding_prefetch(graph, machine)
        assert rec_load.id not in prefetched_load_ids(result)

    def test_short_loops_exempt(self):
        graph, stream, _ = self._loop(trip_count=8)
        machine = paper_configuration(1, 64)
        result = apply_binding_prefetch(graph, machine)
        assert prefetched_load_ids(result) == set()

    def test_original_graph_untouched(self):
        graph, stream, _ = self._loop()
        machine = paper_configuration(1, 64)
        apply_binding_prefetch(graph, machine)
        assert graph.node(stream.id).latency_override is None

    def test_miss_latency_scales_with_clock(self):
        graph, stream, _ = self._loop()
        tech = TechnologyModel()
        fast = paper_configuration(4, 16)
        slow = paper_configuration(1, 128)
        fast_g = apply_binding_prefetch(graph, fast, tech)
        slow_g = apply_binding_prefetch(graph, slow, tech)
        assert (
            fast_g.node(stream.id).latency_override
            > slow_g.node(stream.id).latency_override
        )


class TestStallModel:
    def _schedule(self, graph, machine=None):
        machine = machine or paper_configuration(1, 64)
        return MirsC(machine).schedule(graph)

    def test_hit_only_loop_barely_stalls(self):
        b = LoopBuilder("hits", trip_count=64)
        x = b.load(array=0, stride=0)  # same address every iteration
        b.store(b.add(x), array=1, stride=0)
        result = self._schedule(b.build())
        report = MemoryModel().evaluate(result)
        # Only the two cold misses contribute; their amortised cost is a
        # tiny fraction of the useful cycles.
        assert report.miss_rate < 0.05
        assert report.stall_cycles < 0.2 * report.useful_cycles

    def test_missing_loads_stall(self):
        b = LoopBuilder("misses", trip_count=512)
        x = b.load(array=0, stride=16)
        b.store(b.add(x), array=1, stride=16)
        result = self._schedule(b.build())
        report = MemoryModel().evaluate(result)
        assert report.stall_cycles > 0
        assert report.miss_rate > 0.4

    def test_prefetch_removes_stalls(self):
        b = LoopBuilder("pf", trip_count=512)
        x = b.load(array=0, stride=16)
        b.store(b.add(x), array=1, stride=16)
        graph = b.build()
        machine = paper_configuration(1, 64)
        normal = self._schedule(graph, machine)
        prefetched = self._schedule(
            apply_binding_prefetch(graph, machine), machine
        )
        model = MemoryModel()
        assert (
            model.evaluate(prefetched).stall_cycles
            < model.evaluate(normal).stall_cycles
        )

    def test_rejects_unconverged(self):
        from repro.core.result import ScheduleResult

        bogus = ScheduleResult(
            loop="x", machine=UNIFIED, converged=False, ii=1, mii=1
        )
        with pytest.raises(ValueError):
            MemoryModel().evaluate(bogus)
