"""Tests for the pluggable II-search policy API (repro.core.search).

Pins the PR's contract:

* the default ``LinearSearch`` reproduces the pre-policy scheduler
  bit-for-bit — fingerprints are compared against a file captured from
  the hardwired-ladder driver on the 16-loop workbench (both machine
  configurations);
* the jump policies stay within their documented bounds of linear's II
  (geometric: identical; bisection: bounded overshoot, never a lost
  convergence) on the workbench and the stress seeds;
* every result carries the full ``(ii, outcome)`` search trace;
* the policy participates in the exec cache keys: same policy + inputs
  is a warm hit, a different policy is a miss.
"""

import functools
import json
import pathlib

import pytest

from repro import (
    AttemptOutcome,
    BisectionSearch,
    ConfigError,
    ConvergenceError,
    GeometricPressureSearch,
    IISearchPolicy,
    LinearSearch,
    MirsC,
    MirsParams,
    OutcomeKind,
)
from repro.core.mirsc import Mirs
from repro.core.search import POLICIES, canonical_search, make_policy
from repro.exec import ResultCache, SuiteExecutor, cache_key, result_fingerprint
from repro.machine.config import parse_config
from repro.workloads.perfect import cached_suite
from repro.workloads.stress import stress_suite

FINGERPRINTS = json.loads(
    (pathlib.Path(__file__).parent / "data" / "workbench_fingerprints.json")
    .read_text()
)
CONFIGS = tuple(sorted(FINGERPRINTS))


@functools.lru_cache(maxsize=None)
def linear_suite(config: str):
    """Linear-search results for the 16-loop workbench on one config."""
    machine = parse_config(config)
    engine = MirsC(machine, strict=False)
    return {
        loop.graph.name: engine.schedule(loop.graph)
        for loop in cached_suite(16)
    }


@functools.lru_cache(maxsize=None)
def stress_results(search: str, index: int):
    machine = parse_config("1-(GP8M4-REG64)")
    graph = stress_suite(index + 1)[index]
    return MirsC(machine, strict=False, search=search).schedule(graph)


def outcome(ii=10, kind=OutcomeKind.BUDGET_EXHAUSTED, deficit=0, **kw):
    return AttemptOutcome(
        ii=ii,
        kind=kind,
        pressure_deficit={0: deficit} if deficit else {},
        registers_available=64,
        suggested_ii=kw.pop("suggested_ii", ii + 1),
        **kw,
    )


# ----------------------------------------------------------------------
# Acceptance: the default policy is bit-identical to the pre-PR driver
# ----------------------------------------------------------------------


class TestLinearEquivalence:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_workbench_fingerprints_match_pre_policy_capture(self, config):
        expected = FINGERPRINTS[config]
        results = linear_suite(config)
        assert set(results) == set(expected)
        mismatched = [
            name
            for name, result in results.items()
            if result_fingerprint(result) != expected[name]
        ]
        assert mismatched == []

    def test_explicit_linear_equals_default(self):
        machine = parse_config(CONFIGS[0])
        loop = cached_suite(1)[0]
        default = MirsC(machine).schedule(loop.graph)
        explicit = MirsC(machine, search="linear").schedule(loop.graph)
        instance = MirsC(machine, search=LinearSearch()).schedule(loop.graph)
        assert result_fingerprint(default) == result_fingerprint(explicit)
        assert result_fingerprint(default) == result_fingerprint(instance)

    def test_search_trace_recorded(self):
        machine = parse_config(CONFIGS[0])
        result = MirsC(machine).schedule(cached_suite(2)[1].graph)
        trace = result.stats.search_trace
        assert trace, "every result must carry its search trace"
        assert trace[-1]["kind"] == "scheduled"
        assert trace[-1]["ii"] == result.ii
        assert [e["ii"] for e in trace] == sorted(e["ii"] for e in trace)
        assert result.restarts == len(trace) - 1
        for entry in trace:
            assert set(entry) == {
                "ii", "kind", "deficit", "budget_left", "suggested_ii",
                "final_rounds",
            }


# ----------------------------------------------------------------------
# Documented convergence bounds of the jump policies
# ----------------------------------------------------------------------


class TestPolicyBounds:
    """The documented bounds (see README "Choosing an II search policy").

    * geometric: same convergence verdict and the *same II* as linear —
      its jumps approach the first feasible II strictly from below;
    * bisection: same convergence verdict; II at most
      ``max(linear + 2, 1.5 * linear)`` (the ascent-overshoot band on
      non-monotone landscapes).
    """

    @pytest.mark.parametrize("config", CONFIGS)
    def test_geometric_matches_linear_on_workbench(self, config):
        machine = parse_config(config)
        engine = MirsC(machine, strict=False, search="geometric")
        for loop in cached_suite(16):
            lin = linear_suite(config)[loop.graph.name]
            geo = engine.schedule(loop.graph)
            assert (geo.converged, geo.ii) == (lin.converged, lin.ii), (
                loop.graph.name
            )

    @pytest.mark.parametrize("config", CONFIGS)
    def test_bisection_bounded_on_workbench(self, config):
        machine = parse_config(config)
        engine = MirsC(machine, strict=False, search="bisection")
        for loop in cached_suite(16):
            lin = linear_suite(config)[loop.graph.name]
            bis = engine.schedule(loop.graph)
            assert bis.converged == lin.converged, loop.graph.name
            assert bis.ii <= max(lin.ii + 2, round(1.5 * lin.ii)), (
                loop.graph.name
            )

    @pytest.mark.parametrize("index", [0, 3])
    def test_geometric_exact_on_stress_seeds(self, index):
        lin = stress_results("linear", index)
        geo = stress_results("geometric", index)
        assert geo.converged == lin.converged
        assert geo.ii == lin.ii
        assert len(geo.stats.search_trace) <= len(lin.stats.search_trace)

    def test_geometric_cuts_stress0_attempts(self):
        lin = stress_results("linear", 0)
        geo = stress_results("geometric", 0)
        # ~147 linear attempts on stress0; the deficit jumps cut >2/3.
        assert len(geo.stats.search_trace) <= len(lin.stats.search_trace) // 3

    @pytest.mark.parametrize("index", [0, 3])
    def test_bisection_bounded_on_stress_seeds(self, index):
        lin = stress_results("linear", index)
        bis = stress_results("bisection", index)
        assert bis.converged == lin.converged
        assert bis.ii <= max(lin.ii + 2, round(1.5 * lin.ii))


# ----------------------------------------------------------------------
# Satellite: stress2 is cleanly reported, and the round cap is a param
# ----------------------------------------------------------------------


class TestStress2AndRoundCap:
    def test_stress2_cleanly_non_converged_with_outcome_kinds(self):
        """stress2's pressure floor exceeds AR at every II in range: the
        search must end as a clean non-convergence whose trace names a
        register-bound failure kind for the final attempts (not a crash,
        not an II=cap mystery)."""
        result = stress_results("geometric", 2)
        lin = stress_results("linear", 2)
        assert result.converged == lin.converged  # no policy regression
        if not result.converged:
            trace = result.stats.search_trace
            assert trace
            assert result.restarts == len(trace)
            kinds = {entry["kind"] for entry in trace}
            assert "scheduled" not in kinds
            assert kinds & {"round-cap", "registers", "budget"}
            # The register-bound failures carry the measured deficit.
            assert any(
                entry["deficit"] for entry in trace
                if entry["kind"] in ("round-cap", "registers")
            )

    def test_strict_mode_still_raises(self):
        machine = parse_config("1-(GP8M4-REG64)")
        graph = stress_suite(3)[2]
        with pytest.raises(ConvergenceError):
            MirsC(machine, search="geometric").schedule(graph)

    def test_round_cap_param(self):
        params = MirsParams(final_round_cap=5)
        assert params.final_round_cap_for(1, 1000) == 5
        derived = MirsParams()
        assert derived.final_round_cap_for(1, 16) == 3 + 8 + 2
        assert derived.final_round_cap_for(4, 320) == 12 + 8 + 40
        # Scales with the loop, never below the historical constant.
        assert derived.final_round_cap_for(2, 0) == 3 * 2 + 8
        with pytest.raises(ConfigError):
            MirsParams(final_round_cap=0)

    def test_churn_bound_resolution(self):
        assert MirsParams().effective_bound_eject_churn() is False
        assert MirsParams(
            ii_search="geometric"
        ).effective_bound_eject_churn() is True
        assert MirsParams(
            ii_search="geometric", bound_eject_churn=False
        ).effective_bound_eject_churn() is False
        assert MirsParams(
            bound_eject_churn=True
        ).effective_bound_eject_churn() is True


# ----------------------------------------------------------------------
# Acceptance: the policy participates in exec cache keys
# ----------------------------------------------------------------------


class TestCacheKeys:
    MACHINE = parse_config("2-(GP4M2-REG32)")

    def test_policy_changes_key(self):
        graph = cached_suite(1)[0].graph
        keys = {
            cache_key(graph, self.MACHINE, MirsParams(ii_search=name), "mirsc")
            for name in POLICIES
        }
        assert len(keys) == len(POLICIES)
        # Default == explicit linear (no spurious cache split).
        assert cache_key(graph, self.MACHINE, None, "mirsc") == cache_key(
            graph, self.MACHINE, MirsParams(ii_search="linear"), "mirsc"
        )

    def test_policy_parameters_change_key(self):
        graph = cached_suite(1)[0].graph
        base = cache_key(
            graph, self.MACHINE, MirsParams(ii_search="geometric"), "mirsc"
        )
        tuned = cache_key(
            graph,
            self.MACHINE,
            MirsParams(ii_search=GeometricPressureSearch(jump_fraction=0.5)),
            "mirsc",
        )
        assert base != tuned
        # ...but an instance with default parameters aliases the name.
        assert base == cache_key(
            graph,
            self.MACHINE,
            MirsParams(ii_search=GeometricPressureSearch()),
            "mirsc",
        )

    def test_churn_flag_changes_key(self):
        graph = cached_suite(1)[0].graph
        assert cache_key(
            graph, self.MACHINE, MirsParams(), "mirsc"
        ) != cache_key(
            graph, self.MACHINE, MirsParams(bound_eject_churn=True), "mirsc"
        )

    def test_parallel_equals_sequential_under_policy(self):
        """Policy objects ship to worker processes with the params."""
        from repro.core.request import ScheduleRequest, SessionConfig
        from repro.eval.runner import schedule_suite

        loops = cached_suite(3)
        request = ScheduleRequest(search="geometric")
        seq = schedule_suite(
            self.MACHINE, loops, request, session=SessionConfig(jobs=1)
        )
        par = schedule_suite(
            self.MACHINE, loops, request, session=SessionConfig(jobs=2)
        )
        assert [result_fingerprint(r) for r in seq.results] == [
            result_fingerprint(r) for r in par.results
        ]

    def test_same_policy_warm_hit_different_policy_miss(self, tmp_path):
        loops = cached_suite(2)
        cache = ResultCache(tmp_path)
        linear_params = MirsParams(ii_search="linear")
        geo_params = MirsParams(ii_search="geometric")

        cold = SuiteExecutor(cache=cache)
        cold.run(self.MACHINE, loops, linear_params)
        assert cold.stats.scheduled == len(loops)

        warm = SuiteExecutor(cache=cache)
        warm.run(self.MACHINE, loops, linear_params)
        assert warm.stats.scheduled == 0
        assert warm.stats.cache_hits == len(loops)

        other = SuiteExecutor(cache=cache)
        other.run(self.MACHINE, loops, geo_params)
        assert other.stats.cache_hits == 0
        assert other.stats.scheduled == len(loops)


# ----------------------------------------------------------------------
# Policy unit tests (synthetic outcomes, no scheduling)
# ----------------------------------------------------------------------


class TestPolicyUnits:
    def test_registry_and_factory(self):
        assert set(POLICIES) == {"linear", "geometric", "bisection"}
        for name, cls in POLICIES.items():
            policy = make_policy(name)
            assert isinstance(policy, cls)
            assert isinstance(policy, IISearchPolicy)
            assert policy.canonical()["name"] == name
        instance = BisectionSearch(growth=3.0)
        assert make_policy(instance) is instance
        assert canonical_search("bisection") == {
            "name": "bisection", "growth": 2.0,
        }
        with pytest.raises(ConfigError):
            make_policy("simulated-annealing")
        with pytest.raises(ConfigError):
            make_policy(42)
        with pytest.raises(ConfigError):
            MirsParams(ii_search="nope")

    def test_policy_parameter_validation(self):
        with pytest.raises(ConfigError):
            GeometricPressureSearch(jump_fraction=0.0)
        with pytest.raises(ConfigError):
            GeometricPressureSearch(tail_deficit=0)
        with pytest.raises(ConfigError):
            BisectionSearch(growth=1.0)

    def test_linear_ladder(self):
        policy = LinearSearch()
        assert policy.first_ii(7, 10) == 7
        assert policy.next_ii(outcome(ii=7)) == 8
        # Traffic failures skip to the scheduler's suggestion.
        assert policy.next_ii(
            outcome(ii=8, kind=OutcomeKind.TRAFFIC_INFEASIBLE, suggested_ii=10)
        ) == 10
        assert policy.next_ii(
            outcome(ii=10, kind=OutcomeKind.SCHEDULED)
        ) is None
        assert policy.next_ii(outcome(ii=10)) is None  # cap reached

    def test_geometric_jumps_then_latches(self):
        policy = GeometricPressureSearch(jump_fraction=0.25, tail_deficit=40)
        assert policy.first_ii(100, 1000) == 100
        # Large deficit: jump min(deficit, ceil(ii/4)).
        assert policy.next_ii(
            outcome(ii=100, kind=OutcomeKind.ROUND_CAP, deficit=60)
        ) == 125
        # Jump capped by ceil(ii * fraction).
        assert policy.next_ii(
            outcome(ii=125, kind=OutcomeKind.ROUND_CAP, deficit=41)
        ) == 157
        # Jump never exceeds the deficit itself.
        assert policy.next_ii(
            outcome(ii=160, kind=OutcomeKind.ROUND_CAP, deficit=40)
        ) == 200
        # Small deficit latches the +1 tail...
        assert policy.next_ii(
            outcome(ii=200, kind=OutcomeKind.ROUND_CAP, deficit=39)
        ) == 201
        # ...permanently, even if the deficit bounces back up.
        assert policy.next_ii(
            outcome(ii=201, kind=OutcomeKind.ROUND_CAP, deficit=60)
        ) == 202

    def test_geometric_backfills_skipped_iis_before_giving_up(self):
        policy = GeometricPressureSearch()
        assert policy.first_ii(10, 16) == 10
        assert policy.next_ii(outcome(ii=10, deficit=50)) == 13  # jump
        assert policy.next_ii(outcome(ii=13, deficit=5)) == 14  # latch
        assert policy.next_ii(outcome(ii=14, deficit=0)) == 15
        assert policy.next_ii(outcome(ii=15, deficit=0)) == 16
        # Ladder exhausted: the jumped-over 11 and 12 are probed,
        # nearest-first, so a jump can never cost a convergence.
        assert policy.next_ii(outcome(ii=16, deficit=0)) == 12
        assert policy.next_ii(outcome(ii=12, deficit=0)) == 11
        assert policy.next_ii(outcome(ii=11, deficit=0)) is None

    def test_bisection_ascent_then_bisect(self):
        policy = BisectionSearch()
        assert policy.first_ii(10, 1000) == 10
        assert policy.next_ii(outcome(ii=10)) == 20
        assert policy.next_ii(outcome(ii=20)) == 40
        # First success: bisect (20, 40).
        assert policy.next_ii(
            outcome(ii=40, kind=OutcomeKind.SCHEDULED)
        ) == 30
        assert policy.next_ii(outcome(ii=30)) == 35
        assert policy.next_ii(
            outcome(ii=35, kind=OutcomeKind.SCHEDULED)
        ) == 32
        assert policy.next_ii(outcome(ii=32)) == 33
        assert policy.next_ii(outcome(ii=33)) == 34
        assert policy.next_ii(outcome(ii=34)) is None  # accepts 35

    def test_bisection_falls_back_to_ladder(self):
        policy = BisectionSearch()
        assert policy.first_ii(10, 25) == 10
        assert policy.next_ii(outcome(ii=10)) == 20
        assert policy.next_ii(outcome(ii=20)) == 25  # clamped to the cap
        # Ascent exhausted with no feasible point: ladder over the
        # unprobed IIs, lowest-first.
        assert policy.next_ii(outcome(ii=25)) == 11
        for ii, expected in [(11, 12), (12, 13)]:
            assert policy.next_ii(outcome(ii=ii)) == expected
        assert policy.next_ii(
            outcome(ii=13, kind=OutcomeKind.SCHEDULED)
        ) is None

    def test_first_ii_resets_state(self):
        policy = BisectionSearch()
        policy.first_ii(10, 100)
        policy.next_ii(outcome(ii=10))
        assert policy.first_ii(5, 50) == 5
        assert policy.next_ii(outcome(ii=5)) == 10

    def test_outcome_helpers(self):
        o = outcome(ii=9, kind=OutcomeKind.ROUND_CAP, deficit=7)
        assert o.kind.is_register_bound
        assert not o.scheduled
        assert o.max_deficit == 7
        entry = o.as_trace_entry()
        assert entry["ii"] == 9 and entry["kind"] == "round-cap"
        assert json.dumps(entry)  # JSON-serializable

    def test_mirs_accepts_search(self):
        machine = parse_config("1-(GP8M4-REG64)")
        result = Mirs(machine, search="geometric").schedule(
            cached_suite(1)[0].graph
        )
        assert result.converged
