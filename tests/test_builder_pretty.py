"""Tests for the LoopBuilder DSL and the schedule pretty-printer."""

from repro import DepKind, LoopBuilder, MirsC, OpKind
from repro.eval.pretty import format_kernel

from tests.helpers import FOUR_CLUSTER, UNIFIED, daxpy


class TestLoopBuilder:
    def test_operations_and_edges(self):
        b = LoopBuilder("t")
        x = b.load(array=0)
        y = b.mul(x, x)
        s = b.store(y, array=1)
        graph = b.build()
        assert graph.node(x.id).kind is OpKind.LOAD
        assert graph.node(y.id).kind is OpKind.MUL
        assert len(graph.in_edges(y.id)) == 2  # both operands
        assert graph.preds(s.id) == {y.id}

    def test_all_op_kinds(self):
        b = LoopBuilder("k")
        x = b.load(array=0)
        assert b.add(x).kind is OpKind.ADD
        assert b.mul(x).kind is OpKind.MUL
        assert b.div(x).kind is OpKind.DIV
        assert b.sqrt(x).kind is OpKind.SQRT
        assert b.store(x).kind is OpKind.STORE

    def test_invariant_operand(self):
        b = LoopBuilder("inv")
        c = b.invariant("c")
        node = b.mul(c)
        graph = b.build()
        assert node.id in graph.invariant(c.id).consumers
        assert graph.in_edges(node.id) == []

    def test_loop_carried_rejects_distance_below_one(self):
        import pytest

        from repro.errors import GraphError

        b = LoopBuilder("bad")
        x = b.load(array=0, name="ld_x")
        acc = b.add(x, name="acc")
        with pytest.raises(GraphError, match="acc -> ld_x.*distance 0"):
            b.loop_carried(acc, x, distance=0)
        with pytest.raises(GraphError, match="distance -1"):
            b.loop_carried(acc, acc, distance=-1)
        # Distance 1 is the smallest legal recurrence span.
        b.loop_carried(acc, acc, distance=1)
        b.build()

    def test_loop_carried_and_memory_deps(self):
        b = LoopBuilder("deps")
        x = b.load(array=0)
        acc = b.add(x)
        b.loop_carried(acc, acc, distance=3)
        s = b.store(acc, array=0)
        b.memory_dep(s, x, distance=1)
        graph = b.build()
        self_edges = [
            e for e in graph.out_edges(acc.id) if e.dst == acc.id
        ]
        assert self_edges[0].distance == 3
        mem_edges = [
            e for e in graph.out_edges(s.id) if e.kind is DepKind.MEM
        ]
        assert mem_edges[0].dst == x.id

    def test_fresh_arrays_allocated(self):
        b = LoopBuilder("arr")
        x = b.load()
        y = b.load()
        assert x.mem_ref.array != y.mem_ref.array

    def test_control_dep(self):
        b = LoopBuilder("ctrl")
        x = b.load(array=0)
        y = b.add(x)
        b.control_dep(x, y)
        graph = b.build()
        kinds = {e.kind for e in graph.out_edges(x.id)}
        assert DepKind.CTRL in kinds


class TestPrettyPrinter:
    def test_kernel_format_unified(self):
        result = MirsC(UNIFIED).schedule(daxpy())
        text = format_kernel(result)
        assert f"II={result.ii}" in text
        assert "cluster 0" in text
        assert "cycle" in text

    def test_kernel_format_clustered_moves_annotated(self):
        result = MirsC(FOUR_CLUSTER).schedule(daxpy())
        text = format_kernel(result)
        assert "cluster 3" in text
        if result.move_operations:
            assert "->" in text

    def test_unconverged_formats_gracefully(self):
        from repro.core.result import ScheduleResult

        bogus = ScheduleResult(
            loop="x", machine=UNIFIED, converged=False, ii=1, mii=1
        )
        assert "NOT CONVERGED" in format_kernel(bogus)
