"""Differential tests for the incremental circular-arc colouring engine.

The contract under test:
:class:`repro.schedule.colouring.IncrementalArcColouring` is
**register-count- and colour-identical** to the batch oracle - a
from-scratch :class:`~repro.schedule.lifetimes.LifetimeAnalysis` fed
through :func:`repro.schedule.regalloc._colour_arcs` - after *any*
sequence of scheduler events (placements, ejections, spill insertion,
edge rewiring) on unified and clustered machines alike, and the greedy
colouring respects the paper's footnote-2 bracket: it never beats
MaxLive, and exceeds it only on pathological arc patterns.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mirsc import MirsC
from repro.core.params import MirsParams
from repro.errors import SchedulingError
from repro.schedule import colouring as colouring_module
from repro.schedule.colouring import IncrementalArcColouring, arc_mask
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.regalloc import _colour_arcs, allocate_registers
from repro.spill.heuristics import check_and_insert_spill
from repro.workloads.perfect import cached_suite

from tests.helpers import (
    FOUR_CLUSTER_TIGHT,
    TWO_CLUSTER,
    UNIFIED,
    UNIFIED_SMALL,
    add_random_edge,
    eject_random,
    fresh_state,
    place_random,
)

MACHINES = [UNIFIED_SMALL, TWO_CLUSTER, FOUR_CLUSTER_TIGHT]


def _assert_counts_match_batch(state) -> None:
    """Engine counts == a full batch allocation on the same state."""
    engine = state.colouring
    batch = allocate_registers(
        state.graph,
        state.schedule,
        state.machine,
        state.pressure,
        spilled_invariants=state.spilled_invariants,
    )
    for cluster, allocation in batch.items():
        assert engine.registers_used(cluster) == allocation.registers_used


class TestRandomizedEventSequences:
    """Property: engine == batch colouring after every event mix."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_engine_identical_after_random_events(self, seed):
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = fresh_state(seed, machine)
        assert state.colouring is not None
        for _ in range(25):
            roll = rng.random()
            try:
                if roll < 0.45:
                    place_random(state, rng)
                elif roll < 0.6:
                    eject_random(state, rng)
                elif roll < 0.7:
                    add_random_edge(state, rng)
                else:
                    check_and_insert_spill(
                        state, final=rng.random() < 0.4
                    )
            except SchedulingError:
                break  # livelock guards may fire on adversarial orders
            state.colouring.assert_matches_scratch()
        _assert_counts_match_batch(state)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_engine_attaches_to_partial_schedules(self, seed):
        """An engine whose first query happens over an already-partial
        schedule (lazy build) is exact."""
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = fresh_state(seed, machine)
        for _ in range(6):
            place_random(state, rng)
        # No query so far: the engine has not built its buckets yet.
        state.colouring.assert_matches_scratch()
        _assert_counts_match_batch(state)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_idle_valve_rebuilds_exactly(self, seed):
        """A long query-free event burst tears the buckets down; the
        next query rebuilds them bit-identically."""
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = fresh_state(seed, machine)
        engine = state.colouring
        engine.registers_used_all()  # force an eager build
        assert engine._buckets is not None
        # Overwhelm the idle valve with query-free churn.
        for _ in range(120):
            place_random(state, rng)
            eject_random(state, rng)
        engine._events_since_query = 10**9
        for _ in range(10):  # stores may produce no lifetime event
            eject_random(state, rng)
            place_random(state, rng)
            if engine._buckets is None:
                break
        assert engine._buckets is None  # valve fired
        engine.assert_matches_scratch()  # rebuild on demand, still exact
        _assert_counts_match_batch(state)


class TestMaxLiveBracket:
    """Footnote 2: MaxLive is a lower bound the colouring can exceed."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_colouring_never_beats_maxlive(self, seed):
        rng = random.Random(seed)
        machine = MACHINES[seed % len(MACHINES)]
        state = fresh_state(seed, machine)
        for _ in range(10):
            try:
                place_random(state, rng)
            except SchedulingError:
                break
        live = state.pressure.max_live_all()
        for cluster, used in state.colouring.registers_used_all().items():
            assert used >= live[cluster], (
                f"colouring beat MaxLive in cluster {cluster}"
            )

    def test_pathological_arcs_exceed_density(self):
        """A 3-cycle of pairwise-overlapping arcs needs 3 colours while
        no row holds more than 2 - the constructed case where the
        allocation exceeds the MaxLive lower bound (footnote 2)."""
        arcs = [(1, 0, 3), (2, 2, 3), (3, 4, 3)]
        ii = 6
        count, chosen = _colour_arcs(arcs, ii)
        peak_density = max(
            sum(
                1
                for _, start, length in arcs
                if arc_mask(start, length, ii) & (1 << row)
            )
            for row in range(ii)
        )
        assert peak_density == 2
        assert count == 3  # the greedy (and any colouring) needs one more

    def test_footnote2_gap_quantified_on_workbench(self):
        """The greedy's overshoot past MaxLive stays within a whisker on
        the 16-loop workbench (both reference machines): that is the
        behaviour footnote 2 of the paper describes."""
        worst = 0
        for machine_name in ("1-(GP8M4-REG64)", "4-(GP2M1-REG32)"):
            from repro.machine.config import parse_config

            machine = parse_config(machine_name)
            for loop in cached_suite(16):
                result = MirsC(machine).schedule(loop.graph)
                for cluster, used in result.register_usage.items():
                    gap = used - result.max_live[cluster]
                    assert gap >= 0  # the colouring never beats MaxLive
                    worst = max(worst, gap)
        # Measured gap distribution over the 80 cluster-allocations of
        # the 16-loop workbench on both machines: {0: 66, 1: 10, 2: 3,
        # 3: 1} - the greedy matches MaxLive in >80% of allocations and
        # never overshoots by more than 3 registers, exactly the
        # "sometimes MaxLive is a lower bound" behaviour of footnote 2.
        # A wider gap means the cut-point/ordering heuristic regressed.
        assert worst <= 3

    def test_footnote2_gap_quantified_on_stress_seeds(self):
        """Same bracket on the 100-400-node stress seeds (reusing the
        suite's cached schedules - see tests/test_search.py)."""
        from tests.test_search import stress_results

        worst = 0
        for index in (0, 3):
            result = stress_results("geometric", index)
            assert result.converged
            for cluster, used in result.register_usage.items():
                gap = used - result.max_live[cluster]
                assert gap >= 0
                worst = max(worst, gap)
        assert worst <= 2


class TestWholeRuns:
    def test_workbench_runs_self_check_clean(self, monkeypatch):
        """Acceptance: the engine cross-checks clean against the batch
        oracle on every event and every query of whole MIRS-C runs on
        spill-heavy (small register file) machines."""
        monkeypatch.setattr(colouring_module, "SELF_CHECK", True)
        for machine in (UNIFIED_SMALL, FOUR_CLUSTER_TIGHT):
            for loop in cached_suite(4):
                result = MirsC(machine, strict=False).schedule(loop.graph)
                assert result.converged or result.restarts > 0

    @pytest.mark.parametrize("machine", [UNIFIED, FOUR_CLUSTER_TIGHT])
    def test_final_allocation_identical_engine_on_and_off(self, machine):
        """The engine changes no verdict: register usage of finished
        schedules is identical with the incremental allocator on/off."""
        for loop in cached_suite(6):
            on = MirsC(machine).schedule(loop.graph)
            off = MirsC(
                machine, params=MirsParams(incremental_colouring=False)
            ).schedule(loop.graph)
            assert on.register_usage == off.register_usage
            assert on.ii == off.ii
            assert on.times == off.times


class TestEngineLifecycle:
    def test_state_without_register_limit_has_no_engine(self):
        from repro.machine.config import parse_config

        state = fresh_state(3, parse_config("1-(GP8M4-REGinf)"))
        assert state.colouring is None

    def test_param_toggle_disables_engine(self):
        from repro.core.state import SchedulerState
        from repro.graph.mii import compute_mii
        from repro.order.hrms import hrms_order
        from tests.helpers import random_graph

        graph = random_graph(5, size=10)
        machine = UNIFIED_SMALL
        ordering = hrms_order(graph, machine)
        state = SchedulerState(
            graph,
            machine,
            compute_mii(graph, machine),
            ordering.priority,
            MirsParams(incremental_colouring=False),
        )
        assert state.colouring is None

    def test_detach_stops_observing(self):
        state = fresh_state(4, UNIFIED_SMALL)
        engine = state.colouring
        assert engine in state.pressure.lifetime_listeners
        engine.detach()
        assert engine not in state.pressure.lifetime_listeners

    def test_allocate_registers_rejects_foreign_colouring(self):
        """The colouring engine must mirror the analysis it is passed
        with - a mismatched pair is a programming error, not a silent
        wrong answer."""
        state = fresh_state(6, UNIFIED_SMALL)
        rng = random.Random(6)
        place_random(state, rng)
        scratch = LifetimeAnalysis(state.graph, state.schedule, state.machine)
        with pytest.raises(ValueError, match="different analysis"):
            allocate_registers(
                state.graph,
                state.schedule,
                state.machine,
                scratch,
                colouring=state.colouring,
            )

    def test_allocate_registers_with_engine_matches_batch_exactly(self):
        """allocate_registers(colouring=engine) returns bit-identical
        allocations (counts *and* assignments) to the batch path."""
        state = fresh_state(7, TWO_CLUSTER)
        rng = random.Random(7)
        for _ in range(8):
            place_random(state, rng)
        incremental = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
            colouring=state.colouring,
        )
        batch = allocate_registers(
            state.graph,
            state.schedule,
            state.machine,
            state.pressure,
        )
        assert incremental == batch


def test_self_check_env_flag(monkeypatch):
    """REPRO_COLOUR_SELFCHECK wires the module flag like the pressure
    tracker's, and a self-checking engine builds eagerly."""
    monkeypatch.setattr(colouring_module, "SELF_CHECK", True)
    state = fresh_state(8, UNIFIED_SMALL)
    assert state.colouring.self_check
    assert state.colouring._buckets is not None
