"""The verifier must catch planted violations (it guards every result)."""

import pytest

from repro import LoopBuilder, MirsC, verify_schedule

from tests.helpers import TWO_CLUSTER, UNIFIED, daxpy


@pytest.fixture
def valid_result():
    return MirsC(UNIFIED).schedule(daxpy())


class TestVerifier:
    def test_valid_schedule_passes(self, valid_result):
        violations = verify_schedule(
            valid_result.graph,
            UNIFIED,
            valid_result.ii,
            valid_result.times,
            valid_result.clusters,
            valid_result.register_usage,
        )
        assert violations == []

    def test_detects_missing_node(self, valid_result):
        times = dict(valid_result.times)
        victim = next(iter(times))
        del times[victim]
        violations = verify_schedule(
            valid_result.graph, UNIFIED, valid_result.ii,
            times, valid_result.clusters,
        )
        assert any("not scheduled" in v for v in violations)

    def test_detects_dependence_violation(self, valid_result):
        times = dict(valid_result.times)
        graph = valid_result.graph
        edge = next(iter(graph.edges()))
        times[edge.dst] = times[edge.src] - 100
        violations = verify_schedule(
            graph, UNIFIED, valid_result.ii, times, valid_result.clusters
        )
        assert any("violated" in v for v in violations)

    def test_detects_resource_oversubscription(self):
        b = LoopBuilder("over")
        loads = [b.load(array=i) for i in range(5)]
        graph = b.build()
        times = {load.id: 0 for load in loads}  # 5 loads, 4 ports, II=1
        clusters = {load.id: 0 for load in loads}
        violations = verify_schedule(graph, UNIFIED, 1, times, clusters)
        assert any("resource conflict" in v for v in violations)

    def test_detects_cross_cluster_register_use(self):
        b = LoopBuilder("cross")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        times = {x.id: 0, y.id: 10}
        clusters = {x.id: 0, y.id: 1}  # no move in between!
        violations = verify_schedule(graph, TWO_CLUSTER, 4, times, clusters)
        assert any("cross-cluster" in v for v in violations)

    def test_detects_register_overuse(self, valid_result):
        violations = verify_schedule(
            valid_result.graph,
            UNIFIED,
            valid_result.ii,
            valid_result.times,
            valid_result.clusters,
            register_usage={0: 10_000},
        )
        assert any("registers" in v for v in violations)
