"""The verifier must catch planted violations (it guards every result)."""

import pytest

from repro import LoopBuilder, MirsC, verify_schedule

from tests.helpers import TWO_CLUSTER, UNIFIED, daxpy


@pytest.fixture
def valid_result():
    return MirsC(UNIFIED).schedule(daxpy())


class TestVerifier:
    def test_valid_schedule_passes(self, valid_result):
        violations = verify_schedule(
            valid_result.graph,
            UNIFIED,
            valid_result.ii,
            valid_result.times,
            valid_result.clusters,
            valid_result.register_usage,
        )
        assert violations == []

    def test_detects_missing_node(self, valid_result):
        times = dict(valid_result.times)
        victim = next(iter(times))
        del times[victim]
        violations = verify_schedule(
            valid_result.graph, UNIFIED, valid_result.ii,
            times, valid_result.clusters,
        )
        assert any("not scheduled" in v for v in violations)

    def test_detects_dependence_violation(self, valid_result):
        times = dict(valid_result.times)
        graph = valid_result.graph
        edge = next(iter(graph.edges()))
        times[edge.dst] = times[edge.src] - 100
        violations = verify_schedule(
            graph, UNIFIED, valid_result.ii, times, valid_result.clusters
        )
        assert any("violated" in v for v in violations)

    def test_detects_resource_oversubscription(self):
        b = LoopBuilder("over")
        loads = [b.load(array=i) for i in range(5)]
        graph = b.build()
        times = {load.id: 0 for load in loads}  # 5 loads, 4 ports, II=1
        clusters = {load.id: 0 for load in loads}
        violations = verify_schedule(graph, UNIFIED, 1, times, clusters)
        assert any("resource conflict" in v for v in violations)

    def test_detects_cross_cluster_register_use(self):
        b = LoopBuilder("cross")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        times = {x.id: 0, y.id: 10}
        clusters = {x.id: 0, y.id: 1}  # no move in between!
        violations = verify_schedule(graph, TWO_CLUSTER, 4, times, clusters)
        assert any("cross-cluster" in v for v in violations)

    def test_detects_register_overuse(self, valid_result):
        violations = verify_schedule(
            valid_result.graph,
            UNIFIED,
            valid_result.ii,
            valid_result.times,
            valid_result.clusters,
            register_usage={0: 10_000},
        )
        assert any("registers" in v for v in violations)


class TestInstanceAssignment:
    """Regression (found by the paper-scale nightly suite): first-fit
    replay of multi-row reservations is placement-order-dependent, so a
    *valid* schedule with unpipelined divides could be reported as a
    resource conflict when replayed in node-id order."""

    def _div_machine(self):
        from repro import parse_config

        return parse_config("1-(GP2M1-REG64)")  # 2 FUs; DIV occupies 17

    def _div_schedule(self):
        """2 FUs, II=34: in id order (A, B, C, D) the first-fit replay
        parks C on the instance D needs; the only valid assignment is
        {A, D} / {B, C}, which an exact solver must find."""
        from repro import DependenceGraph, OpKind

        graph = DependenceGraph(name="divpack", trip_count=10)
        a = graph.new_node(OpKind.DIV)  # rows 0..16
        b_node = graph.new_node(OpKind.DIV)  # rows 16..32
        c = graph.new_node(OpKind.ADD)  # row 33
        d = graph.new_node(OpKind.DIV)  # rows 17..33
        times = {a.id: 0, b_node.id: 16, c.id: 33, d.id: 17}
        clusters = {n: 0 for n in times}
        return graph, times, clusters

    def test_valid_multi_row_packing_accepted(self):
        graph, times, clusters = self._div_schedule()
        violations = verify_schedule(
            graph, self._div_machine(), 34, times, clusters
        )
        assert violations == []

    def test_first_fit_replay_would_have_rejected_it(self):
        """Pin the motivating asymmetry: the MRT's own first-fit replay
        (the old verifier) fails on the same schedule in id order."""
        from repro import SchedulingError
        from repro.schedule.mrt import ModuloReservationTable

        graph, times, clusters = self._div_schedule()
        mrt = ModuloReservationTable(self._div_machine(), 34)
        with pytest.raises(SchedulingError, match="resource conflict"):
            for node in sorted(graph.nodes(), key=lambda n: n.id):
                mrt.place(node, clusters[node.id], times[node.id])

    def test_truly_infeasible_packing_rejected(self):
        """Three overlapping divides on 2 FUs: no assignment exists and
        the exact check must say so (row capacity already catches it)."""
        from repro import DependenceGraph, OpKind

        graph = DependenceGraph(name="divover", trip_count=10)
        nodes = [graph.new_node(OpKind.DIV) for _ in range(3)]
        times = {n.id: 0 for n in nodes}  # identical rows 0..16
        clusters = {n.id: 0 for n in nodes}
        violations = verify_schedule(
            graph, self._div_machine(), 34, times, clusters
        )
        assert any("resource conflict" in v for v in violations)
