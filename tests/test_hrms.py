"""Unit and property tests for the HRMS-style pre-ordering."""

from hypothesis import given, settings

from repro import LoopBuilder, find_recurrences, hrms_order
from repro.order.hrms import ordering_property_violations

from tests.helpers import (
    UNIFIED,
    chain,
    daxpy,
    graph_seeds,
    graph_sizes,
    random_graph,
    reduction,
)


class TestBasicOrdering:
    def test_orders_every_node_exactly_once(self):
        graph = daxpy()
        result = hrms_order(graph, UNIFIED)
        assert sorted(result.order) == sorted(graph.node_ids())

    def test_priorities_strictly_decreasing_along_order(self):
        graph = chain(5)
        result = hrms_order(graph, UNIFIED)
        priorities = [result.priority[n] for n in result.order]
        assert priorities == sorted(priorities, reverse=True)

    def test_chain_ordered_contiguously(self):
        graph = chain(6)
        result = hrms_order(graph, UNIFIED)
        # A pure chain must be ordered topologically (each node adjacent
        # to the already-ordered part).
        assert ordering_property_violations(graph, result.order) == []

    def test_empty_graph(self):
        from repro import DependenceGraph

        result = hrms_order(DependenceGraph("empty"), UNIFIED)
        assert result.order == ()


class TestRecurrencePriority:
    def test_recurrence_nodes_come_first(self):
        b = LoopBuilder("mix")
        x = b.load(array=0)
        acc = b.add(x)
        b.loop_carried(acc, acc, distance=1)
        extra = b.mul(x, x)
        b.store(extra, array=1)
        b.store(acc, array=2)
        graph = b.build()
        result = hrms_order(graph, UNIFIED)
        # The accumulator (the only recurrence) is ordered before the
        # non-recurrent multiply.
        assert result.order.index(acc.id) < result.order.index(extra.id)
        assert acc.id in result.recurrence_nodes

    def test_more_critical_recurrence_ordered_first(self):
        b = LoopBuilder("two")
        x = b.load(array=0)
        slow = b.div(x)
        b.loop_carried(slow, slow, distance=1)  # RecMII 17
        fast = b.add(x)
        b.loop_carried(fast, fast, distance=4)  # RecMII 1
        b.store(slow, array=1)
        b.store(fast, array=2)
        graph = b.build()
        result = hrms_order(graph, UNIFIED)
        assert result.order.index(slow.id) < result.order.index(fast.id)


class TestNeighbourProperty:
    """Property 2 of the ordering: preds XOR succs (Section 3.1)."""

    def test_daxpy_has_no_violations(self):
        graph = daxpy()
        result = hrms_order(graph, UNIFIED)
        assert ordering_property_violations(graph, result.order) == []

    def test_violations_bounded_by_recurrence_count(self):
        graph = reduction()
        result = hrms_order(graph, UNIFIED)
        violations = ordering_property_violations(graph, result.order)
        assert len(violations) <= len(find_recurrences(graph, UNIFIED))

    @settings(max_examples=40, deadline=None)
    @given(seed=graph_seeds, size=graph_sizes)
    def test_property_on_random_graphs(self, seed, size):
        graph = random_graph(seed, size)
        result = hrms_order(graph, UNIFIED)
        assert sorted(result.order) == sorted(graph.node_ids())
        violations = ordering_property_violations(graph, result.order)
        recurrences = find_recurrences(graph, UNIFIED)
        # Only recurrence-closing nodes may see both sides ordered, and
        # each recurrence closes at most once per circuit member set.
        allowed = sum(len(r.nodes) for r in recurrences)
        assert len(violations) <= max(allowed, 0)
        for violation in violations:
            assert any(violation in r.nodes for r in recurrences)
