"""Unit tests for the partial schedule and slot-window computation."""

import pytest

from repro import LoopBuilder, SchedulingError, parse_config
from repro.schedule.partial import PartialSchedule
from repro.schedule.slots import (
    Direction,
    dependence_window,
    find_free_slot,
    forced_cycle,
    violates_dependences,
)

from tests.helpers import UNIFIED


@pytest.fixture
def chain_graph():
    b = LoopBuilder("chain")
    x = b.load(array=0)
    y = b.add(x)
    z = b.mul(y)
    b.store(z, array=1)
    return b.build()


class TestPartialSchedule:
    def test_place_records_everything(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        node = chain_graph.node(0)
        schedule.place(node, 0, 7)
        assert schedule.is_scheduled(0)
        assert schedule.time(0) == 7
        assert schedule.cluster(0) == 0
        assert schedule.row(0) == 3
        assert schedule.prev_cycle[0] == 7

    def test_eject_keeps_prev_cycle(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        node = chain_graph.node(0)
        schedule.place(node, 0, 7)
        schedule.eject(0)
        assert not schedule.is_scheduled(0)
        assert schedule.prev_cycle[0] == 7
        with pytest.raises(SchedulingError):
            schedule.time(0)

    def test_eject_unscheduled_rejected(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        with pytest.raises(SchedulingError):
            schedule.eject(0)

    def test_placement_seq_tracks_order(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        a, b = chain_graph.node(0), chain_graph.node(1)
        schedule.place(a, 0, 0)
        schedule.place(b, 0, 1)
        assert schedule.placement_seq(a.id) < schedule.placement_seq(b.id)

    def test_rows_span_and_stages(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        schedule.place(chain_graph.node(0), 0, 0)
        schedule.place(chain_graph.node(1), 0, 4)
        schedule.place(chain_graph.node(2), 0, 9)
        assert schedule.nodes_in_row(0) == [0, 1] or set(
            schedule.nodes_in_row(0)
        ) == {0, 1}
        assert schedule.span() == (0, 9)
        assert schedule.stage_count() == 3

    def test_row_index_matches_brute_force(self):
        """The per-(row, cluster) index must agree with a full scan
        through arbitrary place/eject/forget sequences."""
        import random

        machine = parse_config("4-(GP2M1-REG32)")
        b = LoopBuilder("many")
        for i in range(24):
            b.add(b.load(array=i))
        graph = b.build()
        nodes = sorted(graph.nodes(), key=lambda n: n.id)
        rng = random.Random(1234)
        ii = 5
        schedule = PartialSchedule(machine, ii=ii)
        placed: dict[int, tuple[int, int]] = {}

        def brute(row, cluster=None):
            return [
                nid
                for nid, (t, c) in placed.items()
                if t % ii == row and (cluster is None or c == cluster)
            ]

        for _ in range(400):
            if placed and rng.random() < 0.45:
                victim = rng.choice(sorted(placed))
                if rng.random() < 0.2:
                    schedule.forget(victim)
                else:
                    schedule.eject(victim)
                del placed[victim]
            else:
                free = [n for n in nodes if n.id not in placed]
                if not free:
                    continue
                node = rng.choice(free)
                cluster = rng.randrange(machine.clusters)
                cycle = rng.randrange(4 * ii)
                try:
                    schedule.place(node, cluster, cycle)
                except SchedulingError:
                    continue  # MRT conflict: nothing changed
                placed[node.id] = (cycle, cluster)
            row = rng.randrange(ii)
            assert sorted(schedule.nodes_in_row(row)) == sorted(brute(row))
            for cluster in range(machine.clusters):
                assert sorted(schedule.nodes_in_row(row, cluster)) == sorted(
                    brute(row, cluster)
                )


class TestDependenceWindow:
    def test_unconstrained_node(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=5)
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert window.early is None and window.late is None
        assert window.direction is Direction.FORWARD
        assert list(window.candidates()) == [0, 1, 2, 3, 4]

    def test_early_start_from_scheduled_pred(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=5)
        schedule.place(chain_graph.node(0), 0, 3)  # load, latency 2
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert window.early == 5  # 3 + load latency
        assert window.direction is Direction.FORWARD
        assert window.stop == 5 + 5 - 1

    def test_late_start_from_scheduled_succ(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=5)
        schedule.place(chain_graph.node(2), 0, 20)  # the mul consumer
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        # add (latency 4) must finish before cycle 20.
        assert window.late == 16
        assert window.direction is Direction.BACKWARD
        assert list(window.candidates())[0] == 16

    def test_both_sides_window(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=8)
        schedule.place(chain_graph.node(0), 0, 0)
        schedule.place(chain_graph.node(2), 0, 12)
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert window.early == 2
        assert window.late == 8
        assert not window.empty

    def test_loop_carried_distance_relaxes_bound(self):
        b = LoopBuilder("rec")
        x = b.load(array=0)
        acc = b.add(x)
        b.loop_carried(acc, acc, distance=2)
        graph = b.build()
        schedule = PartialSchedule(UNIFIED, ii=3)
        schedule.place(graph.node(acc.id), 0, 10)
        window = dependence_window(graph, schedule, graph.node(x.id), UNIFIED)
        # x -> acc with latency 2 gives LateStart 8 ... the self edge on
        # acc does not involve x.
        assert window.late == 8

    def test_spill_distance_gauge_clamps_load(self):
        b = LoopBuilder("sp")
        x = b.load(array=0)
        y = b.add(x)
        graph = b.build()
        load = graph.node(x.id)
        load.is_spill = True
        schedule = PartialSchedule(UNIFIED, ii=16)
        schedule.place(graph.node(y.id), 0, 100)
        window = dependence_window(
            graph, schedule, load, UNIFIED, distance_gauge=4
        )
        # LateStart = 98 (latency 2); EarlyStart clamped to 98 - 4 = 94.
        assert window.late == 98
        assert window.early == 94


class TestFindFreeSlotAndForcing:
    def test_find_free_slot_respects_occupancy(self, chain_graph):
        machine = parse_config("1-(GP8M4-REG64)")
        schedule = PartialSchedule(machine, ii=1)
        # Fill all 4 memory ports in the single row.
        b = LoopBuilder("fill")
        fillers = [b.load(array=i) for i in range(4)]
        extra = b.load(array=9)
        graph = b.build()
        for filler in fillers:
            schedule.place(graph.node(filler.id), 0, 0)
        window = dependence_window(graph, schedule, graph.node(extra.id), machine)
        assert find_free_slot(schedule, graph.node(extra.id), 0, window) is None

    def test_forced_cycle_first_time_uses_anchor(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        schedule.place(chain_graph.node(0), 0, 0)
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert forced_cycle(schedule, chain_graph.node(1), window) == window.early

    def test_forced_cycle_advances_past_prev(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        schedule.place(chain_graph.node(0), 0, 0)
        schedule.prev_cycle[1] = 6
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert forced_cycle(schedule, chain_graph.node(1), window) == 7

    def test_backward_forcing_retreats(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        schedule.place(chain_graph.node(2), 0, 20)
        schedule.prev_cycle[1] = 10
        window = dependence_window(
            chain_graph, schedule, chain_graph.node(1), UNIFIED
        )
        assert window.direction is Direction.BACKWARD
        assert forced_cycle(schedule, chain_graph.node(1), window) == 9

    def test_violates_dependences(self, chain_graph):
        schedule = PartialSchedule(UNIFIED, ii=4)
        schedule.place(chain_graph.node(0), 0, 0)  # load latency 2
        schedule.place(chain_graph.node(1), 0, 1)  # too early!
        offenders = violates_dependences(chain_graph, schedule, 1, UNIFIED)
        assert offenders == [0]
