"""Unit tests for the Check_and_Insert_Spill heuristic."""

from repro import DepKind, LoopBuilder, parse_config
from repro.core.params import MirsParams
from repro.core.state import SchedulerState
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.spill.heuristics import (
    _get_or_create_store,
    _insert_load,
    _spill_once,
    check_and_insert_spill,
)

from tests.helpers import UNIFIED


def _long_lifetime_graph():
    """A value produced early and consumed very late: prime spill bait."""
    b = LoopBuilder("ll")
    x = b.load(array=0)
    mid = b.add(x)
    chain = mid
    for _ in range(4):
        chain = b.add(chain)
    late = b.add(chain, x)  # x used again, far from its definition
    b.store(late, array=1)
    return b.build(), x, late


def _state(graph, machine, ii=8):
    priorities = {n.id: float(100 - n.id) for n in graph.nodes()}
    return SchedulerState(graph, machine, ii, priorities, MirsParams())


def _place_chain(state, graph):
    cycle = 0
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        while not state.schedule.mrt.can_place(node, 0, cycle):
            cycle += 1
        state.schedule.place(node, 0, cycle)
        cycle += 4


class TestSpillTransforms:
    def test_store_created_once_and_reused(self):
        graph, x, late = _long_lifetime_graph()
        state = _state(graph, UNIFIED)
        state.schedule.place(graph.node(x.id), 0, 0)
        store1 = _get_or_create_store(state, x.id)
        store2 = _get_or_create_store(state, x.id)
        assert store1.id == store2.id
        assert store1.is_spill
        assert store1.spilled_value == x.id
        assert state.stats.spill_stores_added == 1

    def test_insert_load_wires_memory_chain(self):
        graph, x, late = _long_lifetime_graph()
        state = _state(graph, UNIFIED)
        state.schedule.place(graph.node(x.id), 0, 0)
        store = _get_or_create_store(state, x.id)
        load = _insert_load(
            state, store, x.id, late.id, 2, store.mem_ref
        )
        mem_edges = [
            e for e in graph.out_edges(store.id) if e.kind is DepKind.MEM
        ]
        assert len(mem_edges) == 1
        assert mem_edges[0].dst == load.id
        assert mem_edges[0].distance == 2
        reg_edges = graph.out_edges(load.id)
        assert reg_edges[0].dst == late.id

    def test_spill_nodes_enter_priority_list(self):
        graph, x, late = _long_lifetime_graph()
        state = _state(graph, UNIFIED)
        state.schedule.place(graph.node(x.id), 0, 0)
        store = _get_or_create_store(state, x.id)
        load = _insert_load(state, store, x.id, late.id, 0, store.mem_ref)
        assert store.id in state.pl
        assert load.id in state.pl

    def test_budget_grows_per_inserted_node(self):
        graph, x, late = _long_lifetime_graph()
        state = _state(graph, UNIFIED)
        before = state.budget
        state.schedule.place(graph.node(x.id), 0, 0)
        store = _get_or_create_store(state, x.id)
        _insert_load(state, store, x.id, late.id, 0, store.mem_ref)
        assert state.budget == before + 2 * state.params.budget_ratio


class TestSpillSelection:
    def test_spill_once_picks_long_segment(self):
        graph, x, late = _long_lifetime_graph()
        machine = parse_config("1-(GP8M4-REG4)")
        state = _state(graph, machine, ii=4)
        _place_chain(state, graph)
        analysis = LifetimeAnalysis(graph, state.schedule, machine)
        assert _spill_once(state, 0, analysis)
        # The spilled use is x's late consumer: x -> late replaced.
        assert late.id not in graph.succs(x.id) or state.stats.spill_loads_added

    def test_nothing_to_spill_returns_false(self):
        b = LoopBuilder("tiny")
        x = b.load(array=0)
        b.store(x, array=1)
        graph = b.build()
        machine = parse_config("1-(GP8M4-REG4)")
        state = _state(graph, machine, ii=2)
        state.schedule.place(graph.node(x.id), 0, 0)
        state.schedule.place(graph.node(1), 0, 2)
        analysis = LifetimeAnalysis(graph, state.schedule, machine)
        assert not _spill_once(state, 0, analysis)

    def test_check_respects_spill_gauge(self):
        graph, x, late = _long_lifetime_graph()
        machine = parse_config("1-(GP8M4-REG64)")  # plenty of registers
        state = _state(graph, machine, ii=8)
        _place_chain(state, graph)
        assert not check_and_insert_spill(state)  # nothing to do
        assert state.stats.spill_loads_added == 0

    def test_check_unbounded_registers_noop(self):
        graph, _, _ = _long_lifetime_graph()
        machine = parse_config("1-(GP8M4-REGinf)")
        state = _state(graph, machine, ii=4)
        _place_chain(state, graph)
        assert not check_and_insert_spill(state, final=True)

    def test_min_span_gauge_blocks_short_segments(self):
        graph, x, late = _long_lifetime_graph()
        machine = parse_config("1-(GP8M4-REG4)")
        params = MirsParams(min_span_gauge=10_000)
        priorities = {n.id: float(100 - n.id) for n in graph.nodes()}
        state = SchedulerState(graph, machine, 4, priorities, params)
        _place_chain(state, graph)
        analysis = LifetimeAnalysis(graph, state.schedule, machine)
        assert not _spill_once(state, 0, analysis)


class TestInvariantSpill:
    def test_invariant_spilled_via_load_when_single_cluster(self):
        b = LoopBuilder("inv")
        u = b.add()
        nodes = [u]
        for _ in range(3):
            nodes.append(b.add(nodes[-1]))
        inv = b.invariant("c")
        inv.consumers.add(u.id)
        graph = b.build()
        machine = parse_config("1-(GP8M4-REG2)")
        state = _state(graph, machine, ii=4)
        _place_chain(state, graph)
        analysis = LifetimeAnalysis(graph, state.schedule, machine)
        if _spill_once(state, 0, analysis):
            loads = [
                n for n in graph.nodes() if n.load_of_invariant == inv.id
            ]
            if loads:
                assert (inv.id, 0) in state.spilled_invariants
                assert u.id not in inv.consumers
