#!/usr/bin/env python3
"""Statically certify an emitted software pipeline - no simulation.

Schedules a kernel, emits the pipeline (prologue / MVE-unrolled kernel /
epilogue), then proves bundle-level legality with the static certifier
of ``repro.analysis``: reaching definitions and liveness over the
renamed registers, latency respect across the kernel back-edge,
per-bundle resource fits, cross-cluster reads only through moves, and
the stage-count replication invariant.  The proof covers *every*
iteration of the loop, at a cost independent of the trip count - where
the differential simulator pays per executed cycle.

The second half of the script then breaks the code on purpose (the
copy-label shift bug a hand-written emitter is prone to) and shows the
certifier naming the defect statically.

Run with::

    python examples/certify_pipeline.py
"""

import dataclasses
import re

from repro import LoopBuilder, MirsC, certify_code, parse_config
from repro.codegen import generate_code
from repro.eval.reporting import render_table


def build_kernel():
    b = LoopBuilder("saxpy2", trip_count=256)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    t = b.mul(x, a)
    s = b.add(t, y)
    b.store(s, array=2)
    return b.build()


def sabotage_copy_labels(code):
    """Re-seed the classic emitter bug: kernel copy labels shifted so
    the kernel's first pass reads renamed registers the prologue never
    wrote (wrong whenever (SC-1) % MVE != 0)."""
    mve = code.mve_factor
    shift = code.stage_count - 1

    def rename(name):
        return re.sub(
            r"\.k(\d+)",
            lambda m: f".k{(int(m.group(1)) - shift) % mve}",
            name,
        )

    def rewrite(bundles):
        return [
            [
                dataclasses.replace(
                    inst,
                    dest=rename(inst.dest) if inst.dest else inst.dest,
                    sources=tuple(rename(s) for s in inst.sources),
                )
                for inst in bundle
            ]
            for bundle in bundles
        ]

    return dataclasses.replace(
        code, kernel=rewrite(code.kernel), epilogue=rewrite(code.epilogue)
    )


def main() -> None:
    graph = build_kernel()
    rows = []
    for config in ("1-(GP8M4-REG64)", "2-(GP4M2-REG32)", "4-(GP2M1-REG16)"):
        machine = parse_config(config)
        result = MirsC(machine).schedule(graph.clone())
        code = generate_code(result)
        report = certify_code(code, result)
        rows.append(
            [
                machine.name,
                report.ii,
                f"{report.stage_count}/{report.mve_factor}",
                report.bundles_checked,
                report.reads_checked,
                report.passes_checked,
                "CERTIFIED" if report.ok else "REJECTED",
            ]
        )
    print(
        render_table(
            "Statically certifying saxpy2 (all 256 iterations, no simulation)",
            [
                "config", "II", "SC/MVE", "bundles", "reads",
                "fixpoint passes", "verdict",
            ],
            rows,
            "every register read proven reached by the right definition; "
            "latencies, resources and cluster locality checked per bundle.",
        )
    )

    # Now break the code the way a hand-written emitter would and let
    # the certifier name the bug - no execution, no reference run.
    machine = parse_config("1-(GP8M4-REG64)")
    result = MirsC(machine).schedule(graph.clone())
    broken = sabotage_copy_labels(generate_code(result))
    report = certify_code(broken, result)
    print()
    print("After shifting every kernel copy label (the classic emitter bug):")
    print(f"  verdict: {'CERTIFIED' if report.ok else 'REJECTED'}")
    for violation in report.violations[:4]:
        print(f"  {violation.render()}")
    if len(report.violations) > 4:
        print(f"  ... and {len(report.violations) - 4} more")
    assert not report.ok, "the sabotaged pipeline must be rejected"


if __name__ == "__main__":
    main()
