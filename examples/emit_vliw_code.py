#!/usr/bin/env python3
"""Emit actual software-pipelined VLIW code (paper step 7).

Schedules a small kernel and prints the complete pipeline: prologue,
modulo-variable-expanded kernel, and epilogue, with allocated register
names and inter-cluster moves.

Run with::

    python examples/emit_vliw_code.py
"""

from repro import LoopBuilder, MirsC, parse_config
from repro.codegen import generate_code


def build_kernel():
    b = LoopBuilder("saxpy2", trip_count=256)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    t = b.mul(x, a)
    s = b.add(t, y)
    b.store(s, array=2)
    return b.build()


def main() -> None:
    graph = build_kernel()
    machine = parse_config("2-(GP4M2-REG32)")
    result = MirsC(machine).schedule(graph)
    code = generate_code(result)
    print(code.render())
    print()
    print(
        f"kernel pass = {code.kernel_cycles} cycles "
        f"(II={code.ii} x MVE {code.mve_factor}); "
        f"{code.stage_count} stages; "
        f"{len(code.all_instructions())} instruction instances emitted"
    )


if __name__ == "__main__":
    main()
