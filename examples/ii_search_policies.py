"""Compare II-search policies on a register-starved configuration.

The paper's driver climbs the II one step per failed attempt (Figure 4,
step (6)).  This example schedules a few workbench loops on a tight
register file under all three II-search policies and prints what each
search did: the II it accepted, how many attempts it spent, and the
failure kinds along the way (the full trace every result carries in
``stats.search_trace``).
"""

from collections import Counter

from repro import MirsC, parse_config
from repro.workloads.perfect import cached_suite

machine = parse_config("2-(GP4M2-REG16)")
loops = cached_suite(6)

for search in ("linear", "geometric", "bisection"):
    engine = MirsC(machine, strict=False, search=search)
    print(f"--- {search} ---")
    for loop in loops:
        result = engine.schedule(loop.graph)
        trace = result.stats.search_trace
        kinds = Counter(entry["kind"] for entry in trace)
        status = f"II={result.ii}" if result.converged else "not converged"
        print(
            f"{loop.graph.name:>12}: {status:<8} (MII={result.mii}) "
            f"attempts={len(trace)} kinds={dict(kinds)}"
        )
    print()

print(
    "The linear ladder is the paper-exact default; geometric jumps by "
    "the measured register deficit and finds the same II with fewer "
    "attempts on pressure-bound loops; bisection spends O(log) attempts "
    "at some cost in schedule quality on jagged landscapes."
)
