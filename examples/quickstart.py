#!/usr/bin/env python3
"""Quickstart: schedule a DAXPY-like loop on unified and clustered cores.

The loop is the motivating kernel of every software-pipelining paper::

    for i in range(n):
        y[i] = a * x[i] + y[i]

Run with::

    python examples/quickstart.py
"""

from repro import LoopBuilder, Mirs, MirsC, parse_config
from repro.eval.pretty import format_kernel


def build_daxpy():
    b = LoopBuilder("daxpy", trip_count=1000)
    x = b.load(array=0)  # x[i]
    y = b.load(array=1)  # y[i]
    a = b.invariant("a")  # loop-invariant scalar, held in a register
    ax = b.mul(x, a)
    total = b.add(ax, y)
    b.store(total, array=1)  # y[i] = ...
    return b.build()


def main() -> None:
    graph = build_daxpy()

    unified = parse_config("1-(GP8M4-REG64)")
    result = Mirs(unified).schedule(graph)
    print(format_kernel(result))
    print()

    clustered = parse_config("4-(GP2M1-REG16)", move_latency=1)
    result_c = MirsC(clustered).schedule(graph)
    print(format_kernel(result_c))
    print()

    print(
        f"unified II={result.ii}, clustered II={result_c.ii}, "
        f"moves inserted={result_c.move_operations}, "
        f"spills={result_c.spill_operations}"
    )


if __name__ == "__main__":
    main()
