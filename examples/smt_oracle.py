"""Exact scheduling as an optimality oracle: prove the heuristic's II.

MIRS-C is a heuristic — it finds *a* schedule, with no claim the II is
the smallest possible.  ``scheduler="smt"`` answers the question the
heuristic cannot: it solves each fixed-II decision problem *exactly*,
ascending from MII, so its first feasible point arrives with UNSAT
certificates for every II below it — a machine-checked proof of
minimality.  Comparing the two yields the optimality gap.

This script schedules saxpy (lowered from real source, like
``frontend_saxpy.py``) with both backends on the unified reference
machine, prints each result's II, the exact backend's certificate
ledger, and the gap.  It runs on the built-in exact CSP engine
(``engine="native"``) so no optional solver install is needed; with
``z3-solver`` installed, ``engine="auto"`` would pick z3 instead.
"""

import pathlib
import tempfile

from repro import MirsParams, ScheduleRequest, parse_config
from repro.core.params import SmtParams
from repro.frontend import lower_source
from repro.sim import run_differential
from repro.smt.problem import relaxation_covers

SOURCE = """\
def saxpy(a, x, y, n):
    for i in range(n):
        y[i] = a * x[i] + y[i]
"""

with tempfile.TemporaryDirectory() as tmp:
    path = pathlib.Path(tmp) / "saxpy.py"
    path.write_text(SOURCE)
    [kernel] = lower_source(path)

machine = parse_config("1-(GP8M4-REG64)")

# 1. The heuristic: fast, but its II is only an upper bound.
heuristic = ScheduleRequest(scheduler="mirsc").make_scheduler(
    machine
).schedule(kernel.graph.clone())
print(f"heuristic  : II={heuristic.ii} (MII={heuristic.mii}, "
      f"{heuristic.total_registers_used} registers)")

# 2. The oracle: every II below the answer comes with a certificate.
params = MirsParams(smt=SmtParams(engine="native"))
exact = ScheduleRequest(scheduler="smt", params=params).make_scheduler(
    machine
).schedule(kernel.graph.clone())
oracle = exact.oracle
print(f"exact      : II={exact.ii} ({oracle['status']}, "
      f"engine={oracle['engine']}, "
      f"proven lower bound II={oracle['proven_lower_ii']})")
for cert in oracle["certificates"]:
    what = {
        "mii": "analytic ResMII/RecMII argument covers everything below",
        "unsat": f"no schedule exists (proven in {cert['steps']} steps)",
        "sat": "feasible",
    }.get(cert["verdict"], cert["verdict"])
    print(f"  II={cert['ii']:>3}  {cert['verdict']:>5}  {what}")

# 3. The exact schedule is a real program, not just a bound: it must
#    execute bit-for-bit like the scalar reference interpreter.
diff = run_differential(exact, 32)
assert diff.match, diff.summary()
print(f"differential: {diff.summary()}")

# 4. The optimality gap — the number the nightly benchmark publishes
#    for every workbench and corpus loop.
covered, why = relaxation_covers(heuristic)
if not covered:
    print(f"gap        : n/a (heuristic result outside the exact model: {why})")
else:
    gap = heuristic.ii - oracle["proven_lower_ii"]
    assert gap >= 0, "a covered heuristic II below a proven bound is a bug"
    verdict = "optimal — the heuristic cannot do better" if gap == 0 else (
        f"{gap} cycle(s) above the proven minimum"
    )
    print(f"gap        : {gap} ({verdict})")
