"""Race candidate IIs concurrently - and get the serial answer.

A failed scheduling attempt at one II tells the paper's driver nothing
about the next one: each attempt is an independent feasibility query.
``--speculation K`` (or ``MirsParams(speculation=K)``, or
``REPRO_SPECULATION=K``) races K candidate IIs from the active search
policy over worker processes; the first verified-feasible II cancels
every strictly-higher candidate still in flight, and the committed
schedule is deterministically the lowest feasible II - bit-identical
(fingerprint-equal) to the serial search, for every K and every policy.

This example schedules a few workbench loops on a register-starved
machine serially and at K=4, checks the fingerprints match, and prints
the race's typed ledger from ``stats.search``
(:class:`repro.obs.SearchStats`).
"""

import os

from repro import MirsC, parse_config
from repro.exec import result_fingerprint
from repro.workloads.perfect import cached_suite

machine = parse_config("2-(GP4M2-REG16)")
loops = cached_suite(4)

print(f"host cpus: {os.cpu_count()} (racing K attempts needs K cores "
      "to pay off in wall-clock; the answer is identical regardless)\n")

for loop in loops:
    serial = MirsC(machine, strict=False, speculation=1).schedule(
        loop.graph.clone()
    )
    raced = MirsC(machine, strict=False, speculation=4).schedule(
        loop.graph.clone()
    )
    identical = result_fingerprint(raced) == result_fingerprint(serial)
    stats = raced.stats.search
    status = f"II={raced.ii}" if raced.converged else "not converged"
    print(
        f"{loop.graph.name:>12}: {status:<8} "
        f"serial_attempts={stats.serial_attempts} "
        f"executed={stats.executed_attempts} "
        f"cancelled={stats.cancelled} "
        f"fingerprint_identical={identical}"
    )
    assert identical, loop.graph.name
    # Losers are provably cancelled: the race never executes more than
    # the serial ladder's attempts plus the frontier width.
    assert stats.executed_attempts < stats.serial_attempts + 4

print(
    "\nEvery K=4 schedule reproduced the serial one bit for bit; the "
    "race only changes wall-clock time and the stats.search ledger."
)
