#!/usr/bin/env python3
"""A DSP workload on a TI-TMS320C6x-style 2-cluster VLIW.

The TMS320C6x (cited by the paper as a commercial clustered design) has
two clusters of four units sharing a small register file per side with a
cross-path between them.  We model its shape with the paper's
2-(GP4M2-REGz) configuration and schedule two classic DSP kernels:

* a complex multiply-accumulate (cMAC) loop - the core of an FFT
  butterfly / complex FIR,
* a biquad IIR filter section - a loop with a genuine cross-iteration
  recurrence that limits the achievable II.

The example compares MIRS-C against the non-iterative baseline [31] on
both, showing where the integrated approach wins: the cMAC loop is
communication-bound (many values cross clusters), the IIR loop is
recurrence-bound (backtracking must not stretch the recurrence).

Run with::

    python examples/clustered_dsp.py
"""

from repro import LoopBuilder, MirsC, NonIterativeScheduler, parse_config
from repro.eval.pretty import format_kernel


def build_cmac():
    """Complex multiply-accumulate: acc += x[i] * w[i] (complex)."""
    b = LoopBuilder("cmac", trip_count=512)
    xr = b.load(array=0)  # Re(x[i])
    xi = b.load(array=1)  # Im(x[i])
    wr = b.load(array=2)  # Re(w[i])
    wi = b.load(array=3)  # Im(w[i])
    # (xr + j xi) * (wr + j wi)
    rr = b.mul(xr, wr)
    ii_ = b.mul(xi, wi)
    ri = b.mul(xr, wi)
    ir = b.mul(xi, wr)
    real = b.add(rr, ii_)  # with the sign folded into the add unit
    imag = b.add(ri, ir)
    acc_r = b.add(real)
    acc_i = b.add(imag)
    b.loop_carried(acc_r, acc_r, distance=1)  # accumulators
    b.loop_carried(acc_i, acc_i, distance=1)
    b.store(acc_r, array=4)
    b.store(acc_i, array=5)
    return b.build()


def build_biquad():
    """Direct-form-II biquad: a 2-deep recurrence through the filter state."""
    b = LoopBuilder("biquad", trip_count=2048)
    x = b.load(array=0)
    a1 = b.invariant("a1")
    a2 = b.invariant("a2")
    b0 = b.invariant("b0")
    b1 = b.invariant("b1")
    b2 = b.invariant("b2")
    # w[n] = x[n] - a1*w[n-1] - a2*w[n-2]
    t1 = b.mul(a1)
    t2 = b.mul(a2)
    s1 = b.add(x, t1)
    w = b.add(s1, t2)
    b.loop_carried(w, t1, distance=1)
    b.loop_carried(w, t2, distance=2)
    # y[n] = b0*w[n] + b1*w[n-1] + b2*w[n-2]
    u0 = b.mul(w, b0)
    u1 = b.mul(b1)
    u2 = b.mul(b2)
    b.loop_carried(w, u1, distance=1)
    b.loop_carried(w, u2, distance=2)
    y1 = b.add(u0, u1)
    y = b.add(y1, u2)
    b.store(y, array=1)
    return b.build()


def compare(graph, machine) -> None:
    ours = MirsC(machine).schedule(graph)
    base = NonIterativeScheduler(machine).schedule(graph)
    print(format_kernel(ours))
    base_ii = base.ii if base.converged else "n/a (did not converge)"
    print(
        f"-> MIRS-C II={ours.ii} vs [31] II={base_ii}; "
        f"moves={ours.move_operations}, spills={ours.spill_operations}, "
        f"registers={ours.register_usage}"
    )
    print()


def main() -> None:
    machine = parse_config("2-(GP4M2-REG16)", move_latency=1)
    print(f"target: {machine.name} (TMS320C6x-shaped)\n")
    compare(build_cmac(), machine)
    compare(build_biquad(), machine)


if __name__ == "__main__":
    main()
