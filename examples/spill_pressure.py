#!/usr/bin/env python3
"""Integrated spilling in action: a register-starved matrix kernel.

Builds a blocked rank-1 update (many simultaneously live values) and
schedules it on a machine with a deliberately tiny register file.  The
non-iterative baseline [31] can only react by inflating the II - and on
the tightest file it cannot converge at all - while MIRS-C inserts spill
code *during* scheduling and keeps the II close to the unconstrained
minimum.

Run with::

    python examples/spill_pressure.py
"""

from repro import (
    LoopBuilder,
    MirsC,
    NonIterativeScheduler,
    parse_config,
)
from repro.eval.reporting import render_table


def build_rank1(width: int = 8):
    """A two-pass block kernel whose first-pass values are reused late.

    Pass 1 computes `width` products; pass 2 re-reads every product after
    a long reduction chain, so each product stays live for most of the
    loop body - exactly the long lifetimes that make spilling profitable.
    """
    b = LoopBuilder("rank1", trip_count=400)
    x = b.load(array=0)
    products = []
    for j in range(width):
        col = b.load(array=1 + j)
        products.append(b.mul(col, x))
    # A long serial reduction keeps the schedule deep...
    acc = products[0]
    for prod in products[1:]:
        acc = b.add(acc, prod)
    # ...and a second pass re-uses every product at the very end, so all
    # `width` values cross most of the schedule.
    late = acc
    for prod in products:
        late = b.add(late, prod)
    total = b.add(late)
    b.loop_carried(total, total, distance=1)
    b.store(total, array=100)
    return b.build()


def main() -> None:
    graph = build_rank1()
    rows = []
    for regs in (64, 32, 16, 12):
        machine = parse_config(f"1-(GP8M4-REG{regs})")
        ours = MirsC(machine).schedule(graph)
        base = NonIterativeScheduler(machine).schedule(graph)
        rows.append(
            [
                regs,
                ours.ii,
                ours.spill_operations,
                ours.memory_traffic,
                base.ii if base.converged else "not converged",
                max(ours.register_usage.values()),
            ]
        )
    print(
        render_table(
            "Integrated spilling vs II inflation (rank-1 update kernel)",
            [
                "registers", "MIRS-C II", "spill ops",
                "mem traffic/iter", "[31] II", "regs used",
            ],
            rows,
            "MIRS-C converts register shortage into spill traffic at a "
            "nearly flat II; [31] must stretch the whole loop instead.",
        )
    )


if __name__ == "__main__":
    main()
