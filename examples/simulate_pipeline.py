#!/usr/bin/env python3
"""Execute generated VLIW code and watch the pipeline actually run.

Schedules a kernel, emits the software pipeline (prologue / MVE-unrolled
kernel / epilogue), then *executes* it on the cycle-accurate simulator of
``repro.sim``: per-cluster register files, a lockup-free cache producing
observed stall cycles, and a bit-for-bit differential check against the
scalar reference interpretation of the dependence graph.

Run with::

    python examples/simulate_pipeline.py
"""

from repro import LoopBuilder, MirsC, parse_config
from repro.eval.reporting import render_table
from repro.memsim.stall import MemoryModel
from repro.sim import run_differential

ITERATIONS = 200


def build_kernel():
    b = LoopBuilder("saxpy2", trip_count=256)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    t = b.mul(x, a)
    s = b.add(t, y)
    b.store(s, array=2)
    return b.build()


def main() -> None:
    graph = build_kernel()
    rows = []
    memory = MemoryModel()
    for config in ("1-(GP8M4-REG64)", "2-(GP4M2-REG32)", "4-(GP2M1-REG16)"):
        machine = parse_config(config)
        result = MirsC(machine).schedule(graph.clone())
        report = run_differential(result, ITERATIONS)
        sim = report.simulation
        analytic = memory.evaluate(result, iterations=sim.iterations)
        rows.append(
            [
                machine.name,
                sim.ii,
                f"{sim.stage_count}/{sim.mve_factor}",
                sim.useful_cycles,
                sim.stall_cycles,
                round(analytic.stall_cycles),
                round(sim.ipc, 2),
                round(sim.bus_occupancy, 2),
                "MATCH" if report.match else "MISMATCH",
            ]
        )
    print(
        render_table(
            f"Executing saxpy2 for {ITERATIONS} iterations",
            [
                "config", "II", "SC/MVE", "useful", "stall (sim)",
                "stall (model)", "IPC", "bus occ", "vs reference",
            ],
            rows,
            "useful cycles = II*(N+SC-1) by construction; the simulator "
            "observes stalls the analytic model only predicts.",
        )
    )


if __name__ == "__main__":
    main()
