"""Trace a schedule and read the story back.

Every layer of the scheduler stack reports into a
:class:`repro.obs.Tracer`: ``MirsC.schedule`` wraps each run in a
``schedule`` span tiled by ``phase.prepare``/``phase.search``/
``phase.finalize``, every fixed-II attempt gets an ``attempt`` span
(outcome kind, ejections, spills, pressure/allocator query counts),
the speculative race emits launch/verify/cancel/commit instants, and
the allocator engines mark attach/detach and idle-valve transitions.

Tracing is off by default (a shared no-op ``NullTracer``; the
benchmark suite gates its overhead below 2%).  Turn it on by passing a
``RecordingTracer``, by exporting ``REPRO_TRACE=/path/trace.jsonl``,
or with the CLI's ``--trace PATH``.

This example schedules a register-starved workbench loop serially and
at K=2 speculation, exports the trace as JSONL plus Chrome trace-event
JSON (drop it into Perfetto / ``chrome://tracing``), validates both
against the committed schema, and prints the same per-phase breakdown
``python -m repro trace summary`` renders.
"""

import tempfile
from pathlib import Path

from repro import MirsC, RecordingTracer, parse_config
from repro.obs.export import (
    chrome_path_for,
    chrome_payload,
    validate_chrome,
    validate_trace_file,
    write_chrome,
    write_jsonl,
)
from repro.obs.summary import summarize_file
from repro.workloads.perfect import cached_suite

machine = parse_config("2-(GP4M2-REG16)")
loop = cached_suite(6)[5].graph

tracer = RecordingTracer()
serial = MirsC(machine, strict=False, tracer=tracer).schedule(loop.clone())
raced = MirsC(machine, strict=False, speculation=2, tracer=tracer).schedule(
    loop.clone()
)
assert raced.ii == serial.ii  # tracing and speculation change nothing

out = Path(tempfile.mkdtemp(prefix="repro-trace-")) / "trace.jsonl"
write_jsonl(tracer, out)
write_chrome(tracer, chrome_path_for(out))
assert validate_trace_file(out) == []
assert validate_chrome(chrome_payload(tracer)) == []

summary = summarize_file(out)
print(summary.render())
print(
    f"\nwrote {out} (+ {chrome_path_for(out).name}); the phases cover "
    f"{summary.phase_coverage:.1%} of the {summary.span_counts['schedule']} "
    "schedule spans, and the race ledger rides along as counter events."
)
assert summary.phase_coverage > 0.9
assert len(summary.attempts) >= 2
