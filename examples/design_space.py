#!/usr/bin/env python3
"""Design-space exploration: how should you spend your silicon?

The paper's headline architectural result (Figures 5 and 7) is that a
*clustered* register organisation with the same total resources wins on
execution time even though it loses on cycles, because the small
register files cycle faster.  This example runs the same exploration on
a small workbench sample: k in {1, 2, 4} x registers/cluster in
{16, 32, 64, 128}, reporting cycles, cycle time and execution time.

Run with::

    python examples/design_space.py [num_loops]

(``REPRO_BENCH_LOOPS`` overrides the default subset size, as in the
benchmarks - the CI examples smoke job uses it to stay quick.)
"""

import sys

from repro import MirsC, TechnologyModel, paper_configuration
from repro.eval.reporting import render_table
from repro.eval.runner import bench_loop_count
from repro.workloads.perfect import cached_suite


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else bench_loop_count(8)
    loops = cached_suite(count)
    technology = TechnologyModel()

    rows = []
    best = None
    for k in (1, 2, 4):
        for z in (16, 32, 64, 128):
            machine = paper_configuration(k, z)
            cycles = 0
            for loop in loops:
                result = MirsC(machine).schedule(loop.graph)
                cycles += result.execution_cycles
            cycle_ns = technology.cycle_time_ns(machine)
            time_ms = cycles * cycle_ns / 1e6
            rows.append(
                [machine.name, cycles, round(cycle_ns, 3), round(time_ms, 3)]
            )
            if best is None or time_ms < best[1]:
                best = (machine.name, time_ms)

    print(
        render_table(
            f"Design space over {count} workbench loops",
            ["config", "exec cycles", "cycle time (ns)", "exec time (ms)"],
            rows,
            f"fastest configuration: {best[0]} "
            "(the paper's sweet spot is 64 registers in total)",
        )
    )


if __name__ == "__main__":
    main()
