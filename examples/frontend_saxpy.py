"""Schedule real code: saxpy from Python source to a certified pipeline.

The frontend (:mod:`repro.frontend`) closes the gap between source
programs and the scheduler: it parses a Python loop nest with the
stdlib ``ast`` module (no dependencies; a tree-sitter C parser
registers itself when that package exists), classifies every name,
runs an exact single-subscript memory dependence test, and lowers the
body to the same :class:`~repro.graph.ddg.DependenceGraph` the
workbench loops use — real loop-carried distances included, so RecMII
is computed from the program, not defaulted.

This script walks the whole pipeline for a saxpy kernel written as
ordinary source text: parse -> analyze -> lower -> schedule -> emit ->
statically certify -> validate bit-for-bit against direct execution of
the source loop (the README's "Scheduling real code" section follows
this file).
"""

import pathlib
import tempfile

from repro import ScheduleRequest, generate_code, parse_config
from repro.analysis import certify_code
from repro.eval.pretty import format_kernel
from repro.frontend import lower_source
from repro.frontend.differential import run_source_differential

SOURCE = """\
def saxpy(a, x, y, n):
    for i in range(n):
        y[i] = a * x[i] + y[i]
"""

# 1. Parse and lower.  Any file a registered parser understands works;
#    here the kernel is written to a scratch file to show the full path.
with tempfile.TemporaryDirectory() as tmp:
    path = pathlib.Path(tmp) / "saxpy.py"
    path.write_text(SOURCE)
    [kernel] = lower_source(path)

print(f"kernel {kernel.name}: {len(kernel.graph)} ops, "
      f"arrays={list(kernel.arrays)}, invariants={list(kernel.invariants)}")
for dep in kernel.mem_deps:
    # The read of y[i] must happen before the write of y[i] in the same
    # iteration: an exact distance-0 anti dependence, not a guess.
    print(f"  memory dependence: {dep.describe()}")

# 2. Schedule the lowered graph like any workbench loop.
machine = parse_config("1-(GP8M4-REG64)")
result = ScheduleRequest().make_scheduler(machine).schedule(kernel.graph)
print()
print(format_kernel(result))
print()
print(result.summary())

# 3. Emit the VLIW pipeline and prove it statically.
code = generate_code(result)
report = certify_code(code, result)
print(f"\ncertifier: {'ok' if report.ok else 'REJECTED'} "
      f"({report.bundles_checked} bundles, {report.reads_checked} reads)")
assert report.ok, report.summary()

# 4. The end-to-end proof: source semantics == lowered graph ==
#    emitted code, bit for bit, over 32 iterations.
diff = run_source_differential(kernel, result, 32, cache=False)
print(f"differential: {diff.summary()}")
assert diff.match, diff.summary()
