#!/usr/bin/env python3
"""Binding prefetching: trading registers for memory stalls (Section 4.3).

Schedules a cache-unfriendly strided kernel twice on each configuration:
once with loads at hit latency (the processor stalls on every miss) and
once with selective binding prefetching (loads scheduled at miss
latency - no stalls, but much longer lifetimes and so more register
pressure).  Clustered configurations, whose registers are cheap, can
afford the pressure; that is the paper's closing argument for clustering.

Run with::

    python examples/prefetch_tradeoff.py
"""

from repro import LoopBuilder, MirsC, TechnologyModel, paper_configuration
from repro.eval.reporting import render_table
from repro.memsim.prefetch import apply_binding_prefetch
from repro.memsim.stall import MemoryModel


def build_strided():
    """A gather-style kernel whose loads miss often (large strides)."""
    b = LoopBuilder("gather", trip_count=4096)
    total = None
    for j in range(4):
        v = b.load(array=j, stride=16)  # 16 doubles = 4 lines apart
        w = b.load(array=10 + j, stride=1)
        prod = b.mul(v, w)
        total = prod if total is None else b.add(total, prod)
    b.store(total, array=20)
    return b.build()


def main() -> None:
    graph = build_strided()
    technology = TechnologyModel()
    memory = MemoryModel(technology)

    rows = []
    for k, z in ((1, 64), (2, 64), (4, 32)):
        machine = paper_configuration(k, z)
        for mode in ("normal", "prefetch"):
            if mode == "prefetch":
                scheduled_graph = apply_binding_prefetch(
                    graph, machine, technology
                )
            else:
                scheduled_graph = graph
            result = MirsC(machine).schedule(scheduled_graph)
            report = memory.evaluate(result)
            time_ms = technology.execution_time_ns(
                machine, report.total_cycles
            ) / 1e6
            rows.append(
                [
                    machine.name,
                    mode,
                    result.ii,
                    max(result.register_usage.values()),
                    round(report.useful_cycles / 1e3, 1),
                    round(report.stall_cycles / 1e3, 1),
                    round(time_ms, 3),
                ]
            )

    print(
        render_table(
            "Selective binding prefetching on a strided kernel",
            [
                "config", "mode", "II", "regs used",
                "useful (kcyc)", "stall (kcyc)", "time (ms)",
            ],
            rows,
            "Prefetching eliminates stalls but inflates register usage; "
            "clustered machines absorb it without slowing their clock.",
        )
    )


if __name__ == "__main__":
    main()
