"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and registers
its rendered table here; a terminal-summary hook prints every table at
the end of the run (so ``pytest benchmarks/ --benchmark-only`` output
contains the actual experiment rows, not only the timings), and a copy is
written to ``benchmarks/results/<name>.txt``.

The benchmarks run through the suite-execution engine
(:mod:`repro.exec`): one session-scoped :class:`SuiteExecutor` serves
every driver, so identical (machine, params, loop) problems are
scheduled once and memoized on disk under ``benchmarks/.repro-cache``
(override with ``REPRO_CACHE_DIR``; disable with ``REPRO_NO_CACHE=1``).
``REPRO_JOBS=<n>`` shards the scheduling over ``n`` worker processes.
At the end of the session the executor's per-suite history is written to
``benchmarks/results/BENCH_suite.json`` — machine-readable II / traffic
/ timing totals that successive commits can diff for perf trajectory.

Subset size: the full paper-scale run uses all 1258 workbench loops; by
default the benchmarks use small, family-balanced subsets so the whole
suite completes in minutes.  Set ``REPRO_BENCH_LOOPS=<n>`` to scale up.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.eval.runner import bench_loop_count
from repro.exec import ResultCache, SuiteExecutor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_BENCH_CACHE = pathlib.Path(__file__).parent / ".repro-cache"

_tables: dict[str, str] = {}
_executor: SuiteExecutor | None = None


def _session_executor() -> SuiteExecutor:
    """The one executor shared by every benchmark in the session."""
    global _executor
    if _executor is None:
        if os.environ.get("REPRO_NO_CACHE"):
            cache: ResultCache | bool = False
        elif os.environ.get("REPRO_CACHE_DIR"):
            cache = True  # honour the explicit directory
        else:
            cache = ResultCache(DEFAULT_BENCH_CACHE)
        _executor = SuiteExecutor(cache=cache)
    return _executor


@pytest.fixture
def executor() -> SuiteExecutor:
    """The session's shared suite executor (jobs/cache from the env)."""
    return _session_executor()


@pytest.fixture
def table_sink():
    """Callable fixture: benchmarks pass (name, rendered table text)."""

    def sink(name: str, text: str) -> None:
        _tables[name] = text
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return sink


def _write_suite_json() -> pathlib.Path | None:
    if _executor is None or not _executor.history:
        return None
    stats = _executor.stats
    payload = {
        # Drivers use different per-table subset sizes; the authoritative
        # per-run loop counts are in each suite entry.  This records only
        # the env override (null = driver defaults).
        "bench_loops_env": os.environ.get("REPRO_BENCH_LOOPS") or None,
        "jobs": _executor.jobs,
        "totals": {
            "loops": stats.loops,
            "scheduled": stats.scheduled,
            "cache_hits": stats.cache_hits,
            "wall_seconds": round(stats.wall_seconds, 6),
            "sum_ii": sum(s.sum_ii for s in _executor.history),
            "sum_traffic": sum(s.sum_traffic for s in _executor.history),
            "scheduling_seconds": round(
                sum(s.scheduling_seconds for s in _executor.history), 6
            ),
        },
        "suites": [summary.as_dict() for summary in _executor.history],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_suite.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def pytest_terminal_summary(terminalreporter):
    suite_json = _write_suite_json()
    if not _tables and suite_json is None:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name in sorted(_tables):
        terminalreporter.write_line("")
        terminalreporter.write_line(_tables[name])
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "Tables saved under benchmarks/results/; see EXPERIMENTS.md for "
        "the paper-vs-measured comparison."
    )
    if _executor is not None and _executor.history:
        stats = _executor.stats
        terminalreporter.write_line(
            f"[exec] jobs={_executor.jobs} loops={stats.loops} "
            f"scheduled={stats.scheduled} cache_hits={stats.cache_hits} "
            f"hit_rate={stats.hit_rate:.0%}"
        )
    if suite_json is not None:
        terminalreporter.write_line(f"Suite totals saved to {suite_json}")


def loops_for(bench_default: int) -> int:
    """Benchmark subset size (REPRO_BENCH_LOOPS overrides)."""
    return bench_loop_count(bench_default)
