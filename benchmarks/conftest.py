"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and registers
its rendered table here; a terminal-summary hook prints every table at
the end of the run (so ``pytest benchmarks/ --benchmark-only`` output
contains the actual experiment rows, not only the timings), and a copy is
written to ``benchmarks/results/<name>.txt``.

Subset size: the full paper-scale run uses all 1258 workbench loops; by
default the benchmarks use small, family-balanced subsets so the whole
suite completes in minutes.  Set ``REPRO_BENCH_LOOPS=<n>`` to scale up.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_tables: dict[str, str] = {}


@pytest.fixture
def table_sink():
    """Callable fixture: benchmarks pass (name, rendered table text)."""

    def sink(name: str, text: str) -> None:
        _tables[name] = text
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return sink


def pytest_terminal_summary(terminalreporter):
    if not _tables:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name in sorted(_tables):
        terminalreporter.write_line("")
        terminalreporter.write_line(_tables[name])
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "Tables saved under benchmarks/results/; see EXPERIMENTS.md for "
        "the paper-vs-measured comparison."
    )


def loops_for(bench_default: int) -> int:
    """Benchmark subset size (REPRO_BENCH_LOOPS overrides)."""
    value = os.environ.get("REPRO_BENCH_LOOPS")
    if value:
        return max(1, int(value))
    return bench_default
