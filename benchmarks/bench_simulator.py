"""Simulator benchmark: execute generated code, measured vs analytic.

Runs every workbench loop of the subset through the full pipeline —
schedule, emit, *execute* on the cycle-accurate simulator of
``repro.sim`` — and regenerates the measured-vs-analytic table: observed
useful/stall cycles against the ``repro.memsim`` prediction, plus the
bit-for-bit differential verdict against the scalar reference
interpreter.  Every row must come out 'ok': useful cycles follow
``II * (N + SC - 1)`` exactly and the end state matches the reference.
"""

from conftest import loops_for

from repro.eval.experiments import simulator_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite

ITERATIONS = 50


def test_simulator(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(16))
    headers, rows, note = benchmark.pedantic(
        simulator_rows,
        args=(loops,),
        kwargs={"iterations": ITERATIONS, "session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Simulator: measured vs analytic cycles ({len(loops)} loops, "
        f"{ITERATIONS} iterations)",
        headers,
        rows,
        note,
    )
    table_sink("simulator", text)

    assert rows, "the simulator table must not be empty"
    for row in rows:
        *_, verdict = row
        assert verdict == "ok", f"differential mismatch in row {row}"
