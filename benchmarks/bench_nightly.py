"""Nightly paper-scale suite run: throughput + register trajectories.

Runs the full workbench (``REPRO_BENCH_LOOPS=1258`` in the nightly
workflow - the paper's population; any smaller subset works for local
smoke) on both reference machines through the suite-execution engine:
the session executor fans scheduling out over ``REPRO_JOBS`` worker
processes and memoizes results in the on-disk cache, so a re-run after
an unrelated commit only schedules the loops whose inputs changed.

Two trajectories land in ``benchmarks/results/BENCH_nightly.json`` for
cross-commit diffing (the nightly workflow uploads the file as an
artifact):

* **placements/sec** - end-to-end scheduling throughput per machine;
* **registers_used** - the per-loop register allocation (summed over
  clusters, next to MaxLive), the observable the incremental
  arc-colouring engine must keep bit-stable: any drift against the
  previous night's artifact means the allocator changed behaviour.

Every converged schedule is then emitted and put through the static
code certifier (:mod:`repro.analysis`): the per-machine ``certifier``
section publishes the loop/bundle/read counts and the (expected-zero)
violation total; any violation, emission failure, or non-ok verdict is
a nightly failure.  At the paper's 1258-loop population this is the
widest certification sweep in the repo - far beyond the 16-loop
workbench the tier-1 suite and bench_scheduler gate.

Each run also carries a :class:`repro.obs.RecordingTracer`, and the
per-machine ``obs`` section aggregates what it saw: wall-time summed
per scheduler phase (``phase.prepare``/``phase.search``/
``phase.finalize``) and the attempt-outcome-kind histogram over every
loop's ``search_trace`` - a night-over-night view of *where* the
engine spends its time and *how* attempts end, not just how fast the
suite went.

A second nightly leg sweeps the frontend corpus
(:mod:`repro.frontend.corpus`): every real source kernel is parsed,
lowered, scheduled on both reference machines, statically certified
and validated bit-for-bit against direct source execution via the
three-link differential.  The per-pair verdicts land in
``benchmarks/results/BENCH_frontend.json``; any pair that is not a
full end-to-end match (certifier ok, all three links MATCH — no
skipped link) fails the night.
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR, loops_for

from repro import ScheduleRequest
from repro.analysis import certify_code
from repro.codegen import generate_code
from repro.errors import CodegenError
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.machine.config import parse_config
from repro.obs import RecordingTracer, outcome_histogram
from repro.workloads.perfect import cached_suite

#: The paper's reference configurations (same pair bench_scheduler gates).
MACHINES = ("1-(GP8M4-REG64)", "4-(GP2M1-REG32)")


def _phase_seconds(tracer: RecordingTracer) -> dict[str, float]:
    """Wall seconds summed per ``phase.*`` span across the whole run."""
    totals: dict[str, float] = {}
    for event in tracer.events:
        if event.kind == "span" and event.name.startswith("phase."):
            totals[event.name] = totals.get(event.name, 0.0) + (
                event.dur or 0.0
            )
    return {name: round(seconds, 3) for name, seconds in sorted(totals.items())}


def _certify_run(results) -> dict:
    """Emit and statically certify every converged schedule of one run.

    Returns the aggregate the nightly JSON publishes: how much code was
    proven (loops, bundles, reads), the violation total (expected zero
    night over night), and per-loop detail only for the offenders so a
    bad night's artifact pinpoints them without bloating a clean one.
    """
    section: dict = {
        "loops": 0,
        "bundles": 0,
        "reads": 0,
        "violations": 0,
        "certify_seconds": 0.0,
        "violation_kinds": {},
        "offenders": {},
        "emission_failures": {},
    }
    started = time.perf_counter()
    for result in results:
        try:
            code = generate_code(result)
        except CodegenError as error:
            section["emission_failures"][error.loop] = error.kind
            continue
        report = certify_code(code, result)
        section["loops"] += 1
        section["bundles"] += report.bundles_checked
        section["reads"] += report.reads_checked
        section["violations"] += len(report.violations)
        for kind, count in report.kind_histogram().items():
            section["violation_kinds"][kind] = (
                section["violation_kinds"].get(kind, 0) + count
            )
        if report.violations:
            section["offenders"][result.loop] = [
                violation.render() for violation in report.violations
            ]
    section["certify_seconds"] = round(
        time.perf_counter() - started, 3
    )
    return section


def test_nightly_paper_scale_suite(executor, table_sink):
    count = loops_for(1258)
    loops = cached_suite(count)
    payload: dict = {"count": count, "machines": []}
    rows = []
    failures: list[str] = []
    for machine_name in MACHINES:
        machine = parse_config(machine_name)
        tracer = RecordingTracer()
        started = time.perf_counter()
        try:
            run = schedule_suite(
                machine, loops, ScheduleRequest(trace=tracer),
                session=executor,
            )
        except Exception as exc:  # e.g. a SchedulingError from a worker
            failures.append(f"{machine_name}: {exc}")
            continue
        wall = time.perf_counter() - started
        placements = sum(r.stats.nodes_scheduled for r in run.results)
        entry = {
            "machine": machine_name,
            "loops": len(run.results),
            "converged": len(run.converged),
            "sum_ii": run.sum_ii(),
            "wall_seconds": round(wall, 3),
            "placements": placements,
            "placements_per_sec": (
                round(placements / wall, 1) if wall else 0.0
            ),
            "trajectory": {
                r.loop: {
                    "ii": r.ii,
                    "registers_used": sum(r.register_usage.values()),
                    "max_live": sum(r.max_live.values()),
                }
                for r in run.results
            },
            # Cached loops skip scheduling, so the phase times cover
            # only what actually ran this night; the outcome histogram
            # comes from the (always-present) per-result search traces.
            "obs": {
                "events": len(tracer.events),
                "phase_seconds": _phase_seconds(tracer),
                "attempt_outcomes": outcome_histogram(
                    entry
                    for r in run.results
                    for entry in r.stats.search_trace
                ),
            },
        }
        # Static certification sweep over everything that converged:
        # the violation count is a published (expected-zero) nightly
        # observable, same as the register trajectory.
        certifier = _certify_run(run.converged)
        entry["certifier"] = certifier
        payload["machines"].append(entry)
        rows.append([
            machine_name, entry["loops"], entry["converged"],
            entry["sum_ii"], entry["wall_seconds"],
            entry["placements_per_sec"], certifier["violations"],
        ])
        # MIRS-C's contract: spilling makes every loop schedulable.
        # Collected (not raised) so a failing night still writes and
        # uploads the trajectories it exists to publish.
        if len(run.converged) != len(run.results):
            failures.append(
                f"{machine_name}: "
                f"{len(run.results) - len(run.converged)} loops failed "
                f"to converge"
            )
        if certifier["emission_failures"]:
            failures.append(
                f"{machine_name}: code emission failed on "
                f"{len(certifier['emission_failures'])} converged "
                f"loop(s): {certifier['emission_failures']}"
            )
        if certifier["violations"]:
            failures.append(
                f"{machine_name}: static certifier reported "
                f"{certifier['violations']} violation(s) over "
                f"{certifier['loops']} loops "
                f"(kinds: {certifier['violation_kinds']}; offenders in "
                f"BENCH_nightly.json)"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_nightly.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    table_sink(
        "nightly_suite",
        render_table(
            f"Nightly paper-scale suite ({count} loops)",
            ["machine", "loops", "conv", "sum II", "wall s", "plc/s",
             "cert viol"],
            rows,
            "trajectories (per-loop II / registers_used / MaxLive) plus "
            "per-phase times, attempt-outcome histograms and the static "
            "certification sweep in BENCH_nightly.json",
        ),
    )
    assert failures == [], "; ".join(failures)


def test_nightly_optimality_gap(executor, table_sink):
    """Heuristic-vs-exact optimality gap over workbench + corpus.

    Schedules the 16-loop workbench and the full frontend corpus twice
    on the unified reference machine — once with MIRS-C, once with the
    exact backend — and publishes the per-loop II and register gaps
    under the ``optimality`` key of ``BENCH_nightly.json``.  Two
    failure conditions gate the night:

    * any exact schedule that does not certify statically *and* match
      the reference interpreter bit for bit (``validated`` column);
    * any covered heuristic II **below** a certified lower bound
      (``gate`` column ``VIOLATION``) — that would disprove either the
      heuristic's verifier or the exact solver, and is exactly what
      this leg exists to catch.
    """
    from repro.eval.experiments import optimality_rows

    started = time.perf_counter()
    headers, rows, note = optimality_rows(session=executor)
    wall = time.perf_counter() - started

    gate_col = headers.index("gate")
    validated_col = headers.index("validated")
    oracle_col = headers.index("oracle")
    proven = sum(1 for row in rows if row[oracle_col] == "optimal")
    section = {
        "wall_seconds": round(wall, 3),
        "proven_optimal": proven,
        "loops": [dict(zip(headers, row)) for row in rows],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_nightly.json"
    # The paper-scale leg owns the file; merge so run order never
    # drops a section (a solo run of this leg still publishes).
    payload = (
        json.loads(out_path.read_text()) if out_path.exists() else {}
    )
    payload["optimality"] = section
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    table_sink(
        "nightly_optimality",
        render_table(
            f"Nightly optimality gap ({wall:.1f}s)", headers, rows, note
        ),
    )
    failures = [
        f"{row[0]}: heuristic II beats the certified lower bound"
        for row in rows
        if row[gate_col] == "VIOLATION"
    ] + [
        f"{row[0]}: exact schedule failed certification/differential"
        for row in rows
        if row[validated_col] == "FAIL"
    ]
    assert failures == [], "; ".join(failures)


def test_nightly_frontend_corpus(executor, table_sink):
    """Full-corpus frontend sweep on both reference machines.

    Unlike the per-push CI smoke (two kernels, one machine), the night
    runs every corpus kernel through schedule + certify + three-link
    differential on both reference configurations and requires the
    *full* match — a skipped link 3 (live-in renaming hazard) counts as
    a failure here, because the corpus is curated to be hazard-free on
    these machines.
    """
    from repro.eval.experiments import frontend_rows

    started = time.perf_counter()
    headers, rows, note = frontend_rows(session=executor, configs=MACHINES)
    wall = time.perf_counter() - started
    payload = {
        "wall_seconds": round(wall, 3),
        "pairs": [dict(zip(headers, row)) for row in rows],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_frontend.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    table_sink(
        "nightly_frontend",
        render_table(
            f"Nightly frontend corpus sweep ({wall:.1f}s)",
            headers, rows, note,
        ),
    )
    bad = [
        f"{row[0]}/{row[1]}: certify={row[-2]} differential={row[-1]}"
        for row in rows
        if row[-2] != "ok" or row[-1] != "match"
    ]
    assert bad == [], "; ".join(bad)
