"""Table 2: register files constrained to 64 registers in total.

The register-constrained comparison exercises the *integrated spilling*:
[31] can only react to register shortage by increasing the II (and fails
to converge outright on loops whose pressure no II can fix), while MIRS-C
trades a controlled amount of extra memory traffic for a much lower II
(paper: II ratio ~0.63 at k=4, Lm=3, traffic ratio ~1.44).
"""

from conftest import loops_for

from repro.eval.experiments import table2_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_table2(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(12))
    headers, rows, note = benchmark.pedantic(
        table2_rows,
        args=(loops,),
        kwargs={"session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Table 2: 64 registers in total ({len(loops)} loops)",
        headers,
        rows,
        note,
    )
    table_sink("table2", text)

    for row in rows:
        (k, lm, not_cnvr, diff, sum_ii_base, sum_ii_ours, ii_ratio,
         sum_trf_base, sum_trf_ours, trf_ratio) = row
        if diff:
            # MIRS-C lowers the II at the cost of extra memory traffic.
            assert ii_ratio <= 1.0
            assert trf_ratio >= 1.0
