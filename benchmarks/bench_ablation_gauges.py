"""Ablation: the spill heuristic's gauges (SG, MSG, DG) and BudgetRatio.

The paper fixes SG=2, MSG=4, DG=4 and defers the sensitivity study to
[33]; this benchmark regenerates that study on the workbench.  Expected
shape: SG=1 spills eagerly (more traffic, sometimes lower II), very large
SG postpones all spilling until the schedule is complete (fewer chances
to recover, higher II on tight register files); MSG/DG mostly trade
traffic against schedule freedom.
"""

from conftest import loops_for

from repro.core.params import MirsParams
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.machine.config import paper_configuration
from repro.workloads.perfect import cached_suite


def _sweep(loops, executor=None):
    machine = paper_configuration(4, 16)
    variants = [
        ("paper (SG=2 MSG=4 DG=4 BR=3)", MirsParams()),
        ("SG=1 (eager spill)", MirsParams(spill_gauge=1.0)),
        ("SG=8 (late spill)", MirsParams(spill_gauge=8.0)),
        ("MSG=1", MirsParams(min_span_gauge=1)),
        ("MSG=12", MirsParams(min_span_gauge=12)),
        ("DG=1", MirsParams(distance_gauge=1)),
        ("DG=16", MirsParams(distance_gauge=16)),
        ("BR=1 (tiny budget)", MirsParams(budget_ratio=1)),
        ("BR=6 (double budget)", MirsParams(budget_ratio=6)),
    ]
    rows = []
    for label, params in variants:
        run = schedule_suite(machine, loops, params, session=executor)
        rows.append(
            [
                label,
                run.sum_ii(),
                run.sum_traffic(),
                sum(r.spill_operations for r in run.converged),
                run.not_converged_count,
                round(run.sum_scheduling_seconds(), 2),
            ]
        )
    return rows


def test_ablation_gauges(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(10))
    rows = benchmark.pedantic(
        _sweep, args=(loops, executor), rounds=1, iterations=1
    )
    headers = [
        "variant", "sum II", "sum trf", "spill ops",
        "not cnvr", "sched time (s)",
    ]
    text = render_table(
        f"Ablation: spill gauges on 4-(GP2M1-REG16) ({len(loops)} loops)",
        headers,
        rows,
        "Paper defaults should sit at or near the best sum II; eager "
        "spilling (SG=1) buys little II for noticeably more traffic.",
    )
    table_sink("ablation_gauges", text)
    assert len(rows) == 9
