"""Micro-benchmarks of the core substrates.

These are conventional multi-round pytest-benchmark measurements of the
building blocks (MII analysis, HRMS ordering, a full MIRS-C schedule, the
cache simulator), useful for tracking performance regressions in the
scheduler itself.
"""

import pytest

from repro import MirsC, compute_mii, hrms_order, parse_config
from repro.memsim.cache import LockupFreeCache
from repro.memsim.trace import loop_miss_rates
from repro.workloads.perfect import build_loop


@pytest.fixture(scope="module")
def medium_loop():
    # A mid-sized dense loop from the workbench.
    return build_loop(31).graph


@pytest.fixture(scope="module")
def unified():
    return parse_config("1-(GP8M4-REG64)")


@pytest.fixture(scope="module")
def clustered():
    return parse_config("4-(GP2M1-REG32)")


def test_bench_mii(benchmark, medium_loop, unified):
    result = benchmark(compute_mii, medium_loop, unified)
    assert result >= 1


def test_bench_hrms_order(benchmark, medium_loop, unified):
    result = benchmark(hrms_order, medium_loop, unified)
    assert len(result.order) == len(medium_loop)


def test_bench_schedule_unified(benchmark, medium_loop, unified):
    result = benchmark(lambda: MirsC(unified).schedule(medium_loop))
    assert result.converged


def test_bench_schedule_clustered(benchmark, medium_loop, clustered):
    result = benchmark.pedantic(
        lambda: MirsC(clustered).schedule(medium_loop),
        rounds=3,
        iterations=1,
    )
    assert result.converged


def test_bench_cache_sim(benchmark, medium_loop):
    rates = benchmark(loop_miss_rates, medium_loop)
    assert all(0.0 <= r <= 1.0 for r in rates.values())


def test_bench_cache_access(benchmark):
    cache = LockupFreeCache()

    def run():
        for address in range(0, 1 << 16, 8):
            cache.access(address)
        return cache.miss_rate

    rate = benchmark(run)
    assert 0.0 <= rate <= 1.0
