"""Table 1: MIRS-C vs [31] with an unbounded number of registers.

With no register constraint the comparison isolates the value of the
*backtracking* (Forcing_and_Ejection): ejecting nodes lets MIRS-C place
the complex move reservations that defeat the non-iterative scheduler.
Expected shape: MIRS-C's summed II over differing loops is lower, and the
advantage grows with the cluster count (paper: 0.95 / 0.93 / 0.91 for
1 / 2 / 4 clusters).
"""

from conftest import loops_for

from repro.eval.experiments import table1_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_table1(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(16))
    headers, rows, note = benchmark.pedantic(
        table1_rows,
        args=(loops,),
        kwargs={"session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Table 1: unbounded registers ({len(loops)} loops)",
        headers,
        rows,
        note,
    )
    table_sink("table1", text)

    for row in rows:
        k, lm, n, not_diff, diff, sum_base, sum_ours, ratio = row
        # MIRS-C never loses on summed II over the differing loops.
        assert sum_ours <= sum_base or diff == 0
