"""Figure 7: real memory and selective binding prefetching.

Schedules the workbench under the lockup-free cache model of Section 4.3,
with loads either at hit latency ("normal", the processor stalls on
misses) or at miss latency for the selectively-prefetched loads
("prefetch").  Expected shape:

* prefetching removes most stall cycles for every configuration,
* prefetching inflates register pressure, so configurations with more
  total registers (clustered ones, whose registers are cheap) benefit
  the most,
* on execution time the best clustered configurations beat the unified
  one (paper: ~1.19x at k=2, ~1.46x at k=4).
"""

from conftest import loops_for

from repro.eval.experiments import figure7_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_figure7(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(8))
    headers, rows, note = benchmark.pedantic(
        figure7_rows,
        args=(loops,),
        kwargs={"session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Figure 7: real memory + binding prefetching ({len(loops)} loops)",
        headers,
        rows,
        note,
    )
    table_sink("figure7", text)

    stall = {(mode, k, z): s for mode, k, z, _u, s, _t in rows}
    # Prefetching reduces the stall component on the reference config.
    assert stall[("prefetch", 1, 64)] <= stall[("normal", 1, 64)] + 1e-9
