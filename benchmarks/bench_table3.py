"""Table 3: scheduling time of [31] vs MIRS-C.

The limited backtracking keeps MIRS-C's compile time competitive with the
non-iterative scheduler; on register-constrained configurations spilling
often avoids whole-loop reschedules, which is why the paper reports
MIRS-C as slightly faster there.
"""

from conftest import loops_for

from repro.eval.experiments import table3_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_table3(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(12))
    headers, rows, note = benchmark.pedantic(
        table3_rows,
        args=(loops,),
        kwargs={"session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Table 3: scheduling time ({len(loops)} loops)",
        headers,
        rows,
        note,
    )
    table_sink("table3", text)
    assert rows, "scheduling-time table must not be empty"
