"""Scheduler-throughput benchmark: wall-time and placements/sec.

Times end-to-end ``schedule_suite`` runs (fresh executor, **no cache** -
the point is to measure the engine, not the memo table) over two
populations:

* the 16-loop Perfect-Club-like workbench on both reference machines
  (always 16 loops, regardless of ``REPRO_BENCH_LOOPS``: the CI gate
  compares this number across commits, so the population must be fixed);
* the 100-400-node stress loops of :mod:`repro.workloads.stress`, the
  regime the incremental pressure engine (``repro.schedule.pressure``)
  was built for (loop count scales with ``REPRO_BENCH_LOOPS``) — run
  once per II-search policy (``linear``, the paper-exact default, and
  ``geometric``, the pressure-informed jump policy), with per-policy
  rows in the JSON.

Results land in ``benchmarks/results/BENCH_scheduler.json``.  A fixed
~90-node *calibration loop* is scheduled first and every wall-time is
also reported normalized by it, which makes the numbers comparable
across hosts of different speeds.  When the committed baseline
(``benchmarks/baselines/bench_scheduler_baseline.json``) is present:

* the run **fails** if the normalized workbench wall-time regressed more
  than ``REPRO_BENCH_TOLERANCE`` (default 0.25, i.e. 25 %) against it;
* the recorded pre-PR engine measurements are used to compute (and
  assert) the stress-suite speedup of the incremental engine;
* the ``ii_search`` section gates the policies: the linear stress run
  must stay within the tolerance of its recorded baseline, the
  geometric run must be >= 3x faster than the recorded *linear* wall,
  and geometric must converge wherever linear does with the same II
  (its documented bound) in no more attempts.

A ``speculation`` phase schedules ``stress1`` (one feasible II far above
MII - the speculative driver's best case) serially and with ``K=4``
candidate IIs racing over per-attempt worker processes.  It always
asserts the two schedules are fingerprint-identical with the same II
and that the K=4 run provably cancelled its losers (executed attempts
< serial attempts + K); under ``REPRO_BENCH_REQUIRE_BASELINE`` (the CI
gate) the K=4 run must additionally be >= 2x faster wall-clock than
the serial one when the host has at least 4 cores (on narrower hosts
parallel speedup is physically capped, so only near-parity overhead is
gated) - both runs happen back-to-back in this process, so the ratio
needs no calibration or committed reference.

An ``observability`` phase gates the ``repro.obs`` tracer's
tracing-*off* cost below 2% of scheduling wall-time.  The gate is
analytic, not differential: one workbench run is made with a counting
tracer whose ``enabled`` property tallies every touchpoint while still
answering ``False`` (control flow identical to the shipped
``NULL_TRACER`` path), a microbenchmark prices one disabled
touchpoint, and touchpoints x price must stay under 2% of that run's
wall - far more stable on a noisy single-core CI host than timing two
whole runs and subtracting.  A second run with a ``RecordingTracer``
must then reproduce the first run's fingerprints bit for bit.

A third phase instruments the drained-regime **register allocator**: an
extra stress run replays every incremental
:class:`~repro.schedule.colouring.IncrementalArcColouring` query against
the batch ``allocate_registers`` oracle, side by side and call for
call.  It fails on *any* ``registers_used`` mismatch between the two
engines, or when the incremental path's per-call allocation time is
less than 2x faster than batch over the whole run (the two walls are
measured in the same process on the same calls, so no baseline or
calibration is involved).  Per-loop rows also record ``registers_used``
(summed over clusters), giving the nightly paper-scale run its register
trajectory next to placements/sec.

A ``certifier`` phase prices the static code certifier
(:mod:`repro.analysis`) against the dynamic oracle of equivalent
coverage: every workbench loop is scheduled on both reference machines,
its emitted pipeline is certified, and the same schedules are then put
through ``run_differential`` at each loop's **declared trip count** in
the same process.  The certifier's fixpoint proves legality for every
iteration of the loop, so the dynamic check of equal strength executes
the loop in full - a short smoke simulation would prove strictly less.
The gate requires **zero** violations over the whole workbench and a
certify wall under 5% of the differential wall - both sides are timed
back to back on the same host, so the ratio needs no calibration or
committed baseline.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import RESULTS_DIR, loops_for

from repro import LoopBuilder, ScheduleRequest, SessionConfig
from repro.core.mirsc import MirsC
from repro.obs import NULL_TRACER, RecordingTracer, Tracer
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.exec import result_fingerprint
from repro.machine.config import parse_config
from repro.workloads.perfect import cached_suite
from repro.workloads.stress import stress_suite

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "bench_scheduler_baseline.json"
)

#: Machines the workbench phase runs on (the paper's reference configs).
WORKBENCH_MACHINES = ("1-(GP8M4-REG64)", "4-(GP2M1-REG32)")
#: Machine the stress phase runs on.
STRESS_MACHINE = "1-(GP8M4-REG64)"
#: II-search policies the stress phase measures (one run each).
STRESS_POLICIES = ("linear", "geometric")
#: The workbench phase is always the full 16-loop subset (see above).
WORKBENCH_COUNT = 16
#: The certify wall must stay under this fraction of the differential
#: wall (the acceptance bound of the static-certifier PR).
CERTIFY_WALL_FRACTION = 0.05


def calibration_graph():
    """A fixed ~90-node loop used to normalize wall-times across hosts.

    Hand-built (not generated) so it cannot drift when the synthetic
    workload generator changes.
    """
    b = LoopBuilder("calibration", trip_count=128)
    for j in range(12):
        node = b.load(array=j)
        for _ in range(5):
            node = b.add(node)
        b.store(node, array=100 + j)
    acc = b.add(b.load(array=50))
    b.loop_carried(acc, acc, distance=2)
    b.store(acc, array=51)
    return b.build()


def measure_calibration(rounds: int = 5) -> float:
    """Best-of-N wall seconds scheduling the calibration loop.

    The loop is scheduled on both workbench machines per round, so the
    calibration tracks the unified/clustered mix of the gated wall-time
    (and is long enough - tens of ms - that timer noise stays well under
    the regression tolerance).
    """
    machines = [parse_config(name) for name in WORKBENCH_MACHINES]
    graph = calibration_graph()
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        for machine in machines:
            MirsC(machine).schedule(graph)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _run_suite(machine_name: str, loops, search: str | None = None) -> dict:
    """One timed, cache-free, sequential schedule_suite run."""
    machine = parse_config(machine_name)
    session = SessionConfig(jobs=1, cache=False)
    started = time.perf_counter()
    run = schedule_suite(
        machine, loops, ScheduleRequest(search=search), session=session
    )
    wall = time.perf_counter() - started
    placements = sum(r.stats.nodes_scheduled for r in run.results)
    return {
        "machine": machine_name,
        "loops": len(run.results),
        "converged": len(run.converged),
        "sum_ii": run.sum_ii(),
        "wall_seconds": round(wall, 3),
        "scheduling_seconds": round(run.sum_scheduling_seconds(), 3),
        "placements": placements,
        "placements_per_sec": round(placements / wall, 1) if wall else 0.0,
        "per_loop": {
            r.loop: {
                "seconds": round(r.scheduling_seconds, 3),
                "ii": r.ii,
                "converged": r.converged,
                "attempts": len(r.stats.search_trace),
                "registers_used": sum(r.register_usage.values()),
            }
            for r in run.results
        },
    }


def _baseline_policy_norm(
    section: dict, policy: str, stress_count: int
) -> float | None:
    """Baseline normalized stress wall of one policy over the prefix.

    Stress suites are prefixes of one deterministic stream; per-loop
    seconds let every subset size (CI uses ``REPRO_BENCH_LOOPS``)
    compare against the same baseline.
    """
    entry = section.get(policy)
    if entry is None:
        return None
    per_loop = entry.get("per_loop_seconds", {})
    names = [f"stress{i}" for i in range(stress_count)]
    if not all(name in per_loop for name in names):
        return None
    return sum(per_loop[name] for name in names) / section[
        "calibration_seconds"
    ]


def _gate_policies(
    section: dict | None,
    policy_entries: dict[str, dict],
    stress_count: int,
    *,
    tolerance: float,
    payload: dict,
) -> list[str]:
    """The II-search policy gates (see module docstring)."""
    failures: list[str] = []
    linear = policy_entries["linear"]
    geometric = policy_entries["geometric"]

    # Always-on invariants: the geometric policy must converge wherever
    # linear does, to the same II (its documented bound on the stress
    # seeds), in no more attempts.
    for name, lin in linear["per_loop"].items():
        geo = geometric["per_loop"][name]
        if geo["converged"] != lin["converged"]:
            failures.append(
                f"{name}: geometric converged={geo['converged']} but "
                f"linear converged={lin['converged']}"
            )
        elif lin["converged"] and geo["ii"] != lin["ii"]:
            failures.append(
                f"{name}: geometric II {geo['ii']} != linear II {lin['ii']}"
            )
        if geo["attempts"] > lin["attempts"]:
            failures.append(
                f"{name}: geometric took {geo['attempts']} attempts vs "
                f"linear's {lin['attempts']}"
            )

    if section is None:
        return failures
    base_lin = _baseline_policy_norm(section, "linear", stress_count)
    if base_lin is not None:
        lin_norm = linear["normalized_wall"]
        regression = lin_norm / base_lin - 1.0
        payload["stress"]["linear_regression_vs_baseline"] = round(
            regression, 3
        )
        if regression > tolerance:
            failures.append(
                f"linear-policy stress wall regressed {regression:.0%} "
                f"against the committed baseline (normalized {lin_norm} "
                f"vs {base_lin:.1f}, tolerance {tolerance:.0%})"
            )
        geo_speedup = base_lin / geometric["normalized_wall"]
        payload["stress"]["geometric_speedup_vs_baseline_linear"] = round(
            geo_speedup, 1
        )
        if geo_speedup < 3.0:
            failures.append(
                f"geometric stress speedup vs the committed linear "
                f"baseline fell below 3x (measured {geo_speedup:.2f}x)"
            )
    return failures


def _measure_allocator(stress_loops) -> dict:
    """Drained-regime allocation timing: incremental vs batch.

    One extra (sequential, cache-free) stress run with every
    ``IncrementalArcColouring.registers_used`` call wrapped: the
    incremental answer is timed per call, and the batch oracle
    (``allocate_registers`` over the live tracker - the pre-engine code
    path) is timed **once per mutation epoch** - the pre-engine spill
    check computed one all-cluster allocation per round and served
    every cluster from it, so charging batch per *query* would inflate
    its wall by the cluster count.  Each oracle run compares
    ``registers_used`` of every cluster.  Returns accumulated walls,
    call/oracle counts and any mismatches (the CI gate requires none,
    and >= 2x aggregate speedup).
    """
    from repro.schedule import colouring as colouring_mod
    from repro.schedule.regalloc import allocate_registers

    stats = {
        "calls": 0,
        "oracle_runs": 0,
        "incremental_seconds": 0.0,
        "batch_seconds": 0.0,
        "mismatches": [],
    }
    original = colouring_mod.IncrementalArcColouring.registers_used

    def instrumented(self, cluster):
        started = time.perf_counter()
        used = original(self, cluster)
        stats["incremental_seconds"] += time.perf_counter() - started
        stats["calls"] += 1
        epoch = self.events_seen
        if getattr(self, "_bench_oracle_epoch", None) != epoch:
            self._bench_oracle_epoch = epoch
            started = time.perf_counter()
            batch = allocate_registers(
                self.graph,
                self.schedule,
                self.machine,
                self.tracker,
                spilled_invariants=self.tracker.spilled_invariants,
            )
            stats["batch_seconds"] += time.perf_counter() - started
            stats["oracle_runs"] += 1
            for check_cluster, allocation in batch.items():
                got = (
                    used
                    if check_cluster == cluster
                    else original(self, check_cluster)
                )
                if allocation.registers_used != got:
                    stats["mismatches"].append(
                        {
                            "loop": self.graph.name,
                            "cluster": check_cluster,
                            "incremental": got,
                            "batch": allocation.registers_used,
                        }
                    )
        return used

    colouring_mod.IncrementalArcColouring.registers_used = instrumented
    try:
        # Two populations: the stress loops (few, huge drained-regime
        # problems - each batch replay walks hundreds of lifetimes) and
        # the clustered workbench (many spill-heavy loops whose final
        # regime queries the allocator every round), so the gate's call
        # sample stays large even under the CI subset size.
        session = SessionConfig(jobs=1, cache=False)
        schedule_suite(
            parse_config(STRESS_MACHINE),
            stress_loops,
            ScheduleRequest(search="geometric"),
            session=session,
        )
        schedule_suite(
            parse_config("4-(GP2M1-REG32)"),
            cached_suite(WORKBENCH_COUNT),
            session=session,
        )
    finally:
        colouring_mod.IncrementalArcColouring.registers_used = original
    stats["incremental_seconds"] = round(stats["incremental_seconds"], 4)
    stats["batch_seconds"] = round(stats["batch_seconds"], 4)
    stats["speedup"] = (
        round(stats["batch_seconds"] / stats["incremental_seconds"], 1)
        if stats["incremental_seconds"]
        else None
    )
    return stats


def _measure_certifier(workbench_loops) -> dict:
    """Static certification vs dynamic differential, same schedules.

    Every workbench loop is scheduled on both reference machines and
    its emitted code certified; the identical schedules then run
    through ``run_differential`` at the loop's declared trip count
    (cache off - the point is to price the execution the certifier
    displaces, not the memo table).  Both walls are measured back to
    back in this process, so the <5% bound needs no calibration.
    Scheduling and codegen are deliberately *outside* both timed
    regions: they are common to either checking strategy.
    """
    from repro.analysis import certify_code
    from repro.codegen import generate_code
    from repro.sim.differential import run_differential

    section: dict = {
        "machines": [],
        "loops": 0,
        "violations": 0,
        "mismatches": 0,
        "certify_seconds": 0.0,
        "differential_seconds": 0.0,
        "violation_kinds": {},
    }
    for machine_name in WORKBENCH_MACHINES:
        run = schedule_suite(
            parse_config(machine_name),
            workbench_loops,
            session=SessionConfig(jobs=1, cache=False),
        )
        emitted = [
            (result, generate_code(result)) for result in run.converged
        ]

        started = time.perf_counter()
        reports = [
            certify_code(code, result) for result, code in emitted
        ]
        certify_wall = time.perf_counter() - started

        started = time.perf_counter()
        diff_reports = [
            run_differential(result, result.graph.trip_count, cache=False)
            for result, _ in emitted
        ]
        diff_wall = time.perf_counter() - started

        violations = sum(len(r.violations) for r in reports)
        kinds: dict[str, int] = {}
        for report in reports:
            for kind, count in report.kind_histogram().items():
                kinds[kind] = kinds.get(kind, 0) + count
        entry = {
            "machine": machine_name,
            "loops": len(emitted),
            "converged": len(run.converged),
            "scheduled": len(run.results),
            "bundles": sum(r.bundles_checked for r in reports),
            "reads": sum(r.reads_checked for r in reports),
            "violations": violations,
            "mismatches": sum(1 for d in diff_reports if not d.match),
            "certify_seconds": round(certify_wall, 4),
            "differential_seconds": round(diff_wall, 4),
        }
        section["machines"].append(entry)
        section["loops"] += entry["loops"]
        section["violations"] += violations
        section["mismatches"] += entry["mismatches"]
        section["certify_seconds"] += certify_wall
        section["differential_seconds"] += diff_wall
        for kind, count in kinds.items():
            section["violation_kinds"][kind] = (
                section["violation_kinds"].get(kind, 0) + count
            )
    section["certify_seconds"] = round(section["certify_seconds"], 4)
    section["differential_seconds"] = round(
        section["differential_seconds"], 4
    )
    section["wall_fraction"] = (
        round(
            section["certify_seconds"] / section["differential_seconds"], 4
        )
        if section["differential_seconds"]
        else None
    )
    return section


def _gate_certifier(section: dict) -> list[str]:
    """The static-certifier gates (see ``_measure_certifier``)."""
    failures: list[str] = []
    if section["loops"] == 0:
        failures.append("certifier phase saw no emitted loops")
    for entry in section["machines"]:
        if entry["converged"] != entry["scheduled"]:
            failures.append(
                f"{entry['machine']}: only {entry['converged']} of "
                f"{entry['scheduled']} workbench loops converged"
            )
    if section["violations"]:
        failures.append(
            f"static certifier reported {section['violations']} "
            f"violation(s) on the clean workbench "
            f"(kinds: {section['violation_kinds']})"
        )
    if section["mismatches"]:
        failures.append(
            f"differential oracle disagreed on {section['mismatches']} "
            f"workbench loop(s) the certifier passed"
        )
    fraction = section["wall_fraction"]
    if fraction is None or fraction >= CERTIFY_WALL_FRACTION:
        failures.append(
            f"certify wall {section['certify_seconds']}s is not under "
            f"{CERTIFY_WALL_FRACTION:.0%} of the differential wall "
            f"{section['differential_seconds']}s "
            f"(measured {fraction if fraction is None else f'{fraction:.2%}'})"
        )
    return failures


def _measure_speculation(stress_loops) -> dict:
    """Speculative II search: stress1 scheduled serially and at K=4.

    ``stress1`` is the speculative driver's best case: exactly one
    feasible II far above MII, so the serial linear ladder pays for a
    long chain of failing attempts one at a time while the speculative
    driver races four of them concurrently.  Both runs go through
    :class:`~repro.core.mirsc.MirsC` directly (fresh engine, no cache);
    the committed schedules must be fingerprint-identical, and the K=4
    run must provably cancel its losers (executed attempts stay under
    the serial attempt count plus the frontier width).
    """
    graph = stress_loops[1]
    machine = parse_config(STRESS_MACHINE)
    entries: dict[int, dict] = {}
    for width in (1, 4):
        engine = MirsC(machine, strict=False, speculation=width)
        started = time.perf_counter()
        result = engine.schedule(graph.clone())
        wall = time.perf_counter() - started
        entries[width] = {
            "wall_seconds": round(wall, 3),
            "ii": result.ii,
            "converged": result.converged,
            "fingerprint": result_fingerprint(result),
            "attempts": len(result.stats.search_trace),
            "search": (
                result.stats.search.as_dict() if result.stats.search else {}
            ),
        }
    k1, k4 = entries[1], entries[4]
    return {
        "loop": graph.name,
        "machine": STRESS_MACHINE,
        "width": 4,
        # Racing K attempts needs K cores to pay off; the gate adapts.
        "cpus": os.cpu_count() or 1,
        "k1": k1,
        "k4": k4,
        # Same-host, same-process ratio: no calibration needed.
        "speedup": (
            round(k1["wall_seconds"] / k4["wall_seconds"], 2)
            if k4["wall_seconds"]
            else None
        ),
    }


def _gate_speculation(
    section: dict, baseline_section: dict | None = None
) -> list[str]:
    """The speculative-search gates (see ``_measure_speculation``)."""
    failures: list[str] = []
    k1, k4 = section["k1"], section["k4"]
    if k4["fingerprint"] != k1["fingerprint"]:
        failures.append(
            f"speculative (K=4) schedule of {section['loop']} is not "
            f"fingerprint-identical to the serial one"
        )
    if k4["ii"] != k1["ii"] or k4["converged"] != k1["converged"]:
        failures.append(
            f"speculative (K=4) II/convergence "
            f"({k4['ii']}/{k4['converged']}) differs from serial "
            f"({k1['ii']}/{k1['converged']})"
        )
    executed = k4["search"].get("executed_attempts")
    serial_attempts = k1["attempts"]
    if executed is None or executed >= serial_attempts + section["width"]:
        failures.append(
            f"speculative losers not provably cancelled: executed "
            f"{executed} attempts vs serial {serial_attempts} + "
            f"K={section['width']} bound"
        )
    # Stress loops are a deterministic stream and the fingerprint is
    # host-independent, so the committed baseline pins the schedule
    # itself across commits (not just this process's K=1 vs K=4 pair).
    if baseline_section is not None and (
        baseline_section.get("loop") == section["loop"]
        and baseline_section.get("machine") == section["machine"]
    ):
        if k1["fingerprint"] != baseline_section.get("fingerprint"):
            failures.append(
                f"serial schedule of {section['loop']} drifted from the "
                f"committed baseline fingerprint"
            )
        if k1["attempts"] != baseline_section.get("serial_attempts"):
            failures.append(
                f"serial II ladder on {section['loop']} took "
                f"{k1['attempts']} attempts vs the committed "
                f"{baseline_section.get('serial_attempts')}"
            )
    if os.environ.get("REPRO_BENCH_REQUIRE_BASELINE"):
        # With the full frontier width in cores, racing must pay off
        # (>=2x on stress1); on narrower hosts parallel speedup is
        # physically capped, so gate only the runner's overhead — a
        # single-core K=4 run does the serial attempts plus at most
        # K-1 extras through worker pipes and must stay near parity.
        cpus = section.get("cpus") or 1
        floor = 2.0 if cpus >= section["width"] else 0.7
        if section["speedup"] is None or section["speedup"] < floor:
            failures.append(
                f"speculative K=4 speedup on {section['loop']} fell "
                f"below {floor}x (measured {section['speedup']}x on "
                f"{cpus} cpu(s))"
            )
    return failures


class _CountingNull(Tracer):
    """A disabled tracer that tallies every touchpoint it is asked about.

    ``enabled`` answers ``False`` (so every guarded call site takes
    exactly the shipped ``NULL_TRACER`` path) but counts the read; the
    no-op event methods count too in case a call site skips its guard.
    """

    touchpoints = 0

    @property
    def enabled(self) -> bool:
        self.touchpoints += 1
        return False

    def begin(self, name, cat, **args):
        self.touchpoints += 1
        return None

    def end(self, token, **args):
        self.touchpoints += 1

    def instant(self, name, cat, **args):
        self.touchpoints += 1

    def counter(self, name, value, cat="metrics"):
        self.touchpoints += 1


def _null_touchpoint_seconds(rounds: int = 3, calls: int = 200_000) -> float:
    """Best-of-N price of one disabled tracer touchpoint.

    Each iteration pays a guard read *plus* the no-op call the guard
    exists to skip, so the price is an upper bound on what any real
    call site costs when tracing is off.
    """
    tracer = NULL_TRACER
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(calls):
            if tracer.enabled:
                pass
            tracer.instant("bench", "bench", ii=0)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best / calls


def _measure_observability(workbench_loops) -> dict:
    """Tracing-off overhead + traced-run fingerprint neutrality.

    See the module docstring: touchpoints are counted during a real
    workbench run whose control flow is bit-identical to the untraced
    path, priced by microbenchmark, and compared against that run's
    wall; then a ``RecordingTracer`` run over the same suite must
    reproduce the same fingerprints.
    """
    machine = parse_config(WORKBENCH_MACHINES[0])
    session = SessionConfig(jobs=1, cache=False)
    counting = _CountingNull()
    started = time.perf_counter()
    off_run = schedule_suite(
        machine, workbench_loops, ScheduleRequest(trace=counting),
        session=session,
    )
    wall = time.perf_counter() - started
    per_touchpoint = _null_touchpoint_seconds()
    overhead = (
        per_touchpoint * counting.touchpoints / wall if wall else 0.0
    )

    recording = RecordingTracer()
    traced_run = schedule_suite(
        machine, workbench_loops, ScheduleRequest(trace=recording),
        session=session,
    )
    fingerprints_match = [
        result_fingerprint(r) for r in off_run.results
    ] == [result_fingerprint(r) for r in traced_run.results]

    return {
        "machine": WORKBENCH_MACHINES[0],
        "loops": len(off_run.results),
        "converged": len(off_run.converged),
        "wall_seconds": round(wall, 3),
        "touchpoints": counting.touchpoints,
        "null_touchpoint_ns": round(per_touchpoint * 1e9, 1),
        "overhead_fraction": round(overhead, 5),
        "traced_events": len(recording.events),
        "fingerprints_match_traced": fingerprints_match,
    }


def _gate_observability(section: dict) -> list[str]:
    """The tracer gates (see ``_measure_observability``)."""
    failures: list[str] = []
    if section["overhead_fraction"] >= 0.02:
        failures.append(
            f"tracing-off overhead bound {section['overhead_fraction']:.2%} "
            f"(= {section['touchpoints']} touchpoints x "
            f"{section['null_touchpoint_ns']} ns / "
            f"{section['wall_seconds']} s wall) is not under 2%"
        )
    if not section["fingerprints_match_traced"]:
        failures.append(
            "RecordingTracer workbench run is not fingerprint-identical "
            "to the untraced run"
        )
    if section["traced_events"] == 0:
        failures.append(
            "RecordingTracer saw no events over a full workbench run; "
            "the tracer is not threaded through the engine"
        )
    return failures


def _load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def _pre_pr_wall(pre_pr: dict | None, stress_count: int) -> float | None:
    """Pre-PR engine wall seconds for the first ``stress_count`` loops.

    Stress suites are prefixes of one deterministic stream, so when the
    current count differs from the baseline's (CI runs a smaller subset
    via ``REPRO_BENCH_LOOPS``) the reference wall is the sum of the
    recorded per-loop seconds over the same prefix - the speedup gate
    then applies at every subset size.
    """
    if pre_pr is None:
        return None
    if pre_pr.get("stress_count") == stress_count:
        return pre_pr["stress_wall_seconds"]
    per_loop = pre_pr.get("per_loop_seconds", {})
    names = [f"stress{i}" for i in range(stress_count)]
    if all(name in per_loop for name in names):
        return sum(per_loop[name] for name in names)
    return None


def test_scheduler_throughput(table_sink):
    # Calibration is measured immediately before *and* after the gated
    # workbench phase (best of both) so a noise burst hitting only one
    # side of the ratio is damped.
    calibration = measure_calibration()
    workbench_loops = cached_suite(WORKBENCH_COUNT)
    workbench_entries = []
    workbench_wall = 0.0
    for machine_name in WORKBENCH_MACHINES:
        entry = _run_suite(machine_name, workbench_loops)
        workbench_entries.append(entry)
        workbench_wall += entry["wall_seconds"]
    calibration = min(calibration, measure_calibration())

    payload: dict = {
        "calibration_seconds": round(calibration, 4),
        "workbench": {
            "machines": workbench_entries,
            "count": WORKBENCH_COUNT,
        },
        "stress": {"machines": []},
    }
    payload["workbench"]["wall_seconds"] = round(workbench_wall, 3)
    payload["workbench"]["normalized_wall"] = round(
        workbench_wall / calibration, 2
    )

    stress_count = max(2, loops_for(16) // 4)
    stress_loops = stress_suite(stress_count)
    policy_entries: dict[str, dict] = {}
    for policy in STRESS_POLICIES:
        entry = _run_suite(STRESS_MACHINE, stress_loops, search=policy)
        entry["node_counts"] = [len(g) for g in stress_loops]
        entry["normalized_wall"] = round(
            entry["wall_seconds"] / calibration, 2
        )
        entry["policy"] = policy
        policy_entries[policy] = entry
        payload["stress"]["machines"].append(entry)
    stress_entry = policy_entries["linear"]  # the paper-exact engine
    payload["stress"]["count"] = stress_count
    payload["stress"]["policies"] = sorted(policy_entries)

    # Speculative II-search phase: stress1 serial vs K=4 race; identical
    # fingerprints, provable cancellation, and (under the CI gate) >= 2x
    # wall-clock (see _measure_speculation).
    speculation = _measure_speculation(stress_loops)
    payload["speculation"] = speculation

    # Observability phase: tracing-off touchpoint cost under 2% of
    # wall, traced run fingerprint-identical (see module docstring).
    observability = _measure_observability(workbench_loops)
    payload["observability"] = observability
    observability_failures = _gate_observability(observability)

    # Drained-regime allocator phase: every incremental query replayed
    # against the batch oracle, call for call (see module docstring).
    allocator = _measure_allocator(stress_loops)
    payload["allocator"] = allocator
    allocator_failures: list[str] = []
    if allocator["mismatches"]:
        allocator_failures.append(
            f"incremental colouring diverged from batch allocate_registers "
            f"on {len(allocator['mismatches'])} of {allocator['calls']} "
            f"calls; first: {allocator['mismatches'][0]}"
        )
    if allocator["speedup"] is not None and allocator["speedup"] < 2.0:
        allocator_failures.append(
            f"drained-regime allocation speedup fell below 2x "
            f"(measured {allocator['speedup']}x over {allocator['calls']} "
            f"calls)"
        )

    # Static-certifier phase: zero violations over the workbench and a
    # certify wall under 5% of the equivalent differential run (see
    # _measure_certifier).
    certifier = _measure_certifier(workbench_loops)
    payload["certifier"] = certifier
    certifier_failures = _gate_certifier(certifier)

    baseline = _load_baseline()
    if os.environ.get("REPRO_BENCH_REQUIRE_BASELINE"):
        assert baseline is not None, (
            f"committed baseline {BASELINE_PATH} is missing; the "
            "regression/speedup gates would silently become no-ops"
        )
        assert baseline.get("ii_search"), (
            f"committed baseline {BASELINE_PATH} has no ii_search "
            "section; the policy gates would silently become no-ops"
        )
        assert baseline.get("speculation"), (
            f"committed baseline {BASELINE_PATH} has no speculation "
            "section; the cross-commit fingerprint pin would silently "
            "become a no-op"
        )
    speculation_failures = _gate_speculation(
        speculation, (baseline or {}).get("speculation")
    )
    regression_failure = None
    speedup_failure = None
    if baseline is not None:
        payload["baseline"] = {
            "calibration_seconds": baseline["calibration_seconds"],
            "workbench_normalized_wall": baseline["workbench"][
                "normalized_wall"
            ],
        }
        tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25"))
        counts_match = (
            baseline["workbench"].get("count") == WORKBENCH_COUNT
        )
        if os.environ.get("REPRO_BENCH_REQUIRE_BASELINE"):
            assert counts_match, (
                f"baseline workbench count "
                f"{baseline['workbench'].get('count')} != "
                f"{WORKBENCH_COUNT}: the regression gate would be "
                "silently skipped; regenerate the baseline"
            )
        if counts_match:
            base_norm = baseline["workbench"]["normalized_wall"]
            cur_norm = payload["workbench"]["normalized_wall"]
            regression = cur_norm / base_norm - 1.0
            payload["workbench"]["regression_vs_baseline"] = round(
                regression, 3
            )
            if regression > tolerance:
                regression_failure = (
                    f"workbench scheduling wall-time regressed "
                    f"{regression:.0%} against the committed baseline "
                    f"(normalized {cur_norm} vs {base_norm}, "
                    f"tolerance {tolerance:.0%})"
                )

        pre_pr = baseline.get("pre_pr")
        pre_wall = _pre_pr_wall(pre_pr, stress_count)
        if pre_wall is not None:
            # Both baseline sides were measured on one host; rescale the
            # current stress wall to that host via the calibration ratio,
            # then compare against the recorded pre-PR engine wall (a
            # lower bound when any pre-PR loop hit the measurement cap).
            est_wall = stress_entry["wall_seconds"] * (
                baseline["calibration_seconds"] / calibration
            )
            speedup = pre_wall / est_wall
            payload["stress"]["speedup_vs_pre_pr"] = round(speedup, 1)
            payload["stress"]["speedup_is_lower_bound"] = bool(
                pre_pr.get("capped_loops")
            )
            payload["stress"]["pre_pr"] = pre_pr
            if speedup < 2.0:
                speedup_failure = (
                    f"stress-suite speedup vs the pre-PR engine fell "
                    f"below 2x (measured {speedup:.2f}x)"
                )

    policy_failures = _gate_policies(
        baseline.get("ii_search") if baseline else None,
        policy_entries,
        stress_count,
        tolerance=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        payload=payload,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_scheduler.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    headers = [
        "phase", "machine", "loops", "conv", "wall s", "norm", "plc/s"
    ]
    rows = []
    for entry in payload["workbench"]["machines"]:
        rows.append([
            "workbench", entry["machine"], entry["loops"],
            entry["converged"], entry["wall_seconds"],
            round(entry["wall_seconds"] / calibration, 1),
            entry["placements_per_sec"],
        ])
    for entry in payload["stress"]["machines"]:
        rows.append([
            f"stress/{entry['policy']}", entry["machine"], entry["loops"],
            entry["converged"], entry["wall_seconds"],
            entry["normalized_wall"], entry["placements_per_sec"],
        ])
    for width in ("k1", "k4"):
        entry = speculation[width]
        rows.append([
            f"speculation/{width}", speculation["machine"], 1,
            int(entry["converged"]), entry["wall_seconds"],
            round(entry["wall_seconds"] / calibration, 1), "-",
        ])
    rows.append([
        "observability", observability["machine"], observability["loops"],
        observability["converged"], observability["wall_seconds"],
        round(observability["wall_seconds"] / calibration, 1), "-",
    ])
    for entry in certifier["machines"]:
        rows.append([
            "certifier", entry["machine"], entry["loops"],
            entry["converged"], entry["certify_seconds"],
            round(entry["certify_seconds"] / calibration, 2), "-",
        ])
    certifier_fraction_text = (
        "n/a"
        if certifier["wall_fraction"] is None
        else f"{certifier['wall_fraction']:.2%}"
    )
    note = (
        f"calibration {calibration * 1000:.0f} ms; "
        f"stress speedup vs pre-PR engine: "
        f"{payload['stress'].get('speedup_vs_pre_pr', 'n/a')}x; "
        f"geometric II-search vs committed linear baseline: "
        f"{payload['stress'].get('geometric_speedup_vs_baseline_linear', 'n/a')}x; "
        f"speculative K=4 on {speculation['loop']}: "
        f"{speculation['speedup']}x, fingerprints "
        f"{'match' if speculation['k1']['fingerprint'] == speculation['k4']['fingerprint'] else 'MISMATCH'}; "
        f"incremental allocator vs batch: {allocator['speedup']}x over "
        f"{allocator['calls']} calls, {len(allocator['mismatches'])} mismatches; "
        f"tracing-off overhead bound "
        f"{observability['overhead_fraction']:.2%} over "
        f"{observability['touchpoints']} touchpoints; "
        f"certifier: {certifier['violations']} violations over "
        f"{sum(e['reads'] for e in certifier['machines'])} reads, "
        f"certify/differential wall {certifier_fraction_text}"
    )
    table_sink(
        "scheduler_throughput",
        render_table("Scheduler throughput", headers, rows, note),
    )

    assert regression_failure is None, regression_failure
    assert speedup_failure is None, speedup_failure
    assert policy_failures == [], "; ".join(policy_failures)
    assert speculation_failures == [], "; ".join(speculation_failures)
    assert allocator_failures == [], "; ".join(allocator_failures)
    assert observability_failures == [], "; ".join(observability_failures)
    assert certifier_failures == [], "; ".join(certifier_failures)
    assert all(
        entry["placements"] > 0
        for entry in payload["workbench"]["machines"]
    )
