"""Figure 2: cycle time, area and power of register-file organisations.

Regenerates the three panels of Figure 2 (cycle time / area / power for a
core with 8 GP units + 4 memory ports organised as 1, 2 or 4 clusters,
with 16..128 registers per cluster) from the Rixner-style technology
model, and asserts the paper's anchor facts hold.
"""

from conftest import loops_for  # noqa: F401  (shared conventions)

from repro.eval.experiments import figure2_rows
from repro.eval.reporting import render_table
from repro.machine.config import paper_configuration
from repro.machine.technology import TechnologyModel


def test_figure2(benchmark, table_sink):
    headers, rows, note = benchmark(figure2_rows)
    text = render_table("Figure 2: technology model", headers, rows, note)
    table_sink("figure2", text)

    tech = TechnologyModel()
    unified16 = paper_configuration(1, 16)
    unified32 = paper_configuration(1, 32)
    unified64 = paper_configuration(1, 64)
    clustered = paper_configuration(4, 64)
    # Section 1's anchors.
    assert tech.cycle_time_ns(clustered) < tech.cycle_time_ns(unified16)
    assert 0.7 < tech.area(clustered) / tech.area(unified32) < 1.4
    assert 0.7 < tech.power(clustered) / tech.power(unified16) < 1.4
    # Section 4.2's reduction factors.
    assert 0.10 < tech.area(paper_configuration(4, 16)) / tech.area(unified64) < 0.25
    assert 0.35 < tech.power(paper_configuration(4, 16)) / tech.power(unified64) < 0.65
