"""Figure 5: ideal-memory evaluation of the configuration space.

Execution cycles, memory traffic and execution time for k in {1,2,4},
16..128 registers per cluster, move latency in {1,3}.  Expected shape:

* clustering costs cycles (paper: +8% at k=2, +19% at k=4 with 64 total
  registers) because of move operations and bus conflicts,
* but the clustered configurations win on execution *time* because their
  register files cycle faster,
* the best total register budget is 64 (more registers slow the clock
  for little spill benefit; fewer explode the spill traffic).
"""

from conftest import loops_for

from repro.eval.experiments import figure5_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_figure5(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(8))
    headers, rows, note = benchmark.pedantic(
        figure5_rows,
        args=(loops,),
        kwargs={"session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Figure 5: ideal memory ({len(loops)} loops)", headers, rows, note
    )
    table_sink("figure5", text)

    by_key = {(lm, k, z): (cycles, mem, time)
              for lm, k, z, cycles, mem, time in rows}
    # Clustering costs cycles at equal total registers (64)...
    assert by_key[(1, 4, 16)][0] >= by_key[(1, 1, 64)][0]
    # ...but wins on execution time at the sweet-spot configurations.
    assert by_key[(1, 4, 16)][2] <= by_key[(1, 1, 64)][2] * 1.05
