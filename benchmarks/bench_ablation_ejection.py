"""Ablation: single-victim ejection vs eject-all (Section 3.2.2).

MIRS-C ejects only one node per resource conflict - the one placed
first - where earlier iterative schedulers [6, 16, 28] eject every
conflicting operation.  Expected shape: eject-all discards more useful
work per forcing, burning budget faster and ending at equal-or-worse
IIs, especially on the clustered machines where move reservations make
conflicts frequent.
"""

from conftest import loops_for

from repro.core.params import MirsParams
from repro.eval.reporting import render_table
from repro.eval.runner import schedule_suite
from repro.machine.config import paper_configuration
from repro.workloads.perfect import cached_suite


def _sweep(loops, executor=None):
    rows = []
    for k in (2, 4):
        machine = paper_configuration(k, 32)
        for label, params in (
            ("single victim (paper)", MirsParams()),
            ("eject all [6,16,28]", MirsParams(eject_all=True)),
        ):
            run = schedule_suite(machine, loops, params, session=executor)
            rows.append(
                [
                    k,
                    label,
                    run.sum_ii(),
                    sum(r.stats.ejections for r in run.results),
                    round(run.sum_scheduling_seconds(), 2),
                ]
            )
    return rows


def test_ablation_ejection(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(10))
    rows = benchmark.pedantic(
        _sweep, args=(loops, executor), rounds=1, iterations=1
    )
    headers = ["k", "policy", "sum II", "ejections", "sched time (s)"]
    text = render_table(
        f"Ablation: ejection policy ({len(loops)} loops)",
        headers,
        rows,
        "The paper's single-victim policy should need no more ejections "
        "and reach an equal or lower sum II.",
    )
    table_sink("ablation_ejection", text)
    assert len(rows) == 4
