"""Figure 6: scalability with the number of clusters and buses.

Replicates a GP2M1-REG32 cluster element 1..8 times and sweeps the
inter-cluster bus count over {2, 3, 4, unbounded}.  Expected shape: the
organisation scales whenever the bus count stays close to k/2; with only
2 buses the speedup saturates once the communication demand of ~4+
clusters exceeds the interconnect.
"""

from conftest import loops_for

from repro.eval.experiments import figure6_rows
from repro.eval.reporting import render_table
from repro.workloads.perfect import cached_suite


def test_figure6(benchmark, table_sink, executor):
    loops = cached_suite(loops_for(10))
    headers, rows, note = benchmark.pedantic(
        figure6_rows,
        args=(loops,),
        kwargs={"clusters": (1, 2, 4, 6, 8), "session": executor},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        f"Figure 6: scalability ({len(loops)} loops)", headers, rows, note
    )
    table_sink("figure6", text)

    speedup = {
        (buses, k): s for buses, k, _cycles, s in rows
    }
    # More clusters never slow the (unbounded-bus) machine down much...
    assert speedup[("inf", 8)] >= speedup[("inf", 1)]
    # ...and generous interconnects do at least as well as 2 buses at k=8.
    assert speedup[("inf", 8)] >= speedup[(2, 8)] * 0.95
