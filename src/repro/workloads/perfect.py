"""The "Perfect-Club-like" workbench: 1258 seeded synthetic loops.

Mirrors the paper's workbench description (Section 4): 1258 loops
suitable for software pipelining, with unrolling applied to small loops
to saturate the functional units.  The population mixes several kernel
families in fixed proportions; each family is a
:class:`~repro.workloads.synthetic.GeneratorProfile` specialisation:

========== =====  =============================================
family     share  character
========== =====  =============================================
dense      30 %   big expression trees, few recurrences (BLAS-ish)
reduction  20 %   accumulator recurrences (dot products, sums)
stencil    20 %   many loads per statement, short trees
recurrent  15 %   longer cross-iteration chains, distances 1-4
divheavy    8 %   division/square root present (normalisations)
tiny        7 %   very small bodies - these get unrolled
========== =====  =============================================

Every loop is derived deterministically from (master seed, index), so
the suite is stable across runs, machines and processes.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.graph.ddg import DependenceGraph
from repro.workloads.synthetic import GeneratorProfile, LoopGenerator
from repro.workloads.unroll import SaturationPolicy, saturate

#: The paper's workbench size.
SUITE_SIZE = 1258

#: Default master seed (the publication year, for flavour).
DEFAULT_SEED = 2001


_FAMILIES: list[tuple[str, float, GeneratorProfile]] = [
    (
        "dense",
        0.30,
        GeneratorProfile(
            min_statements=2,
            max_statements=6,
            min_expr_ops=3,
            max_expr_ops=14,
            recurrence_prob=0.15,
            div_prob=0.0,
            sqrt_prob=0.0,
        ),
    ),
    (
        "reduction",
        0.20,
        GeneratorProfile(
            min_statements=1,
            max_statements=3,
            min_expr_ops=2,
            max_expr_ops=8,
            recurrence_prob=1.0,
            max_distance=1,
            div_prob=0.0,
            sqrt_prob=0.0,
        ),
    ),
    (
        "stencil",
        0.20,
        GeneratorProfile(
            min_statements=1,
            max_statements=4,
            min_expr_ops=3,
            max_expr_ops=10,
            load_operand_prob=0.65,
            recurrence_prob=0.1,
            memory_dep_prob=0.35,
            div_prob=0.0,
            sqrt_prob=0.0,
        ),
    ),
    (
        "recurrent",
        0.15,
        GeneratorProfile(
            min_statements=1,
            max_statements=4,
            min_expr_ops=2,
            max_expr_ops=10,
            recurrence_prob=1.0,
            max_distance=4,
            div_prob=0.0,
            sqrt_prob=0.0,
        ),
    ),
    (
        "divheavy",
        0.08,
        GeneratorProfile(
            min_statements=1,
            max_statements=4,
            min_expr_ops=2,
            max_expr_ops=10,
            div_prob=0.25,
            sqrt_prob=0.08,
            recurrence_prob=0.25,
        ),
    ),
    (
        "tiny",
        0.07,
        GeneratorProfile(
            min_statements=1,
            max_statements=2,
            min_expr_ops=1,
            max_expr_ops=3,
            recurrence_prob=0.3,
            div_prob=0.0,
            sqrt_prob=0.0,
        ),
    ),
]


def _family_for(index: int, count: int) -> tuple[str, GeneratorProfile]:
    """Deterministic family assignment honouring the share table."""
    position = (index + 0.5) / count
    acc = 0.0
    for name, share, profile in _FAMILIES:
        acc += share
        if position <= acc:
            return name, profile
    name, _, profile = _FAMILIES[-1]
    return name, profile


@dataclasses.dataclass(frozen=True)
class SuiteLoop:
    """One workbench loop plus its provenance."""

    index: int
    family: str
    unroll_factor: int
    graph: DependenceGraph


def build_loop(index: int, count: int = SUITE_SIZE, seed: int = DEFAULT_SEED) -> SuiteLoop:
    """Build workbench loop ``index`` deterministically."""
    family, profile = _family_for(index, count)
    generator = LoopGenerator(profile)
    graph = generator.generate(
        seed * 1_000_003 + index, name=f"{family}{index}"
    )
    graph, factor = saturate(graph, SaturationPolicy())
    return SuiteLoop(
        index=index, family=family, unroll_factor=factor, graph=graph
    )


def perfect_club_suite(
    count: int = SUITE_SIZE, seed: int = DEFAULT_SEED
) -> list[SuiteLoop]:
    """The workbench: ``count`` loops sampled evenly across the suite.

    ``count < SUITE_SIZE`` picks an evenly spaced, family-balanced subset
    (used by the quick benchmark modes); indices are preserved so results
    from different subset sizes can be joined.
    """
    if count >= SUITE_SIZE:
        indices = range(SUITE_SIZE)
    else:
        step = SUITE_SIZE / count
        indices = (int(i * step) for i in range(count))
    return [build_loop(index, SUITE_SIZE, seed) for index in indices]


@functools.lru_cache(maxsize=8)
def _cached_suite(count: int, seed: int) -> tuple[SuiteLoop, ...]:
    return tuple(perfect_club_suite(count, seed))


def cached_suite(count: int, seed: int = DEFAULT_SEED) -> tuple[SuiteLoop, ...]:
    """Memoised suite construction (benchmarks reuse subsets heavily)."""
    return _cached_suite(count, seed)


def suite_statistics(loops: list[SuiteLoop]) -> dict[str, float]:
    """Structural statistics of a workbench subset (used by tests to pin
    the population against DESIGN.md note (b))."""
    import statistics as stats

    sizes = [len(loop.graph) for loop in loops]
    memory_fraction = [
        sum(1 for n in loop.graph.nodes() if n.kind.is_memory)
        / max(1, len(loop.graph))
        for loop in loops
    ]
    from repro.graph.recurrences import find_recurrences
    from repro.machine.config import parse_config

    machine = parse_config("1-(GP8M4-REG64)")
    with_recurrence = sum(
        1 for loop in loops if find_recurrences(loop.graph, machine)
    )
    with_invariants = sum(1 for loop in loops if loop.graph.invariants())
    return {
        "count": len(loops),
        "mean_size": stats.mean(sizes),
        "max_size": max(sizes),
        "min_size": min(sizes),
        "mean_memory_fraction": stats.mean(memory_fraction),
        "recurrence_share": with_recurrence / max(1, len(loops)),
        "invariant_share": with_invariants / max(1, len(loops)),
        "unrolled_share": sum(
            1 for loop in loops if loop.unroll_factor > 1
        ) / max(1, len(loops)),
    }
