"""Large-loop stress workload for scheduler-throughput benchmarking.

The Perfect-Club-like workbench (:mod:`repro.workloads.perfect`) tops out
around 160 nodes after unrolling; register-pressure-aware scheduling cost
is dominated by much larger loop bodies (fully unrolled kernels, fused
loop nests), which is exactly the regime the incremental pressure engine
(:mod:`repro.schedule.pressure`) targets.  This module generates seeded
100-400 node loops by scaling the synthetic generator profile: more
statements, deeper expression trees, more invariants and recurrences, so
MaxLive comfortably exceeds the register file and the spill heuristic
fires constantly.

Loops are deterministic per (seed, index) like the workbench, so
throughput numbers from different commits are measured on bit-identical
graphs (``benchmarks/bench_scheduler.py`` relies on this).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph
from repro.workloads.synthetic import GeneratorProfile, LoopGenerator

#: Master seed of the stress population (disjoint from the workbench's).
STRESS_SEED = 7001

#: Profile producing ~100-400 node loop bodies with heavy register
#: pressure: many statements, deep trees, frequent recurrences and
#: invariant operands.
STRESS_PROFILE = GeneratorProfile(
    min_statements=8,
    max_statements=22,
    min_expr_ops=6,
    max_expr_ops=16,
    recurrence_prob=0.5,
    max_distance=4,
    div_prob=0.02,
    sqrt_prob=0.0,
    load_operand_prob=0.4,
    invariant_operand_prob=0.15,
    max_invariants=6,
    memory_dep_prob=0.2,
    min_trip=64,
    max_trip=1024,
)

#: Node-count window the population is filtered to.
MIN_NODES = 100
MAX_NODES = 400


def stress_suite(count: int = 8, seed: int = STRESS_SEED) -> list[DependenceGraph]:
    """The first ``count`` stress loops (deterministic, no unrolling).

    One pass over the seeded candidate stream: candidates outside the
    [MIN_NODES, MAX_NODES] window are skipped, so loop ``i`` is the
    ``i``-th in-window graph - stable regardless of how many loops the
    caller requests.
    """
    generator = LoopGenerator(STRESS_PROFILE)
    suite: list[DependenceGraph] = []
    candidate = 0
    limit = 1000 * (count + 1)
    while len(suite) < count:
        if candidate >= limit:
            # The profile currently lands in-window on most candidates;
            # a drastic generator/profile change could starve the filter,
            # and an unbounded loop would hang CI instead of failing.
            raise GraphError(
                f"stress generator produced only {len(suite)} loops in "
                f"[{MIN_NODES}, {MAX_NODES}] nodes after {candidate} "
                f"candidates (wanted {count}); the profile and the "
                "window have drifted apart"
            )
        graph = generator.generate(
            seed * 1_000_003 + candidate, name=f"stress{len(suite)}"
        )
        if MIN_NODES <= len(graph) <= MAX_NODES:
            suite.append(graph)
        candidate += 1
    return suite
