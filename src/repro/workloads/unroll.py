"""Loop unrolling on dependence graphs.

The paper applies unrolling to small loops "in order to saturate the
functional units" (Section 4).  Unrolling by a factor *f* replicates
every node *f* times; a dependence of distance *d* from u to v becomes,
for each replica index j, an edge from ``u_j`` to ``v_(j+d) mod f`` with
distance ``(j + d) // f`` - the classic re-indexing that preserves the
loop's semantics while multiplying the work per iteration.

Memory access patterns are re-indexed consistently: replica j of a
strided access starts ``j * stride`` elements further along and advances
``f * stride`` elements per (unrolled) iteration.  Loop invariants stay
single values consumed by every replica of their consumers.
"""

from __future__ import annotations

import dataclasses
import math
import warnings

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph, MemRef


def unroll(
    graph: DependenceGraph, factor: int, *, remainder: str = "warn"
) -> DependenceGraph:
    """Return a new graph: ``graph`` unrolled ``factor`` times.

    The unrolled graph's trip count is ``ceil(trip_count / factor)``.
    When ``factor`` does not divide ``trip_count`` that *changes the
    iteration space*: the last unrolled iteration executes all replicas,
    i.e. ``factor - trip_count % factor`` surplus original iterations
    (real compilers emit an epilogue; this model has none, and the
    execution simulator runs whatever ``trip_count`` says).  ``remainder``
    selects what to do about it: ``"warn"`` (default) emits a
    ``UserWarning``, ``"raise"`` raises :class:`GraphError`, ``"ignore"``
    stays silent.  The composed unroll factor is recorded on the result
    graph (``DependenceGraph.unroll_factor``) so downstream consumers can
    reason about the transformed iteration space.
    """
    if factor < 1:
        raise GraphError("unroll factor must be >= 1")
    if remainder not in ("warn", "raise", "ignore"):
        raise GraphError(f"unknown remainder policy {remainder!r}")
    if factor == 1:
        return graph.clone()
    leftover = graph.trip_count % factor
    if leftover:
        message = (
            f"unroll factor {factor} does not divide trip count "
            f"{graph.trip_count} of loop {graph.name!r}: the unrolled "
            f"loop executes {factor - leftover} surplus iteration(s)"
        )
        if remainder == "raise":
            raise GraphError(message)
        if remainder == "warn":
            warnings.warn(message, UserWarning, stacklevel=2)

    result = DependenceGraph(
        name=f"{graph.name}@x{factor}",
        trip_count=max(1, math.ceil(graph.trip_count / factor)),
    )
    result.unroll_factor = factor * graph.unroll_factor
    result.source_trip_count = graph.source_trip_count
    # node id -> list of replica nodes
    replicas: dict[int, list] = {}
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        copies = []
        for j in range(factor):
            mem_ref = node.mem_ref
            if mem_ref is not None:
                mem_ref = MemRef(
                    array=mem_ref.array,
                    offset=mem_ref.offset + j * mem_ref.stride,
                    stride=mem_ref.stride * factor,
                    element_size=mem_ref.element_size,
                )
            copy = result.new_node(
                node.kind,
                name=f"{node.name}_u{j}",
                mem_ref=mem_ref,
                latency_override=node.latency_override,
            )
            copies.append(copy)
        replicas[node.id] = copies

    for edge in graph.edges():
        for j in range(factor):
            target_index = (j + edge.distance) % factor
            new_distance = (j + edge.distance) // factor
            result.add_edge(
                replicas[edge.src][j].id,
                replicas[edge.dst][target_index].id,
                kind=edge.kind,
                distance=new_distance,
                latency=edge.latency,
            )

    for invariant in graph.invariants():
        consumers = set()
        for consumer in invariant.consumers:
            consumers.update(copy.id for copy in replicas[consumer])
        copy = result.new_invariant(consumers=consumers, mem_ref=invariant.mem_ref)
        copy.name = invariant.name
    result.validate()
    return result


@dataclasses.dataclass(frozen=True)
class SaturationPolicy:
    """When and how much to unroll for FU saturation.

    Attributes:
        target_compute_ops: unroll until the loop holds at least this
            many compute operations (enough work for 8 GP units at a
            useful II).
        max_factor: never unroll beyond this factor.
        max_nodes: stop unrolling before the loop exceeds this size.
    """

    target_compute_ops: int = 16
    max_factor: int = 8
    max_nodes: int = 160


def saturate(graph: DependenceGraph, policy: SaturationPolicy | None = None):
    """Unroll a small loop enough to saturate a wide core.

    Returns ``(graph, factor)``; the graph is returned unchanged (not
    cloned) when no unrolling is needed.

    Among the factors within the policy's budget, one that *divides* the
    trip count is preferred (largest such, searching down from the
    saturation target): a dividing factor keeps the unrolled iteration
    space exactly equivalent to the original loop, which the execution
    simulator's differential validation relies on.  When no factor >= 2
    divides the trip count the saturation target is used as is - a
    deliberate, documented trade (saturation over exact iteration
    count), so the unroll is performed with ``remainder="ignore"``
    rather than warning on every workbench build; the surplus remains
    visible through ``unroll_factor`` and ``trip_count`` on the result.
    """
    policy = policy or SaturationPolicy()
    compute_ops = sum(1 for n in graph.nodes() if n.kind.is_compute)
    if compute_ops == 0:
        return graph, 1
    factor = min(
        policy.max_factor,
        max(1, math.ceil(policy.target_compute_ops / compute_ops)),
    )
    while factor > 1 and factor * len(graph) > policy.max_nodes:
        factor -= 1
    if factor <= 1:
        return graph, 1
    if graph.trip_count % factor:
        for candidate in range(factor - 1, 1, -1):
            if graph.trip_count % candidate == 0:
                factor = candidate
                break
    return unroll(graph, factor, remainder="ignore"), factor
