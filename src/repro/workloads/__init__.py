"""Workloads: the synthetic Perfect-Club-like loop suite (DESIGN.md note b)."""

from repro.workloads.synthetic import GeneratorProfile, LoopGenerator
from repro.workloads.perfect import perfect_club_suite, suite_statistics
from repro.workloads.unroll import unroll

__all__ = [
    "GeneratorProfile",
    "LoopGenerator",
    "perfect_club_suite",
    "suite_statistics",
    "unroll",
]
