"""Synthetic loop generator with Perfect-Club-like structure.

The paper's workbench is the set of 1258 software-pipelineable loops of
the Perfect Club benchmarks [2].  Those Fortran sources are not
available, so this generator produces seeded random dependence graphs
whose structural statistics follow what the software-pipelining
literature reports for that suite (DESIGN.md substitution note (b)):

* loop bodies are collections of *statements*: expression trees over
  array loads, loop invariants and earlier statement results, stored back
  to arrays;
* ~30 % of operations are memory accesses, mostly stride-1 with some
  stride-k and indirect-like patterns;
* a third of the loops carry recurrences (accumulators and short
  cross-iteration chains) with distances 1-4;
* division appears in a small fraction of loops, square root rarely;
* several loop-invariant values (scalars held in registers) feed the
  computation;
* trip counts span two orders of magnitude.

Every loop is produced from a single integer seed, so the whole suite is
reproducible bit-for-bit and both schedulers always see identical graphs.
"""

from __future__ import annotations

import dataclasses
import random

from repro.graph.ddg import DependenceGraph, DepKind
from repro.machine.resources import OpKind


@dataclasses.dataclass(frozen=True)
class GeneratorProfile:
    """Knobs of the synthetic loop population.

    The defaults describe the general numeric-loop mix; the suite in
    :mod:`repro.workloads.perfect` derives specialised profiles
    (reductions, stencils, dense kernels) from this one.
    """

    #: bounds on the number of *statements* (store-rooted trees).
    min_statements: int = 1
    max_statements: int = 6
    #: bounds on arithmetic operations per statement.
    min_expr_ops: int = 1
    max_expr_ops: int = 12
    #: probability that a loop carries at least one recurrence.
    recurrence_prob: float = 0.35
    #: maximum recurrence distance.
    max_distance: int = 4
    #: probability that an expression node is a division.
    div_prob: float = 0.04
    #: probability that an expression node is a square root.
    sqrt_prob: float = 0.01
    #: probability of an extra load operand (vs reusing a prior value).
    load_operand_prob: float = 0.45
    #: probability of an invariant operand.
    invariant_operand_prob: float = 0.12
    #: number of distinct invariants available to the loop.
    max_invariants: int = 4
    #: probability of a cross-statement memory dependence.
    memory_dep_prob: float = 0.15
    #: trip count bounds (log-uniform).
    min_trip: int = 16
    max_trip: int = 2048
    #: probability that a load uses a non-unit stride.
    strided_prob: float = 0.2
    max_stride: int = 8


class LoopGenerator:
    """Seeded generator of synthetic numeric loops."""

    def __init__(self, profile: GeneratorProfile | None = None):
        self.profile = profile or GeneratorProfile()

    # ------------------------------------------------------------------

    def generate(self, seed: int, name: str | None = None) -> DependenceGraph:
        """Produce one loop from the given seed."""
        rng = random.Random(seed)
        profile = self.profile
        trip = self._trip_count(rng)
        graph = DependenceGraph(
            name=name or f"synth{seed}", trip_count=trip
        )
        invariants = [
            graph.new_invariant()
            for _ in range(rng.randint(0, profile.max_invariants))
        ]
        arrays = iter(range(1, 10_000))
        produced: list[int] = []  # ids of value-producing nodes
        stores: list[int] = []
        loads_by_array: dict[int, int] = {}

        statements = rng.randint(profile.min_statements, profile.max_statements)
        for _ in range(statements):
            root = self._expression(
                graph, rng, produced, invariants, arrays, loads_by_array
            )
            store = graph.new_node(
                OpKind.STORE,
                mem_ref=self._mem_ref(rng, next(arrays)),
            )
            graph.add_edge(root, store.id, kind=DepKind.REG, distance=0)
            stores.append(store.id)
            produced.append(root)

        if rng.random() < profile.recurrence_prob:
            self._add_recurrences(graph, rng, produced)

        if stores and rng.random() < profile.memory_dep_prob:
            self._add_memory_dep(graph, rng, stores, loads_by_array)

        graph.validate()
        return graph

    # ------------------------------------------------------------------

    def _trip_count(self, rng: random.Random) -> int:
        profile = self.profile
        low, high = profile.min_trip, profile.max_trip
        # Log-uniform: small trip counts are as common as large ones.
        import math

        return int(
            round(
                math.exp(
                    rng.uniform(math.log(low), math.log(high))
                )
            )
        )

    def _mem_ref(self, rng: random.Random, array: int):
        from repro.graph.ddg import MemRef

        profile = self.profile
        stride = 1
        if rng.random() < profile.strided_prob:
            stride = rng.randint(2, profile.max_stride)
        return MemRef(array=array, offset=0, stride=stride)

    def _compute_kind(self, rng: random.Random) -> OpKind:
        profile = self.profile
        roll = rng.random()
        if roll < profile.div_prob:
            return OpKind.DIV
        if roll < profile.div_prob + profile.sqrt_prob:
            return OpKind.SQRT
        return OpKind.ADD if rng.random() < 0.55 else OpKind.MUL

    def _operand(
        self,
        graph: DependenceGraph,
        rng: random.Random,
        produced: list[int],
        invariants: list,
        arrays,
        loads_by_array: dict[int, int],
    ) -> tuple[int | None, object | None]:
        """An operand: (node id, None) or (None, invariant)."""
        profile = self.profile
        roll = rng.random()
        if invariants and roll < profile.invariant_operand_prob:
            return None, rng.choice(invariants)
        if produced and roll > profile.invariant_operand_prob + (
            profile.load_operand_prob
        ):
            return rng.choice(produced), None
        load = graph.new_node(
            OpKind.LOAD, mem_ref=self._mem_ref(rng, next(arrays))
        )
        loads_by_array[load.mem_ref.array] = load.id
        return load.id, None

    def _expression(
        self,
        graph: DependenceGraph,
        rng: random.Random,
        produced: list[int],
        invariants: list,
        arrays,
        loads_by_array: dict[int, int],
    ) -> int:
        """Build one expression tree; returns the root node id."""
        profile = self.profile
        op_count = rng.randint(profile.min_expr_ops, profile.max_expr_ops)
        current: int | None = None
        for _ in range(op_count):
            kind = self._compute_kind(rng)
            node = graph.new_node(kind)
            operand_count = 1 if kind is OpKind.SQRT else 2
            operands_needed = operand_count - (1 if current is not None else 0)
            if current is not None:
                graph.add_edge(current, node.id, kind=DepKind.REG, distance=0)
            for _ in range(operands_needed):
                op_id, invariant = self._operand(
                    graph, rng, produced, invariants, arrays, loads_by_array
                )
                if invariant is not None:
                    invariant.consumers.add(node.id)
                else:
                    graph.add_edge(
                        op_id, node.id, kind=DepKind.REG, distance=0
                    )
            produced.append(node.id)
            current = node.id
        assert current is not None
        return current

    def _add_recurrences(
        self, graph: DependenceGraph, rng: random.Random, produced: list[int]
    ) -> None:
        """Turn 1-2 value chains into loop-carried recurrences."""
        profile = self.profile
        count = 1 if rng.random() < 0.7 else 2
        compute_nodes = [
            n.id for n in graph.nodes() if n.kind.is_compute
        ]
        if not compute_nodes:
            return
        for _ in range(count):
            tail = rng.choice(compute_nodes)
            # Choose a head among the (transitive) producers of the tail
            # so the back edge closes a genuine circuit; falling back to a
            # self-recurrence (accumulator) when the tail has none.
            head = tail
            frontier = [tail]
            ancestors: list[int] = []
            seen = {tail}
            while frontier:
                node = frontier.pop()
                for edge in graph.in_edges(node):
                    if edge.distance == 0 and edge.src not in seen:
                        seen.add(edge.src)
                        if graph.node(edge.src).kind.is_compute:
                            ancestors.append(edge.src)
                        frontier.append(edge.src)
            if ancestors and rng.random() < 0.6:
                head = rng.choice(ancestors)
            distance = rng.randint(1, profile.max_distance)
            graph.add_edge(tail, head, kind=DepKind.REG, distance=distance)

    def _add_memory_dep(
        self,
        graph: DependenceGraph,
        rng: random.Random,
        stores: list[int],
        loads_by_array: dict[int, int],
    ) -> None:
        """A store -> load ordering dependence across iterations."""
        loads = [
            n.id for n in graph.nodes() if n.kind is OpKind.LOAD
        ]
        if not loads:
            return
        store = rng.choice(stores)
        load = rng.choice(loads)
        graph.add_edge(
            store, load, kind=DepKind.MEM, distance=rng.randint(1, 2)
        )
