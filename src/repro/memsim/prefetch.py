"""Selective binding prefetching (Section 4.3, following [30]).

*Binding prefetching* schedules load instructions assuming the cache
**miss** latency instead of the hit latency: the value arrives early
enough to cover a miss, at the price of a much longer lifetime and hence
higher register pressure.  It adds no memory traffic (unlike software
prefetch instructions).

The *selective* policy used by the paper keeps hit latency for:

* loads that belong to recurrences (stretching a recurrence inflates the
  RecMII directly),
* spill loads (their reload slots are compiler-private and hot),
* every load of a loop with a small trip count (long prologues/epilogues
  would dominate short executions).

All other loads are scheduled with the miss latency of the target
configuration (25 ns scaled by cycle time).
"""

from __future__ import annotations

import dataclasses

from repro.graph.ddg import DependenceGraph
from repro.graph.recurrences import find_recurrences
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.machine.technology import TechnologyModel


@dataclasses.dataclass(frozen=True)
class PrefetchPolicy:
    """Parameters of the selective binding prefetch decision."""

    #: loops at or below this trip count keep hit latency everywhere.
    short_trip_threshold: int = 32
    #: apply the recurrence exemption.
    exempt_recurrences: bool = True
    #: apply the spill-load exemption.
    exempt_spills: bool = True


def apply_binding_prefetch(
    graph: DependenceGraph,
    machine: MachineConfig,
    technology: TechnologyModel | None = None,
    policy: PrefetchPolicy | None = None,
) -> DependenceGraph:
    """Return a copy of ``graph`` with prefetched loads re-latencied.

    The returned graph's selected load nodes carry a
    ``latency_override`` equal to the configuration's miss latency; the
    schedulers and the stall model both honour it.
    """
    technology = technology or TechnologyModel()
    policy = policy or PrefetchPolicy()
    result = graph.clone()
    miss_latency = technology.miss_latency_cycles(machine)

    if graph.trip_count <= policy.short_trip_threshold:
        return result

    recurrence_members: set[int] = set()
    if policy.exempt_recurrences:
        for recurrence in find_recurrences(result, machine):
            recurrence_members |= recurrence.nodes

    for node in result.nodes():
        if node.kind is not OpKind.LOAD:
            continue
        if policy.exempt_spills and node.is_spill:
            continue
        if node.id in recurrence_members:
            continue
        node.latency_override = miss_latency
    return result


def prefetched_load_ids(graph: DependenceGraph) -> set[int]:
    """Loads that were scheduled with miss latency."""
    return {
        node.id
        for node in graph.nodes()
        if node.kind is OpKind.LOAD and node.latency_override is not None
    }
