"""A lockup-free set-associative cache simulator.

Models the cache of Section 4.3: 32 KB, 32-byte lines, multi-ported,
lockup-free with up to 8 pending misses (MSHRs).  The simulator is a
functional (timing-light) model: it tracks hits and misses per memory
operation; the translation of misses into processor stall cycles is the
job of :mod:`repro.memsim.stall`, which accounts for latency tolerance
and miss overlap.

The paper does not state the associativity; we use 2-way LRU and record
that choice in DESIGN.md note (d) territory - direct-mapped and 4-way are
exposed for sensitivity testing.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of the simulated cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 2
    mshrs: int = 8
    read_hit_latency: int = 2
    write_hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache size and line size must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                "cache size must be a multiple of line size x associativity"
            )
        if self.associativity < 1:
            raise ConfigError("associativity must be at least 1")
        if self.mshrs < 1:
            raise ConfigError("a lockup-free cache needs at least one MSHR")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class LockupFreeCache:
    """Functional cache model with LRU replacement.

    Access order should follow program order (the schedule's issue order)
    so that intra-loop reuse and conflict behaviour are realistic.
    """

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        # set index -> list of tags, most recently used last.
        self._sets: dict[int, list[int]] = {}
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets.clear()
        self.hits = 0
        self.misses = 0

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        Writes allocate (write-allocate policy) - a reasonable default
        for numeric store-streams and consistent across configurations.
        """
        cfg = self.config
        line = address // cfg.line_bytes
        index = line % cfg.num_sets
        tag = line // cfg.num_sets
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > cfg.associativity:
            ways.pop(0)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
