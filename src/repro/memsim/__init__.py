"""Memory-hierarchy substrate for the Section 4.3 experiments.

Implements the paper's memory system: a multi-ported, lockup-free 32 KB
cache with 32-byte lines and up to 8 pending misses, hit latencies of
2 (read) / 1 (write) cycles and a 25 ns miss latency converted to cycles
per configuration - plus the *selective binding prefetching* policy of
Sánchez & González [30] used to tolerate misses.

:class:`MemoryModel` predicts stall cycles *analytically* from miss
rates and latency tolerance; the execution simulator of
:mod:`repro.sim` drives the same :class:`LockupFreeCache` bundle by
bundle while running generated code (:mod:`repro.codegen`), so stalls
are also *observed* and the two can be compared per loop
(``repro.eval.experiments.simulator_rows``).
"""

from repro.memsim.cache import CacheConfig, LockupFreeCache
from repro.memsim.trace import loop_miss_rates
from repro.memsim.prefetch import apply_binding_prefetch, PrefetchPolicy
from repro.memsim.stall import MemoryModel, StallReport

__all__ = [
    "CacheConfig",
    "LockupFreeCache",
    "loop_miss_rates",
    "apply_binding_prefetch",
    "PrefetchPolicy",
    "MemoryModel",
    "StallReport",
]
