"""Address-trace generation and per-operation miss rates for one loop.

Every memory node of a dependence graph carries a :class:`MemRef`
describing a strided access stream.  The trace generator replays those
streams in schedule order for a window of iterations through the cache
simulator and reports a per-node miss rate, which the stall model then
weighs against each load's latency tolerance.
"""

from __future__ import annotations

from repro.graph.ddg import DependenceGraph
from repro.memsim.cache import CacheConfig, LockupFreeCache

#: Iterations simulated per loop; enough for the streams to reach steady
#: state while keeping the simulation cheap.  The miss *rate* is what the
#: stall model consumes, so truncation does not bias long loops.
DEFAULT_WINDOW = 512


def loop_miss_rates(
    graph: DependenceGraph,
    times: dict[int, int] | None = None,
    cache_config: CacheConfig | None = None,
    window: int | None = None,
) -> dict[int, float]:
    """Per-memory-node miss rates over a simulated iteration window.

    Args:
        graph: the (scheduled) loop; spill nodes included.
        times: issue cycles used to order accesses within an iteration
            (program order by node id when omitted).
        cache_config: cache geometry (paper defaults when omitted).
        window: iterations to simulate (bounded by the trip count).

    Returns:
        node id -> miss rate in [0, 1] for every memory node.
    """
    memory_nodes = [n for n in graph.nodes() if n.kind.is_memory]
    if not memory_nodes:
        return {}
    if times:
        memory_nodes.sort(key=lambda n: (times.get(n.id, 0), n.id))
    else:
        memory_nodes.sort(key=lambda n: n.id)

    iterations = min(
        window or DEFAULT_WINDOW, max(1, graph.trip_count)
    )
    cache = LockupFreeCache(cache_config)
    hits = {n.id: 0 for n in memory_nodes}
    misses = {n.id: 0 for n in memory_nodes}
    from repro.machine.resources import OpKind

    for iteration in range(iterations):
        for node in memory_nodes:
            ref = node.mem_ref
            if ref is None:
                # No access pattern recorded: assume it always hits (a
                # register-like scratch location).
                hits[node.id] += 1
                continue
            hit = cache.access(
                ref.address(iteration), is_write=node.kind is OpKind.STORE
            )
            if hit:
                hits[node.id] += 1
            else:
                misses[node.id] += 1

    rates = {}
    for node in memory_nodes:
        total = hits[node.id] + misses[node.id]
        rates[node.id] = misses[node.id] / total if total else 0.0
    return rates
