"""Stall model: translating cache misses into processor stall cycles.

The paper's Section 4.3 breaks execution into *useful* cycles (the
software-pipelined kernel doing work) and *stall* cycles (the processor
blocked on a cache miss).  With a lockup-free cache the processor only
blocks when a *dependent* instruction needs the datum before the miss
completes, so each load's stall contribution is::

    miss_rate * max(0, miss_latency - tolerated_latency)

where ``tolerated_latency`` is the scheduled distance (in cycles,
including ``II x distance`` for loop-carried uses) between the load's
issue and its earliest consumer's issue.  Loads scheduled with binding
prefetching tolerate the full miss latency by construction and therefore
never stall.

Miss overlap: the cache sustains up to 8 pending misses, so stalls from
independent loads in the same iteration overlap; we divide the summed
stall by the achievable overlap factor ``min(MSHRs, missing loads per
iteration)`` - a standard analytic treatment of non-blocking caches.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import ScheduleResult
from repro.graph.ddg import DepKind
from repro.machine.resources import OpKind
from repro.machine.technology import TechnologyModel
from repro.memsim.cache import CacheConfig
from repro.memsim.trace import loop_miss_rates


@dataclasses.dataclass(frozen=True)
class StallReport:
    """Useful/stall cycle split for one scheduled loop."""

    loop: str
    useful_cycles: float
    stall_cycles: float
    miss_rate: float
    prefetched_loads: int
    total_loads: int

    @property
    def total_cycles(self) -> float:
        return self.useful_cycles + self.stall_cycles


class MemoryModel:
    """Evaluates a :class:`ScheduleResult` under the real-memory model."""

    def __init__(
        self,
        technology: TechnologyModel | None = None,
        cache_config: CacheConfig | None = None,
    ):
        self.technology = technology or TechnologyModel()
        self.cache_config = cache_config or CacheConfig()

    # ------------------------------------------------------------------

    def evaluate(
        self, result: ScheduleResult, iterations: int | None = None
    ) -> StallReport:
        """Useful/stall breakdown of one converged schedule.

        ``iterations`` overrides the loop's trip count — used by the
        measured-vs-analytic comparison against :mod:`repro.sim`, whose
        execution simulator runs a configurable number of iterations and
        *observes* the stalls this model predicts.
        """
        if not result.converged or result.graph is None:
            raise ValueError("stall model needs a converged schedule")
        trip_count = result.trip_count if iterations is None else iterations
        graph = result.graph
        machine = result.machine
        miss_latency = self.technology.miss_latency_cycles(machine)
        miss_rates = loop_miss_rates(
            graph, result.times, self.cache_config
        )

        stall_per_iteration = 0.0
        missing_loads = 0
        prefetched = 0
        loads = 0
        weighted_misses = 0.0
        for node in graph.nodes():
            if node.kind is not OpKind.LOAD:
                continue
            loads += 1
            rate = miss_rates.get(node.id, 0.0)
            weighted_misses += rate
            if node.latency_override is not None:
                # Binding-prefetched: scheduled at miss latency, covered.
                prefetched += 1
                continue
            tolerated = self._tolerated_latency(result, node.id)
            penalty = max(0, miss_latency - tolerated)
            if rate > 0 and penalty > 0:
                missing_loads += 1
                stall_per_iteration += rate * penalty

        overlap = max(1, min(self.cache_config.mshrs, missing_loads))
        stall_per_iteration /= overlap

        overlap_stages = max(0, result.stage_count - 1)
        useful = float(result.ii * (trip_count + overlap_stages))
        stall = stall_per_iteration * trip_count
        miss_rate = weighted_misses / loads if loads else 0.0
        return StallReport(
            loop=result.loop,
            useful_cycles=useful,
            stall_cycles=stall,
            miss_rate=miss_rate,
            prefetched_loads=prefetched,
            total_loads=loads,
        )

    # ------------------------------------------------------------------

    def _tolerated_latency(self, result: ScheduleResult, load_id: int) -> int:
        """Cycles between the load's issue and its earliest consumer."""
        graph = result.graph
        ii = result.ii
        issue = result.times[load_id]
        tolerated = None
        for edge in graph.out_edges(load_id):
            if edge.kind is not DepKind.REG:
                continue
            if edge.dst not in result.times:
                continue
            distance = result.times[edge.dst] + ii * edge.distance - issue
            tolerated = distance if tolerated is None else min(tolerated, distance)
        if tolerated is None:
            # Dead load: nothing ever waits for it.
            return 10**9
        return max(0, tolerated)

    # ------------------------------------------------------------------

    def execution_time_ns(self, result: ScheduleResult) -> float:
        """Total execution time including stalls, in nanoseconds."""
        report = self.evaluate(result)
        return self.technology.execution_time_ns(
            result.machine, report.total_cycles
        )
