"""The modulo reservation table (MRT).

A modulo schedule at initiation interval II repeats every II cycles, so a
resource used at cycle *t* is used at *every* cycle congruent with
``t mod II``.  The MRT therefore has II rows per resource instance, and an
operation can be placed at cycle *t* only if every resource step of its
reservation table finds a free instance at the corresponding row.

Two non-trivial cases (both called out by the paper):

* unpipelined operations reserve the *same* FU instance for several
  consecutive rows; if their occupancy exceeds II the reservation
  collides with itself and the placement is impossible at this II;
* move operations reserve resources in *two* clusters plus a global bus
  (the "complex reservation table" of Section 1), which is what makes
  them hard to place and ejection so valuable.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.graph.ddg import Node
from repro.machine.config import MachineConfig
from repro.machine.reservation import ClusterRole, reservation_steps
from repro.machine.resources import ResourceClass


class ModuloReservationTable:
    """Tracks resource occupancy per (resource class, cluster, instance, row)."""

    def __init__(self, machine: MachineConfig, ii: int):
        if ii < 1:
            raise SchedulingError("initiation interval must be positive")
        self.machine = machine
        self.ii = ii
        # (resource, cluster) -> list over instances of row->node_id dicts.
        # Buses use cluster = -1.  Unbounded buses are not tracked at all.
        self._tables: dict[tuple[ResourceClass, int], list[dict[int, int]]] = {}
        for cluster in range(machine.clusters):
            for resource in (
                ResourceClass.GP_FU,
                ResourceClass.MEM_PORT,
                ResourceClass.OUT_PORT,
                ResourceClass.IN_PORT,
            ):
                count = machine.instances(resource)
                self._tables[(resource, cluster)] = [dict() for _ in range(count)]
        if machine.buses is not None:
            self._tables[(ResourceClass.BUS, -1)] = [
                dict() for _ in range(machine.buses)
            ]
        # node_id -> list of (resource, cluster, instance, row) it holds.
        self._held: dict[int, list[tuple[ResourceClass, int, int, int]]] = {}
        # Reservation tables are identical for all operations of a kind on
        # a given machine; cache them per MRT.
        self._steps_cache: dict = {}

    # ------------------------------------------------------------------
    # Step resolution
    # ------------------------------------------------------------------

    def _resolved_groups(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None,
    ) -> list[tuple[ResourceClass, int, list[int]]] | None:
        """Resolve the node's reservation steps at the given placement.

        Returns a list of (resource, cluster, rows) groups, where each
        group must be satisfied by a *single* resource instance free at
        all its rows.  Returns ``None`` when the reservation collides with
        itself (occupancy > II on one instance).
        """
        steps = self._steps_cache.get(node.kind)
        if steps is None:
            steps = reservation_steps(node.kind, self.machine)
            self._steps_cache[node.kind] = steps
        groups: list[tuple[ResourceClass, int, list[int]]] = []
        for step in steps:
            if step.role is ClusterRole.SELF:
                target = cluster
            elif step.role is ClusterRole.SOURCE:
                if src_cluster is None:
                    raise SchedulingError(
                        f"move node {node.id} placed without a source cluster"
                    )
                target = src_cluster
            else:
                target = -1
            if step.resource is ResourceClass.BUS and self.machine.buses is None:
                continue  # unbounded interconnect: never a constraint
            rows = [
                (cycle + step.offset + i) % self.ii for i in range(step.duration)
            ]
            if len(set(rows)) < len(rows):
                return None  # self-collision: occupancy exceeds II
            groups.append((step.resource, target, rows))
        return groups

    def _free_instance(
        self, resource: ResourceClass, cluster: int, rows: list[int]
    ) -> int | None:
        """First instance with all the given rows free, or ``None``."""
        for index, table in enumerate(self._tables[(resource, cluster)]):
            if all(row not in table for row in rows):
                return index
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def can_place(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None = None,
    ) -> bool:
        """True if the node fits at (cluster, cycle) without conflicts."""
        groups = self._resolved_groups(node, cluster, cycle, src_cluster)
        if groups is None:
            return False
        return all(
            self._free_instance(resource, target, rows) is not None
            for resource, target, rows in groups
        )

    def feasible_at_ii(
        self,
        node: Node,
        cluster: int,
        src_cluster: int | None = None,
    ) -> bool:
        """True unless the node's reservation self-collides at this II
        (which no amount of ejection can fix)."""
        return self._resolved_groups(node, cluster, 0, src_cluster) is not None

    def blocking_nodes(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None = None,
    ) -> set[int]:
        """Nodes that currently block this placement.

        For each resource group the instance with the fewest distinct
        occupants is considered (that is the instance a forced placement
        would evict from), and those occupants are returned.
        """
        groups = self._resolved_groups(node, cluster, cycle, src_cluster)
        if groups is None:
            raise SchedulingError(
                f"node {node.id} cannot be force-placed at II={self.ii}: "
                "its reservation table collides with itself"
            )
        victims: set[int] = set()
        for resource, target, rows in groups:
            tables = self._tables[(resource, target)]
            best: set[int] | None = None
            for table in tables:
                occupants = {table[row] for row in rows if row in table}
                if not occupants:
                    best = set()
                    break
                if best is None or len(occupants) < len(best):
                    best = occupants
            if best:
                victims |= best
        return victims

    def reservation_groups(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None = None,
    ) -> list[tuple[ResourceClass, int, list[int]]] | None:
        """The node's resolved reservation groups at a placement.

        Each ``(resource, cluster, rows)`` group must be satisfied by a
        single resource instance free at all its rows; ``None`` means
        the reservation collides with itself at this II.  Public for the
        independent verifier, which solves the instance-assignment
        problem exactly instead of replaying this table's first-fit
        (whose success is placement-order-dependent for multi-row
        reservations such as unpipelined divides).
        """
        return self._resolved_groups(node, cluster, cycle, src_cluster)

    def instance_count(self, resource: ResourceClass, cluster: int) -> int:
        """Physical instances backing a (resource, cluster) pool."""
        return len(self._tables[(resource, cluster)])

    def occupancy_fraction(
        self, resource: ResourceClass, cluster: int
    ) -> float:
        """Fraction of this resource's MRT slots currently occupied."""
        key = (resource, cluster if not resource.is_global else -1)
        if key not in self._tables:
            return 0.0
        tables = self._tables[key]
        total = len(tables) * self.ii
        if total == 0:
            return 1.0
        used = sum(len(table) for table in tables)
        return used / total

    def holds(self, node_id: int) -> bool:
        return node_id in self._held

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def place(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None = None,
    ) -> None:
        """Reserve the node's resources; raises on conflict."""
        if node.id in self._held:
            raise SchedulingError(f"node {node.id} is already placed")
        groups = self._resolved_groups(node, cluster, cycle, src_cluster)
        if groups is None:
            raise SchedulingError(
                f"node {node.id} self-collides at II={self.ii}"
            )
        held: list[tuple[ResourceClass, int, int, int]] = []
        for resource, target, rows in groups:
            instance = self._free_instance(resource, target, rows)
            if instance is None:
                # Roll back partial reservations before failing.
                for res, tgt, inst, row in held:
                    del self._tables[(res, tgt)][inst][row]
                raise SchedulingError(
                    f"resource conflict placing node {node.id} at "
                    f"cluster {cluster} cycle {cycle}"
                )
            table = self._tables[(resource, target)][instance]
            for row in rows:
                table[row] = node.id
                held.append((resource, target, instance, row))
        self._held[node.id] = held

    def remove(self, node_id: int) -> None:
        """Release every reservation held by the node."""
        held = self._held.pop(node_id, None)
        if held is None:
            raise SchedulingError(f"node {node_id} holds no reservations")
        for resource, target, instance, row in held:
            del self._tables[(resource, target)][instance][row]
