"""The partial schedule S built incrementally by the iterative algorithm.

Tracks, for every scheduled node, its absolute issue cycle and cluster,
the order in which nodes were placed (the `Forcing_and_Ejection` heuristic
evicts the node "that was first placed in the partial schedule S"), and
the `Prev_Cycle` memory that steers forced placements away from a node's
previous position (Section 3.2.2, following Huff [16]).
"""

from __future__ import annotations

import itertools

from repro.errors import SchedulingError
from repro.graph.ddg import Node
from repro.machine.config import MachineConfig
from repro.schedule.mrt import ModuloReservationTable


class PartialSchedule:
    """Placement state of one scheduling attempt at a fixed II."""

    def __init__(self, machine: MachineConfig, ii: int):
        self.machine = machine
        self.ii = ii
        self.mrt = ModuloReservationTable(machine, ii)
        self._time: dict[int, int] = {}
        self._cluster: dict[int, int] = {}
        self._seq: dict[int, int] = {}
        #: MRT-row index: row -> {node id -> cluster}, in placement
        #: order (insertion-ordered dicts), maintained on place/eject so
        #: the spill-eject fallback is O(nodes in the row) instead of
        #: O(all scheduled nodes) per ejection decision.
        self._rows: dict[int, dict[int, int]] = {}
        self._counter = itertools.count()
        # Survives ejections (but not II restarts): the cycle each node
        # occupied the last time it was scheduled.
        self.prev_cycle: dict[int, int] = {}
        #: Placement observers (the incremental pressure tracker).  Each
        #: listener may implement ``on_place(node, cluster, cycle)`` and
        #: ``on_eject(node_id)``; notifications fire *after* the
        #: schedule's own state changed.
        self.listeners: list = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_scheduled(self, node_id: int) -> bool:
        return node_id in self._time

    def time(self, node_id: int) -> int:
        if node_id not in self._time:
            raise SchedulingError(f"node {node_id} is not scheduled")
        return self._time[node_id]

    def cluster(self, node_id: int) -> int:
        if node_id not in self._cluster:
            raise SchedulingError(f"node {node_id} is not scheduled")
        return self._cluster[node_id]

    def placement_seq(self, node_id: int) -> int:
        return self._seq[node_id]

    def scheduled_ids(self) -> list[int]:
        return list(self._time)

    def __len__(self) -> int:
        return len(self._time)

    def row(self, node_id: int) -> int:
        """The MRT row (issue cycle modulo II) of a scheduled node."""
        return self.time(node_id) % self.ii

    def nodes_in_row(self, row: int, cluster: int | None = None) -> list[int]:
        """Ids of scheduled nodes issuing in the given MRT row.

        Served from the maintained row index (placement order), so the
        cost is proportional to the row's population — this is the hot
        query of the critical-row ejection fallback, which used to scan
        every scheduled node per ejection decision.
        """
        members = self._rows.get(row)
        if not members:
            return []
        if cluster is None:
            return list(members)
        return [n for n, c in members.items() if c == cluster]

    def span(self) -> tuple[int, int]:
        """(min, max) issue cycles of the schedule (0, 0 when empty)."""
        if not self._time:
            return (0, 0)
        times = self._time.values()
        return (min(times), max(times))

    def stage_count(self) -> int:
        """Number of kernel stages (depth of iteration overlap)."""
        low, high = self.span()
        if not self._time:
            return 0
        return (high - low) // self.ii + 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def place(
        self,
        node: Node,
        cluster: int,
        cycle: int,
        src_cluster: int | None = None,
    ) -> None:
        """Place a node; the MRT must accept the reservation."""
        self.mrt.place(node, cluster, cycle, src_cluster=src_cluster)
        self._time[node.id] = cycle
        self._cluster[node.id] = cluster
        self._seq[node.id] = next(self._counter)
        self._rows.setdefault(cycle % self.ii, {})[node.id] = cluster
        self.prev_cycle[node.id] = cycle
        for listener in self.listeners:
            listener.on_place(node, cluster, cycle)

    def eject(self, node_id: int) -> tuple[int, int]:
        """Remove a node from the schedule; returns its old placement.

        ``prev_cycle`` keeps the old cycle so that a forced re-placement
        explores new cycles instead of ping-ponging.
        """
        if node_id not in self._time:
            raise SchedulingError(f"cannot eject unscheduled node {node_id}")
        self.mrt.remove(node_id)
        old = (self._cluster.pop(node_id), self._time.pop(node_id))
        del self._seq[node_id]
        del self._rows[old[1] % self.ii][node_id]
        for listener in self.listeners:
            listener.on_eject(node_id)
        return old

    def forget(self, node_id: int) -> None:
        """Drop all traces of a node removed from the graph entirely."""
        if node_id in self._time:
            self.eject(node_id)
        self.prev_cycle.pop(node_id, None)
