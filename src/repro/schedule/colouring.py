"""Incremental wrap-around (circular-arc) register colouring.

The drained-regime loop of MIRS-C consults an *actual* register
allocation after every spill/balance/eject round (Figure 4 step (4);
footnote 2 of the paper: MaxLive is occasionally a slight underestimate,
so the fitting side of the verdict must run the colouring).  The batch
path - :func:`repro.schedule.regalloc._colour_arcs` over a fresh arc
list - costs O(values * II) per call: it re-derives every arc from the
lifetime list, rebuilds the row-density profile, re-sorts, and re-runs
the greedy first-fit, although only a handful of lifetimes change
between rounds.

:class:`IncrementalArcColouring` maintains the colouring problem
incrementally.  It subscribes to the
:class:`~repro.schedule.pressure.PressureTracker`'s lifetime events (the
same observer chain that keeps MaxLive current across place/eject/spill
events) and keeps, per cluster:

* the **arc set** - value -> (start row, length) for the ``length % II``
  remainder of each lifetime, with the arc's row bitmask cached;
* the **row-density array** - how many arcs cross each MRT row, the
  cut-point profile the greedy's least-pressured starting row is read
  from in O(II) instead of O(arcs * span) per call;
* the **dedicated count** - summed ``length // II`` full-period
  registers;
* a sorted arc list, so the greedy's processing order for *any* cut
  point is a rotation (O(arcs)) rather than a fresh O(n log n) sort.

Colourings are cached at **dirty-cluster granularity**: a query reuses
the previous colouring outright for clusters whose lifetimes did not
change, and recolours only the affected bucket - by re-running the
*identical* greedy (longest-first from the least-pressured cut point)
over the maintained arc set, which makes the engine register-count- and
colour-identical to batch ``_colour_arcs`` by construction rather than
by approximation.  The engine builds its buckets lazily on the first
query and tears them down again if events flood in with no query in
sight (the gauged regime never allocates), so the scheduling hot path
pays nothing until the PriorityList drains.

``REPRO_COLOUR_SELFCHECK=1`` (or the module's ``SELF_CHECK`` flag)
cross-checks every event like the pressure tracker's self-check: each
lifetime event validates the maintained arc sets, densities and
dedicated counts against the tracker's entries, and each query
additionally replays the batch oracle - a from-scratch
:class:`~repro.schedule.lifetimes.LifetimeAnalysis` fed through
``_colour_arcs`` - asserting identical colour counts, colour maps and
``registers_used``.
"""

from __future__ import annotations

import bisect
import os

import numpy as np

from repro.graph.ddg import DependenceGraph
from repro.machine.config import MachineConfig
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.pressure import PressureTracker, fold_lifetime

#: When true, every lifetime event re-validates the maintained buckets
#: and every query replays the batch colouring oracle.  Orders of
#: magnitude slower - test/CI-leg only.
SELF_CHECK = bool(os.environ.get("REPRO_COLOUR_SELFCHECK"))

#: Events tolerated with no query before an idle engine tears its
#: buckets down (the gauged regime places thousands of nodes between
#: allocations; rebuilding on the next query is one batch-sized pass).
_IDLE_EVENT_FACTOR = 8
_IDLE_EVENT_FLOOR = 256


def arc_mask(start: int, length: int, ii: int) -> int:
    """The II-bit row-occupancy mask of one arc.

    The single definition both colouring paths use: the batch
    ``_colour_arcs`` in :mod:`repro.schedule.regalloc` imports it, so
    batch/incremental mask semantics cannot drift apart.
    """
    full = (1 << ii) - 1
    base = (1 << length) - 1
    start %= ii
    return ((base << start) | (base >> (ii - start))) & full


class _ClusterBucket:
    """One cluster's maintained colouring problem."""

    __slots__ = (
        "ii", "dedicated", "arcs", "order", "density", "masks",
        "dirty", "colour_count", "colours",
    )

    def __init__(self, ii: int):
        self.ii = ii
        self.dedicated = 0
        #: value -> (start row, arc length), 0 < length < II.
        self.arcs: dict[int, tuple[int, int]] = {}
        #: Sorted (start row, -length, value) triples; the greedy order
        #: for cut point c is the rotation starting at the first entry
        #: with start row >= c.
        self.order: list[tuple[int, int, int]] = []
        self.density = np.zeros(ii, dtype=np.int64)
        self.masks: dict[int, int] = {}
        self.dirty = True
        self.colour_count = 0
        self.colours: dict[int, int] = {}

    def add(self, value: int, start: int, end: int) -> None:
        length = end - start
        if length <= 0:
            return
        full, rest = divmod(length, self.ii)
        self.dedicated += full
        if rest:
            first = start % self.ii
            self.arcs[value] = (first, rest)
            bisect.insort(self.order, (first, -rest, value))
            fold_lifetime(self.density, self.ii, first, first + rest, +1)
            self.masks[value] = arc_mask(first, rest, self.ii)
        self.dirty = True

    def remove(self, value: int, start: int, end: int) -> None:
        length = end - start
        if length <= 0:
            return
        full, rest = divmod(length, self.ii)
        self.dedicated -= full
        if rest:
            first = start % self.ii
            del self.arcs[value]
            del self.masks[value]
            self.order.pop(bisect.bisect_left(self.order, (first, -rest, value)))
            fold_lifetime(self.density, self.ii, first, first + rest, -1)
        self.dirty = True

    def recolour(self) -> None:
        """Re-run the batch greedy over the maintained arc set.

        Identical to ``_colour_arcs``: the cut point is the first
        least-dense row, and arcs are processed by
        ``((start - cut) % II, -length, value)`` - which over the
        maintained sorted order is a rotation, not a sort.
        """
        if not self.arcs:
            self.colour_count, self.colours = 0, {}
            self.dirty = False
            return
        cut = int(self.density.argmin())
        split = bisect.bisect_left(self.order, (cut,))
        masks = self.masks
        occupancies: list[int] = []
        chosen: dict[int, int] = {}
        for _, _, value in self.order[split:] + self.order[:split]:
            mask = masks[value]
            for index, occupancy in enumerate(occupancies):
                if not (occupancy & mask):
                    occupancies[index] = occupancy | mask
                    chosen[value] = index
                    break
            else:
                occupancies.append(mask)
                chosen[value] = len(occupancies) - 1
        self.colour_count, self.colours = len(occupancies), chosen
        self.dirty = False


class IncrementalArcColouring:
    """Register allocation of a partial schedule, maintained incrementally.

    Args:
        graph: the dependence graph being scheduled.
        schedule: the partial schedule.
        machine: target machine.
        tracker: the state's live
            :class:`~repro.schedule.pressure.PressureTracker`; the
            engine mirrors its lifetime entries (one arc per tracked
            value) via ``lifetime_listeners`` and reads its invariant
            register counts on every query.
        self_check: validate every event and replay the batch oracle on
            every query (defaults to the module's ``SELF_CHECK`` flag).
            Self-checking engines build eagerly and never idle out.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        schedule: PartialSchedule,
        machine: MachineConfig,
        tracker: PressureTracker,
        self_check: bool | None = None,
        tracer=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self.graph = graph
        self.schedule = schedule
        self.machine = machine
        self.tracker = tracker
        self.ii = tracker.ii
        self.self_check = SELF_CHECK if self_check is None else self_check
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Allocation queries served (per-attempt diagnostic; reported
        #: on the attempt span and at detach).
        self.queries = 0
        self._buckets: dict[int, _ClusterBucket] | None = None
        self._events_since_query = 0
        #: Monotone lifetime-event count (diagnostics; the allocator
        #: benchmark uses it to replay its batch oracle once per
        #: mutation epoch instead of once per query).
        self.events_seen = 0
        tracker.lifetime_listeners.append(self)
        if self.tracer.enabled:
            self.tracer.instant("colour.attach", "alloc", ii=self.ii)
        if self.self_check:
            self._ensure_built()

    def detach(self) -> None:
        """Stop observing the tracker (end of an attempt)."""
        if self in self.tracker.lifetime_listeners:
            self.tracker.lifetime_listeners.remove(self)
        if self.tracer.enabled:
            self.tracer.instant(
                "colour.detach", "alloc", queries=self.queries
            )

    # ------------------------------------------------------------------
    # Event handler (called by PressureTracker)
    # ------------------------------------------------------------------

    def on_lifetime_changed(
        self,
        node_id: int,
        old: tuple[int, int, int] | None,
        new: tuple[int, int, int] | None,
    ) -> None:
        self.events_seen += 1
        if self._buckets is None:
            return
        if old is not None:
            self._buckets[old[0]].remove(node_id, old[1], old[2])
        if new is not None:
            self._buckets[new[0]].add(node_id, new[1], new[2])
        if self.self_check:
            self._assert_buckets_match_tracker()
            return
        # Idle valve: a long event burst with no allocation query means
        # the scheduler is back in the gauged regime - stop paying the
        # per-event cost and rebuild lazily on the next query.
        self._events_since_query += 1
        if self._events_since_query > max(
            _IDLE_EVENT_FLOOR,
            _IDLE_EVENT_FACTOR * len(self.tracker._entries),
        ):
            self._buckets = None
            if self.tracer.enabled:
                self.tracer.instant(
                    "colour.idle_valve", "alloc",
                    action="teardown", events=self._events_since_query,
                )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _ensure_built(self) -> dict[int, _ClusterBucket]:
        if self._buckets is None:
            buckets = {
                cluster: _ClusterBucket(self.ii)
                for cluster in range(self.machine.clusters)
            }
            for node_id, entry in self.tracker._entries.items():
                buckets[entry.cluster].add(node_id, entry.start, entry.end)
            self._buckets = buckets
            if self.tracer.enabled:
                self.tracer.instant(
                    "colour.idle_valve", "alloc",
                    action="rebuild", arcs=len(self.tracker._entries),
                )
        self._events_since_query = 0
        return self._buckets

    def _coloured(self, cluster: int) -> _ClusterBucket:
        bucket = self._ensure_built()[cluster]
        if bucket.dirty:
            bucket.recolour()
        return bucket

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cluster_colouring(self, cluster: int) -> tuple[int, dict[int, int]]:
        """(colour count, value -> colour) of one cluster - identical to
        batch ``_colour_arcs`` over the cluster's current arcs."""
        bucket = self._coloured(cluster)
        if self.self_check:
            self.assert_matches_scratch()
        return bucket.colour_count, bucket.colours

    def variant_registers(self, cluster: int) -> int:
        """Dedicated full-period registers + arc colours (no invariants)."""
        bucket = self._coloured(cluster)
        return bucket.dedicated + bucket.colour_count

    def registers_used(self, cluster: int) -> int:
        """The cluster's allocation size: dedicated + colours + invariants.

        Equals ``allocate_registers(...)[cluster].registers_used`` on the
        same state, at O(changed lifetimes) instead of O(values * II).
        """
        self.queries += 1
        used = self.variant_registers(cluster) + self.tracker.invariant_registers(
            cluster
        )
        if self.self_check:
            self.assert_matches_scratch()
        return used

    def registers_used_all(self) -> dict[int, int]:
        """Per-cluster allocation sizes (the ``_fits_registers`` query)."""
        return {
            cluster: self.registers_used(cluster)
            for cluster in range(self.machine.clusters)
        }

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def _assert_buckets_match_tracker(self) -> None:
        """Validate the maintained buckets against the tracker's entries.

        Cheap enough to run per event: O(values) dict work plus one
        vectorized density fold per cluster.  The tracker itself is
        cross-checked against a from-scratch analysis by its own
        self-check, so this composes into full from-scratch coverage.
        """
        ii = self.ii
        expected: dict[int, _ClusterBucket] = {
            cluster: _ClusterBucket(ii)
            for cluster in range(self.machine.clusters)
        }
        for node_id, entry in self.tracker._entries.items():
            expected[entry.cluster].add(node_id, entry.start, entry.end)
        assert self._buckets is not None
        for cluster, want in expected.items():
            got = self._buckets[cluster]
            if got.arcs != want.arcs:
                raise AssertionError(
                    f"arc set diverged in cluster {cluster}: "
                    f"engine={got.arcs} tracker={want.arcs}"
                )
            if got.order != want.order:
                raise AssertionError(
                    f"arc order diverged in cluster {cluster}: "
                    f"engine={got.order} tracker={want.order}"
                )
            if got.dedicated != want.dedicated:
                raise AssertionError(
                    f"dedicated registers diverged in cluster {cluster}: "
                    f"engine={got.dedicated} tracker={want.dedicated}"
                )
            if not np.array_equal(got.density, want.density):
                raise AssertionError(
                    f"arc density diverged in cluster {cluster}: "
                    f"engine={got.density.tolist()} "
                    f"tracker={want.density.tolist()}"
                )
            if got.masks != want.masks:
                raise AssertionError(
                    f"arc masks diverged in cluster {cluster}"
                )

    def assert_matches_scratch(self) -> None:
        """Assert identity with the batch oracle on the current state.

        Rebuilds a from-scratch
        :class:`~repro.schedule.lifetimes.LifetimeAnalysis`, feeds its
        arcs through batch ``_colour_arcs`` and compares colour counts,
        colour maps, dedicated counts, densities and ``registers_used``
        per cluster.  Only valid at quiescent points (between scheduler
        events), where the tracker equals the scratch analysis.
        """
        from repro.schedule.regalloc import _colour_arcs

        self._ensure_built()
        self._assert_buckets_match_tracker()
        scratch = LifetimeAnalysis(
            self.graph,
            self.schedule,
            self.machine,
            spilled_invariants=self.tracker.spilled_invariants,
            collect_segments=False,
        )
        ii = self.ii
        for cluster in range(self.machine.clusters):
            dedicated = 0
            arcs: list[tuple[int, int, int]] = []
            for lifetime in scratch.lifetimes:
                if lifetime.cluster != cluster or lifetime.length <= 0:
                    continue
                full, rest = divmod(lifetime.length, ii)
                dedicated += full
                if rest:
                    arcs.append((lifetime.value, lifetime.start % ii, rest))
            count, chosen = _colour_arcs(arcs, ii)
            bucket = self._coloured(cluster)
            if bucket.dedicated != dedicated:
                raise AssertionError(
                    f"dedicated registers diverged in cluster {cluster}: "
                    f"engine={bucket.dedicated} scratch={dedicated}"
                )
            if (bucket.colour_count, bucket.colours) != (count, chosen):
                raise AssertionError(
                    f"colouring diverged in cluster {cluster}: "
                    f"engine=({bucket.colour_count}, {bucket.colours}) "
                    f"scratch=({count}, {chosen})"
                )
            engine_used = (
                bucket.dedicated
                + bucket.colour_count
                + self.tracker.invariant_registers(cluster)
            )
            scratch_used = (
                dedicated
                + count
                + scratch.pressure[cluster].invariant_registers
            )
            if engine_used != scratch_used:
                raise AssertionError(
                    f"registers_used diverged in cluster {cluster}: "
                    f"engine={engine_used} scratch={scratch_used}"
                )
