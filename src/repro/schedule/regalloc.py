"""Register allocation for modulo-scheduled loops.

Performed when the PriorityList first empties (step 4 of Figure 4).  The
allocator assigns physical registers to value lifetimes on the *cyclic*
schedule: a lifetime of length L needs ``L // II`` registers outright
(one per fully-overlapped iteration instance) plus an arc of ``L % II``
rows that competes with other arcs for shared registers - the classic
wrap-around (circular-arc) colouring problem of Rau et al. [27].

MaxLive is a lower bound on the colouring; the greedy first-fit used here
matches it almost always and exceeds it by at most a few registers on
pathological arc patterns, which is exactly the behaviour the paper's
footnote 2 describes ("sometimes MaxLive is a lower bound and it is
necessary to insert additional spill code").
"""

from __future__ import annotations

import dataclasses

from repro.graph.ddg import DependenceGraph
from repro.machine.config import MachineConfig
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule


@dataclasses.dataclass
class RegisterAllocation:
    """Result of allocating one cluster's register file.

    Attributes:
        cluster: the cluster allocated.
        registers_used: total physical registers consumed (dedicated
            full-period registers + shared arc colours + invariants).
        assignment: value id -> list of register indices (one per
            overlapped live instance; the arc register last).
        invariant_registers: registers pinned by loop invariants.
    """

    cluster: int
    registers_used: int
    assignment: dict[int, list[int]]
    invariant_registers: int


def _colour_arcs(
    arcs: list[tuple[int, int, int]], ii: int
) -> tuple[int, dict[int, int]]:
    """Greedy first-fit colouring of circular arcs.

    ``arcs`` holds (value id, start row, length) with 0 < length <= II.
    Returns (number of colours, value id -> colour).  Arcs are processed
    longest first from the least-pressured cut point, which keeps the
    greedy bound tight.
    """
    if not arcs:
        return 0, {}
    # Row occupancy as II-bit integers: overlap tests are single AND ops.
    full_mask = (1 << ii) - 1

    def arc_mask(start: int, length: int) -> int:
        base = (1 << length) - 1
        start %= ii
        return ((base << start) | (base >> (ii - start))) & full_mask

    density = [0] * ii
    for _, start, length in arcs:
        first = start % ii
        tail = first + length
        if tail <= ii:
            for row in range(first, tail):
                density[row] += 1
        else:
            for row in range(first, ii):
                density[row] += 1
            for row in range(tail - ii):
                density[row] += 1
    cut = density.index(min(density))

    def sort_key(arc: tuple[int, int, int]) -> tuple:
        value, start, length = arc
        return ((start - cut) % ii, -length, value)

    colours: list[int] = []  # per colour: occupied-row bitmask
    chosen: dict[int, int] = {}
    for value, start, length in sorted(arcs, key=sort_key):
        mask = arc_mask(start, length)
        for index, occupancy in enumerate(colours):
            if not (occupancy & mask):
                colours[index] = occupancy | mask
                chosen[value] = index
                break
        else:
            colours.append(mask)
            chosen[value] = len(colours) - 1
    return len(colours), chosen


def allocate_registers(
    graph: DependenceGraph,
    schedule: PartialSchedule,
    machine: MachineConfig,
    analysis=None,
    spilled_invariants: set[tuple[int, int]] = frozenset(),
) -> dict[int, RegisterAllocation]:
    """Allocate every cluster's register file; returns per-cluster results.

    The allocation never fails: it reports how many registers *would* be
    needed, and the caller (the spill heuristic) compares that against the
    architecture and decides whether to spill.

    ``analysis`` may be a batch :class:`LifetimeAnalysis` or the
    scheduler's live :class:`~repro.schedule.pressure.PressureTracker`
    (both expose ``lifetimes`` and per-cluster ``pressure``); when
    omitted, a fresh batch analysis is built.
    """
    if analysis is None:
        analysis = LifetimeAnalysis(
            graph, schedule, machine, spilled_invariants=spilled_invariants
        )
    ii = schedule.ii
    lifetimes = analysis.lifetimes
    pressure = analysis.pressure
    results: dict[int, RegisterAllocation] = {}
    for cluster in range(machine.clusters):
        dedicated = 0
        arcs: list[tuple[int, int, int]] = []
        assignment: dict[int, list[int]] = {}
        full_counts: dict[int, int] = {}
        for lifetime in lifetimes:
            if lifetime.cluster != cluster or lifetime.length <= 0:
                continue
            full, rest = divmod(lifetime.length, ii)
            full_counts[lifetime.value] = full
            dedicated += full
            if rest:
                arcs.append((lifetime.value, lifetime.start % ii, rest))
        colour_count, colours = _colour_arcs(arcs, ii)
        # Physical numbering: dedicated registers first, arc colours after.
        next_dedicated = 0
        for value, full in full_counts.items():
            registers = list(range(next_dedicated, next_dedicated + full))
            next_dedicated += full
            if value in colours:
                registers.append(dedicated + colours[value])
            if registers:
                assignment[value] = registers
        invariant_registers = pressure[cluster].invariant_registers
        results[cluster] = RegisterAllocation(
            cluster=cluster,
            registers_used=dedicated + colour_count + invariant_registers,
            assignment=assignment,
            invariant_registers=invariant_registers,
        )
    return results


def allocation_register_count(
    allocations: dict[int, RegisterAllocation],
) -> dict[int, int]:
    """Per-cluster register counts of an allocation result."""
    return {c: a.registers_used for c, a in allocations.items()}
