"""Register allocation for modulo-scheduled loops.

Performed when the PriorityList first empties (step 4 of Figure 4).  The
allocator assigns physical registers to value lifetimes on the *cyclic*
schedule: a lifetime of length L needs ``L // II`` registers outright
(one per fully-overlapped iteration instance) plus an arc of ``L % II``
rows that competes with other arcs for shared registers - the classic
wrap-around (circular-arc) colouring problem of Rau et al. [27].

MaxLive is a lower bound on the colouring; the greedy first-fit used here
matches it almost always and exceeds it by at most a few registers on
pathological arc patterns, which is exactly the behaviour the paper's
footnote 2 describes ("sometimes MaxLive is a lower bound and it is
necessary to insert additional spill code").
"""

from __future__ import annotations

import dataclasses

from repro.graph.ddg import DependenceGraph
from repro.machine.config import MachineConfig
from repro.schedule.colouring import arc_mask
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule


@dataclasses.dataclass
class RegisterAllocation:
    """Result of allocating one cluster's register file.

    Attributes:
        cluster: the cluster allocated.
        registers_used: total physical registers consumed (dedicated
            full-period registers + shared arc colours + invariants).
        assignment: value id -> list of register indices (one per
            overlapped live instance; the arc register last).
        invariant_registers: registers pinned by loop invariants.
    """

    cluster: int
    registers_used: int
    assignment: dict[int, list[int]]
    invariant_registers: int


def _colour_arcs(
    arcs: list[tuple[int, int, int]], ii: int
) -> tuple[int, dict[int, int]]:
    """Greedy first-fit colouring of circular arcs.

    ``arcs`` holds (value id, start row, length) with 0 < length <= II.
    Returns (number of colours, value id -> colour).  Arcs are processed
    longest first from the least-pressured cut point, which keeps the
    greedy bound tight.
    """
    if not arcs:
        return 0, {}
    density = [0] * ii
    for _, start, length in arcs:
        first = start % ii
        tail = first + length
        if tail <= ii:
            for row in range(first, tail):
                density[row] += 1
        else:
            for row in range(first, ii):
                density[row] += 1
            for row in range(tail - ii):
                density[row] += 1
    cut = density.index(min(density))

    def sort_key(arc: tuple[int, int, int]) -> tuple:
        value, start, length = arc
        return ((start - cut) % ii, -length, value)

    # Row occupancy as II-bit integers: overlap tests are single AND ops.
    colours: list[int] = []  # per colour: occupied-row bitmask
    chosen: dict[int, int] = {}
    for value, start, length in sorted(arcs, key=sort_key):
        mask = arc_mask(start, length, ii)
        for index, occupancy in enumerate(colours):
            if not (occupancy & mask):
                colours[index] = occupancy | mask
                chosen[value] = index
                break
        else:
            colours.append(mask)
            chosen[value] = len(colours) - 1
    return len(colours), chosen


def _analysis_spilled_invariants(analysis) -> set[tuple[int, int]]:
    """The (invariant, cluster) spill set an analysis was built with.

    Works for both batch :class:`LifetimeAnalysis` (private
    ``_spilled_invariants``) and the live
    :class:`~repro.schedule.pressure.PressureTracker` (public
    ``spilled_invariants``).
    """
    spilled = getattr(analysis, "spilled_invariants", None)
    if spilled is None:
        spilled = getattr(analysis, "_spilled_invariants", frozenset())
    return set(spilled)


def allocate_registers(
    graph: DependenceGraph,
    schedule: PartialSchedule,
    machine: MachineConfig,
    analysis=None,
    spilled_invariants: set[tuple[int, int]] | None = None,
    colouring=None,
) -> dict[int, RegisterAllocation]:
    """Allocate every cluster's register file; returns per-cluster results.

    The allocation never fails: it reports how many registers *would* be
    needed, and the caller (the spill heuristic) compares that against the
    architecture and decides whether to spill.

    ``analysis`` may be a batch :class:`LifetimeAnalysis` or the
    scheduler's live :class:`~repro.schedule.pressure.PressureTracker`
    (both expose ``lifetimes`` and per-cluster ``pressure``); when
    omitted, a fresh batch analysis is built.  When both ``analysis``
    and ``spilled_invariants`` are given they must agree: the analysis
    already carries its spill set, and a conflicting argument used to be
    *silently ignored* - it now raises ``ValueError``.

    ``colouring`` may be the scheduler's live
    :class:`~repro.schedule.colouring.IncrementalArcColouring`; the
    per-cluster arc colourings are then taken from its caches (identical
    to batch :func:`_colour_arcs` by construction) instead of being
    recomputed, leaving only the assignment-building lifetime walk.
    """
    if analysis is None:
        analysis = LifetimeAnalysis(
            graph,
            schedule,
            machine,
            spilled_invariants=(
                frozenset() if spilled_invariants is None
                else spilled_invariants
            ),
        )
    elif spilled_invariants is not None:
        carried = _analysis_spilled_invariants(analysis)
        if set(spilled_invariants) != carried:
            raise ValueError(
                "allocate_registers: spilled_invariants "
                f"{sorted(spilled_invariants)} conflicts with the set the "
                f"provided analysis was built with {sorted(carried)}; "
                "rebuild the analysis or drop the argument"
            )
    if colouring is not None and colouring.tracker is not analysis:
        raise ValueError(
            "allocate_registers: the colouring engine mirrors a different "
            "analysis than the one provided"
        )
    ii = schedule.ii
    lifetimes = analysis.lifetimes
    pressure = analysis.pressure
    results: dict[int, RegisterAllocation] = {}
    for cluster in range(machine.clusters):
        dedicated = 0
        arcs: list[tuple[int, int, int]] = []
        assignment: dict[int, list[int]] = {}
        full_counts: dict[int, int] = {}
        for lifetime in lifetimes:
            if lifetime.cluster != cluster or lifetime.length <= 0:
                continue
            full, rest = divmod(lifetime.length, ii)
            full_counts[lifetime.value] = full
            dedicated += full
            if rest and colouring is None:
                arcs.append((lifetime.value, lifetime.start % ii, rest))
        if colouring is not None:
            colour_count, colours = colouring.cluster_colouring(cluster)
        else:
            colour_count, colours = _colour_arcs(arcs, ii)
        # Physical numbering: dedicated registers first, arc colours after.
        next_dedicated = 0
        for value, full in full_counts.items():
            registers = list(range(next_dedicated, next_dedicated + full))
            next_dedicated += full
            if value in colours:
                registers.append(dedicated + colours[value])
            if registers:
                assignment[value] = registers
        invariant_registers = pressure[cluster].invariant_registers
        results[cluster] = RegisterAllocation(
            cluster=cluster,
            registers_used=dedicated + colour_count + invariant_registers,
            assignment=assignment,
            invariant_registers=invariant_registers,
        )
    return results


def allocation_register_count(
    allocations: dict[int, RegisterAllocation],
) -> dict[int, int]:
    """Per-cluster register counts of an allocation result."""
    return {c: a.registers_used for c, a in allocations.items()}
