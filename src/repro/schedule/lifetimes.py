"""Lifetime analysis over (partial) modulo schedules.

Register requirements are approximated with *MaxLive*, the maximum number
of simultaneously live values (Section 3.1, following Rau et al. [27]).
On a modulo schedule a value whose lifetime is longer than II has several
simultaneously live instances - one per overlapped iteration - which the
row-folding count below captures naturally.

The analysis also produces the paper's spill-selection inputs:

* the **critical cycle** - the MRT row with the highest live count,
* the **uses** of each value - the lifetime sections running from the
  previous use (or the definition) to each consumer - together with the
  non-spillable prefix covering the producer's latency.

This is the *batch* analysis: it is built once per finished schedule
(finalisation, register allocation on results) and serves as the
reference implementation for the per-placement incremental engine in
:mod:`repro.schedule.pressure`, which must stay bit-identical to it
(``PressureTracker.assert_matches_scratch``).  The scheduler's hot path
no longer runs this per placement.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.graph.ddg import DepKind, DependenceGraph, Node
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.schedule.partial import PartialSchedule


@dataclasses.dataclass(frozen=True)
class UseSegment:
    """One lifetime section ("use", Section 3.1) of a value.

    The section runs from the previous use (or the definition) to the
    consumer it feeds.  Spilling it stores the value right after the
    section start and reloads it right before the consumer.

    Attributes:
        value: id of the producing node.
        consumer: id of the consuming node.
        edge_distance: iteration distance of the consumed edge.
        start: absolute cycle at which the section begins.
        end: absolute cycle of the consumer's issue.
        non_spillable_end: absolute cycle where the producer-latency
            prefix of the lifetime ends (sections inside it cannot be
            spilled because the value does not exist in a register yet).
        cluster: cluster holding the value.
    """

    value: int
    consumer: int
    edge_distance: int
    start: int
    end: int
    non_spillable_end: int
    cluster: int

    @property
    def span(self) -> int:
        return self.end - self.start

    @property
    def spillable(self) -> bool:
        return self.start >= self.non_spillable_end

    def crosses_row(self, row: int, ii: int) -> bool:
        """True if some cycle of [start, end) is congruent to ``row``."""
        if self.span >= ii:
            return True
        first = self.start % ii
        last = (self.end - 1) % ii
        if first <= last:
            return first <= row <= last
        return row >= first or row <= last


@dataclasses.dataclass(frozen=True)
class ValueLifetime:
    """The full lifetime of one value on the current partial schedule."""

    value: int
    cluster: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclasses.dataclass
class ClusterPressure:
    """Register pressure snapshot of one cluster."""

    rows: np.ndarray  # live-variant count per MRT row
    invariant_registers: int

    @property
    def max_live(self) -> int:
        variant = int(self.rows.max()) if self.rows.size else 0
        return variant + self.invariant_registers

    @property
    def critical_row(self) -> int:
        if self.rows.size == 0:
            return 0
        return int(self.rows.argmax())


class LifetimeAnalysis:
    """Lifetimes, register pressure and uses of a (partial) schedule.

    Args:
        graph: the dependence graph (possibly containing spill/move nodes).
        schedule: the partial schedule.
        machine: target machine.
        spilled_invariants: (invariant id, cluster) pairs whose dedicated
            register was dropped by invariant spilling.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        schedule: PartialSchedule,
        machine: MachineConfig,
        spilled_invariants: set[tuple[int, int]] = frozenset(),
        collect_segments: bool = True,
    ):
        self.graph = graph
        self.schedule = schedule
        self.machine = machine
        self.ii = schedule.ii
        self.lifetimes: list[ValueLifetime] = []
        self.segments: list[UseSegment] = []
        self.pressure: dict[int, ClusterPressure] = {}
        self._spilled_invariants = spilled_invariants
        self._want_segments = collect_segments
        self._compute()

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        ii = self.ii
        schedule = self.schedule
        graph = self.graph
        # Difference-array row folding: O(1) per lifetime, one O(II)
        # cumulative sum per cluster at the end.
        diffs = {c: [0] * (ii + 1) for c in range(self.machine.clusters)}
        bases = {c: 0 for c in range(self.machine.clusters)}
        # Hot path: runs after every node placement.  Local bindings and
        # direct access to the schedule/graph internals keep it cheap.
        times = schedule._time
        clusters = schedule._cluster
        nodes = graph._nodes
        out_adjacency = graph._out
        latency_by_kind = {
            kind: self.machine.latency(kind)
            for kind in {n.kind for n in nodes.values()}
        }
        store_kind = OpKind.STORE
        reg_kind = DepKind.REG
        lifetimes_append = self.lifetimes.append
        for node_id, start in times.items():
            node = nodes[node_id]
            if node.kind is store_kind:
                continue
            cluster = clusters[node_id]
            if node.latency_override is not None:
                latency = node.latency_override
            else:
                latency = latency_by_kind[node.kind]
            end = start + latency
            uses: list[tuple[int, int, int]] = []  # (use cycle, consumer, dist)
            for edge in out_adjacency[node_id]:
                if edge.kind is not reg_kind or edge.dst not in times:
                    continue
                use_cycle = times[edge.dst] + ii * edge.distance
                uses.append((use_cycle, edge.dst, edge.distance))
                if use_cycle > end:
                    end = use_cycle
            lifetimes_append(
                ValueLifetime(value=node_id, cluster=cluster, start=start, end=end)
            )
            full, rest = divmod(end - start, ii)
            bases[cluster] += full
            if rest:
                diff = diffs[cluster]
                first = start % ii
                tail = first + rest
                if tail <= ii:
                    diff[first] += 1
                    diff[tail] -= 1
                else:
                    diff[first] += 1
                    diff[ii] -= 1
                    diff[0] += 1
                    diff[tail - ii] -= 1
            if self._want_segments:
                self._collect_segments(node, cluster, start, latency, uses)

        invariant_counts = self._invariant_registers()
        for cluster in range(self.machine.clusters):
            rows = np.asarray(diffs[cluster][:ii], dtype=np.int64).cumsum()
            rows += bases[cluster]
            self.pressure[cluster] = ClusterPressure(
                rows=rows,
                invariant_registers=invariant_counts.get(cluster, 0),
            )

    def _collect_segments(
        self,
        node: Node,
        cluster: int,
        start: int,
        latency: int,
        uses: list[tuple[int, int, int]],
    ) -> None:
        """Split the lifetime of ``node``'s value into use sections."""
        if node.is_spill:
            # Values produced by spill loads are not spilled again.
            return
        non_spillable_end = start + latency
        previous = start
        for use_cycle, consumer, distance in sorted(uses):
            consumer_node = self.graph.node(consumer)
            if not (consumer_node.is_spill and consumer_node.kind.is_memory
                    and consumer_node.spilled_value == node.id):
                self.segments.append(
                    UseSegment(
                        value=node.id,
                        consumer=consumer,
                        edge_distance=distance,
                        start=previous,
                        end=use_cycle,
                        non_spillable_end=non_spillable_end,
                        cluster=cluster,
                    )
                )
            previous = use_cycle

    def _invariant_registers(self) -> dict[int, int]:
        """Registers held by loop invariants, per cluster.

        An invariant occupies one register in every cluster where at least
        one of its consumers is scheduled, unless it was spilled in that
        cluster (Section 3.3.2).
        """
        counts: dict[int, int] = {}
        for inv in self.graph.invariants():
            clusters = {
                self.schedule.cluster(consumer)
                for consumer in inv.consumers
                if self.schedule.is_scheduled(consumer)
            }
            for cluster in clusters:
                if (inv.id, cluster) in self._spilled_invariants:
                    continue
                counts[cluster] = counts.get(cluster, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def max_live(self, cluster: int) -> int:
        return self.pressure[cluster].max_live

    def critical_row(self, cluster: int) -> int:
        return self.pressure[cluster].critical_row

    def total_max_live(self) -> int:
        """Summed MaxLive across clusters (the non-clustered figure when
        there is a single cluster)."""
        return sum(p.max_live for p in self.pressure.values())

    def segments_in_cluster(self, cluster: int) -> list[UseSegment]:
        return [s for s in self.segments if s.cluster == cluster]
