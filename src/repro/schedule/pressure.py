"""Incremental register-pressure engine (the scheduler's hot path).

MIRS-C consults register pressure *during* scheduling: after every node
placement the spill heuristic reads MaxLive, the critical MRT row and the
per-value use segments (Section 3 of the paper).  Recomputing those from
scratch per placement - what :class:`~repro.schedule.lifetimes.LifetimeAnalysis`
does - costs O(nodes + edges) per check and dominates scheduling time on
large loops.

:class:`PressureTracker` maintains the same state **incrementally**.  It
subscribes to the :class:`~repro.schedule.partial.PartialSchedule`
(place/eject events) and the :class:`~repro.graph.ddg.DependenceGraph`
(edge/node mutation events, i.e. move insertion/removal and spill
insertion) and updates only the affected value lifetimes - O(degree)
per event:

* ``place(v)`` / ``eject(v)``: the lifetime of v's own value starts/ends,
  and each scheduled register *producer* of v gains/loses the use at v
  (their lifetime ends and use segments change);
* ``add_edge`` / ``remove_edge`` (REG): the source value's uses change;
* ``remove_node``: covered by the edge removals plus the schedule
  ``forget``; a defensive cleanup handles direct removals.

Loop-invariant register counts depend on tiny, directly-mutated sets
(``Invariant.consumers`` and the scheduler's ``spilled_invariants``), so
they are recomputed on demand - O(invariant consumers) per query, kept
out of the per-event *update* cost entirely (``max_live_all`` batches
the count pass when every cluster is queried at once).

The tracker's state is asserted bit-identical to a from-scratch
:class:`LifetimeAnalysis` by :meth:`assert_matches_scratch`; setting the
``REPRO_PRESSURE_SELFCHECK`` environment variable (or the module's
``SELF_CHECK`` flag) runs that cross-check after *every* event, which the
test suite uses to validate whole scheduling runs.  ``LifetimeAnalysis``
itself keeps the batch roles: finalisation, register allocation on
results, and this cross-check.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.ddg import DepKind, DependenceGraph, Edge, Node
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.schedule.lifetimes import (
    ClusterPressure,
    LifetimeAnalysis,
    UseSegment,
    ValueLifetime,
)
from repro.schedule.partial import PartialSchedule

#: When true, every tracker update re-runs the from-scratch cross-check
#: (``assert_matches_scratch``).  Hundreds of times slower - test-only.
SELF_CHECK = bool(os.environ.get("REPRO_PRESSURE_SELFCHECK"))


def fold_lifetime(
    rows: np.ndarray, ii: int, start: int, end: int, sign: int
) -> None:
    """Add/remove one lifetime [start, end) onto live-count rows in place.

    The shared wrap-around fold: ``full`` complete II periods cover every
    row, the remainder covers ``start % ii`` onward (possibly wrapping).
    Used by the tracker and by the balance heuristic's probe loop.
    """
    length = end - start
    if length <= 0:
        return
    full, rest = divmod(length, ii)
    if full:
        rows += sign * full
    if rest:
        first = start % ii
        tail = first + rest
        if tail <= ii:
            rows[first:tail] += sign
        else:
            rows[first:] += sign
            rows[: tail - ii] += sign


class _Entry:
    """Tracked lifetime of one scheduled value."""

    __slots__ = ("cluster", "start", "end", "segments")

    def __init__(
        self,
        cluster: int,
        start: int,
        end: int,
        segments: tuple[UseSegment, ...],
    ):
        self.cluster = cluster
        self.start = start
        self.end = end
        self.segments = segments


class PressureTracker:
    """Register pressure of a partial schedule, maintained incrementally.

    Exposes the same query surface as :class:`LifetimeAnalysis`
    (``max_live``, ``critical_row``, ``segments_in_cluster``,
    ``lifetimes``, ``pressure``), so the spill heuristic and the register
    allocator accept either interchangeably.

    Args:
        graph: the dependence graph being scheduled (mutations observed).
        schedule: the partial schedule (placements observed).
        machine: target machine.
        spilled_invariants: the scheduler's *live* set of
            (invariant id, cluster) pairs - read on every query, so the
            caller keeps mutating its own set in place.
        self_check: run the from-scratch cross-check after every event
            (defaults to the module's ``SELF_CHECK`` flag).
    """

    def __init__(
        self,
        graph: DependenceGraph,
        schedule: PartialSchedule,
        machine: MachineConfig,
        spilled_invariants: set[tuple[int, int]] | None = None,
        self_check: bool | None = None,
        tracer=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self.graph = graph
        self.schedule = schedule
        self.machine = machine
        self.ii = schedule.ii
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: MaxLive/critical-row queries served (per-attempt diagnostic;
        #: reported on the attempt span and at detach).
        self.queries = 0
        self.spilled_invariants = (
            spilled_invariants if spilled_invariants is not None else set()
        )
        self.self_check = SELF_CHECK if self_check is None else self_check
        self._rows: dict[int, np.ndarray] = {
            c: np.zeros(self.ii, dtype=np.int64)
            for c in range(machine.clusters)
        }
        self._entries: dict[int, _Entry] = {}
        self._latency_cache: dict[OpKind, int] = {}
        self._lifetimes_cache: list[ValueLifetime] | None = None
        #: Downstream observers of *lifetime* changes (the incremental
        #: arc-colouring engine).  Each listener implements
        #: ``on_lifetime_changed(node_id, old, new)`` where ``old``/``new``
        #: are ``(cluster, start, end)`` tuples (``None`` for
        #: untracked); notifications fire after this tracker's own state
        #: changed, and only when the lifetime actually moved.
        self.lifetime_listeners: list = []
        for node_id in schedule.scheduled_ids():
            self._refresh(node_id)
        graph._listeners.append(self)
        schedule.listeners.append(self)
        if self.tracer.enabled:
            self.tracer.instant("pressure.attach", "alloc", ii=self.ii)

    def detach(self) -> None:
        """Stop observing the graph and schedule (end of an attempt)."""
        if self in self.graph._listeners:
            self.graph._listeners.remove(self)
        if self in self.schedule.listeners:
            self.schedule.listeners.remove(self)
        if self.tracer.enabled:
            self.tracer.instant(
                "pressure.detach", "alloc", queries=self.queries
            )

    # ------------------------------------------------------------------
    # Event handlers (called by PartialSchedule and DependenceGraph)
    # ------------------------------------------------------------------

    def on_place(self, node: Node, cluster: int, cycle: int) -> None:
        if node.kind is not OpKind.STORE:
            self._refresh(node.id)
        self._refresh_producers(node.id)
        if self.self_check:
            self.assert_matches_scratch()

    def on_eject(self, node_id: int) -> None:
        entry = self._entries.pop(node_id, None)
        if entry is not None:
            self._fold(entry.cluster, entry.start, entry.end, -1)
            self._lifetimes_cache = None
            self._notify_lifetime(
                node_id, (entry.cluster, entry.start, entry.end), None
            )
        self._refresh_producers(node_id)
        if self.self_check:
            self.assert_matches_scratch()

    def on_edge_added(self, edge: Edge) -> None:
        if edge.kind is DepKind.REG and edge.src in self._entries:
            self._refresh(edge.src)
            if self.self_check:
                self.assert_matches_scratch()

    def on_edge_removed(self, edge: Edge) -> None:
        if edge.kind is DepKind.REG and edge.src in self._entries:
            self._refresh(edge.src)
            if self.self_check:
                self.assert_matches_scratch()

    def on_node_removed(self, node_id: int) -> None:
        # Nodes are forgotten from the schedule before removal; this is a
        # defensive cleanup for direct graph edits.
        entry = self._entries.pop(node_id, None)
        if entry is not None:
            self._fold(entry.cluster, entry.start, entry.end, -1)
            self._lifetimes_cache = None
            self._notify_lifetime(
                node_id, (entry.cluster, entry.start, entry.end), None
            )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def _latency(self, node: Node) -> int:
        if node.latency_override is not None:
            return node.latency_override
        kind = node.kind
        latency = self._latency_cache.get(kind)
        if latency is None:
            latency = self.machine.latency(kind)
            self._latency_cache[kind] = latency
        return latency

    def _refresh_producers(self, node_id: int) -> None:
        """Re-derive every scheduled producer feeding ``node_id``."""
        entries = self._entries
        producers = {
            edge.src
            for edge in self.graph._in[node_id]
            if edge.kind is DepKind.REG and edge.src != node_id
        }
        for src in producers:
            if src in entries:
                self._refresh(src)

    def _refresh(self, node_id: int) -> None:
        """Recompute one scheduled value's lifetime and segments.

        Mirrors one iteration of ``LifetimeAnalysis._compute`` exactly;
        O(out-degree) plus the O(II / row span) fold.
        """
        entry = self._entries.get(node_id)
        old = (
            (entry.cluster, entry.start, entry.end)
            if entry is not None
            else None
        )
        if entry is not None:
            self._fold(entry.cluster, entry.start, entry.end, -1)
        times = self.schedule._time
        start = times.get(node_id)
        if start is None:
            if entry is not None:
                del self._entries[node_id]
                self._lifetimes_cache = None
                self._notify_lifetime(node_id, old, None)
            return
        node = self.graph._nodes[node_id]
        if node.kind is OpKind.STORE:
            return
        cluster = self.schedule._cluster[node_id]
        latency = self._latency(node)
        ii = self.ii
        end = start + latency
        uses: list[tuple[int, int, int]] = []
        for edge in self.graph._out[node_id]:
            if edge.kind is not DepKind.REG or edge.dst not in times:
                continue
            use_cycle = times[edge.dst] + ii * edge.distance
            uses.append((use_cycle, edge.dst, edge.distance))
            if use_cycle > end:
                end = use_cycle
        segments = self._build_segments(node, cluster, start, latency, uses)
        self._entries[node_id] = _Entry(cluster, start, end, segments)
        self._fold(cluster, start, end, +1)
        self._lifetimes_cache = None
        new = (cluster, start, end)
        if new != old:
            self._notify_lifetime(node_id, old, new)

    def _notify_lifetime(
        self,
        node_id: int,
        old: tuple[int, int, int] | None,
        new: tuple[int, int, int] | None,
    ) -> None:
        for listener in self.lifetime_listeners:
            listener.on_lifetime_changed(node_id, old, new)

    def _build_segments(
        self,
        node: Node,
        cluster: int,
        start: int,
        latency: int,
        uses: list[tuple[int, int, int]],
    ) -> tuple[UseSegment, ...]:
        if node.is_spill or not uses:
            # Values produced by spill loads are not spilled again.
            return ()
        non_spillable_end = start + latency
        nodes = self.graph._nodes
        segments = []
        previous = start
        for use_cycle, consumer, distance in sorted(uses):
            consumer_node = nodes[consumer]
            if not (
                consumer_node.is_spill
                and consumer_node.kind.is_memory
                and consumer_node.spilled_value == node.id
            ):
                segments.append(
                    UseSegment(
                        value=node.id,
                        consumer=consumer,
                        edge_distance=distance,
                        start=previous,
                        end=use_cycle,
                        non_spillable_end=non_spillable_end,
                        cluster=cluster,
                    )
                )
            previous = use_cycle
        return tuple(segments)

    def _fold(self, cluster: int, start: int, end: int, sign: int) -> None:
        """Add/remove one lifetime [start, end) from the row counts."""
        fold_lifetime(self._rows[cluster], self.ii, start, end, sign)

    # ------------------------------------------------------------------
    # Queries (the LifetimeAnalysis-compatible surface)
    # ------------------------------------------------------------------

    def _invariant_registers(self) -> dict[int, int]:
        """Registers held by loop invariants, per cluster (on demand)."""
        counts: dict[int, int] = {}
        schedule = self.schedule
        for inv in self.graph.invariants():
            clusters = {
                schedule.cluster(consumer)
                for consumer in inv.consumers
                if schedule.is_scheduled(consumer)
            }
            for cluster in clusters:
                if (inv.id, cluster) in self.spilled_invariants:
                    continue
                counts[cluster] = counts.get(cluster, 0) + 1
        return counts

    def invariant_registers(self, cluster: int) -> int:
        return self._invariant_registers().get(cluster, 0)

    def variant_rows(self, cluster: int) -> np.ndarray:
        """The live-variant count per MRT row (the tracker's own array -
        treat as read-only, or copy before mutating)."""
        return self._rows[cluster]

    def max_live(self, cluster: int) -> int:
        self.queries += 1
        rows = self._rows[cluster]
        variant = int(rows.max()) if rows.size else 0
        return variant + self.invariant_registers(cluster)

    def critical_row(self, cluster: int) -> int:
        self.queries += 1
        rows = self._rows[cluster]
        if rows.size == 0:
            return 0
        return int(rows.argmax())

    def max_live_all(self) -> dict[int, int]:
        """MaxLive of every cluster, with one invariant-count pass."""
        self.queries += 1
        counts = self._invariant_registers()
        return {
            cluster: (int(rows.max()) if rows.size else 0)
            + counts.get(cluster, 0)
            for cluster, rows in self._rows.items()
        }

    def total_max_live(self) -> int:
        """Summed MaxLive across clusters."""
        return sum(self.max_live_all().values())

    @property
    def pressure(self) -> dict[int, ClusterPressure]:
        counts = self._invariant_registers()
        return {
            cluster: ClusterPressure(
                rows=rows.copy(),
                invariant_registers=counts.get(cluster, 0),
            )
            for cluster, rows in self._rows.items()
        }

    @property
    def lifetimes(self) -> list[ValueLifetime]:
        """Current value lifetimes, in placement order (like the batch
        analysis, which walks the schedule's insertion-ordered dict).

        Cached between mutations (the register allocator reads it
        repeatedly in the drained regime); treat as read-only.
        """
        if self._lifetimes_cache is None:
            self._lifetimes_cache = [
                ValueLifetime(
                    value=node_id, cluster=e.cluster, start=e.start, end=e.end
                )
                for node_id, e in self._entries.items()
            ]
        return self._lifetimes_cache

    @property
    def segments(self) -> list[UseSegment]:
        return [s for e in self._entries.values() for s in e.segments]

    def segments_in_cluster(self, cluster: int) -> list[UseSegment]:
        return [
            s
            for e in self._entries.values()
            for s in e.segments
            if s.cluster == cluster
        ]

    def lifetime_bounds(self, node_id: int) -> tuple[int, int]:
        """[start, end) of a tracked value (must be scheduled)."""
        entry = self._entries[node_id]
        return entry.start, entry.end

    def lifetime_length(self, node_id: int) -> int:
        """Lifetime length of a value, 0 when untracked (e.g. stores)."""
        entry = self._entries.get(node_id)
        return entry.end - entry.start if entry is not None else 0

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def assert_matches_scratch(self) -> None:
        """Assert bit-identity with a from-scratch ``LifetimeAnalysis``.

        Compares rows, invariant counts, MaxLive, critical rows, the full
        lifetime list and the full segment list (both in placement
        order).  Raises ``AssertionError`` with context on any mismatch.
        """
        scratch = LifetimeAnalysis(
            self.graph,
            self.schedule,
            self.machine,
            spilled_invariants=self.spilled_invariants,
            collect_segments=True,
        )
        counts = self._invariant_registers()
        for cluster in range(self.machine.clusters):
            expected = scratch.pressure[cluster]
            got_rows = self._rows[cluster]
            if not np.array_equal(got_rows, expected.rows):
                raise AssertionError(
                    f"pressure rows diverged in cluster {cluster}: "
                    f"tracker={got_rows.tolist()} "
                    f"scratch={expected.rows.tolist()}"
                )
            if counts.get(cluster, 0) != expected.invariant_registers:
                raise AssertionError(
                    f"invariant registers diverged in cluster {cluster}: "
                    f"tracker={counts.get(cluster, 0)} "
                    f"scratch={expected.invariant_registers}"
                )
            if self.max_live(cluster) != expected.max_live:
                raise AssertionError(
                    f"MaxLive diverged in cluster {cluster}: "
                    f"tracker={self.max_live(cluster)} "
                    f"scratch={expected.max_live}"
                )
            if self.critical_row(cluster) != expected.critical_row:
                raise AssertionError(
                    f"critical row diverged in cluster {cluster}: "
                    f"tracker={self.critical_row(cluster)} "
                    f"scratch={expected.critical_row}"
                )
        if self.lifetimes != scratch.lifetimes:
            mine = {lt.value: lt for lt in self.lifetimes}
            theirs = {lt.value: lt for lt in scratch.lifetimes}
            diff = [
                (v, mine.get(v), theirs.get(v))
                for v in sorted(set(mine) | set(theirs))
                if mine.get(v) != theirs.get(v)
            ]
            raise AssertionError(f"lifetimes diverged: {diff[:5]}")
        if self.segments != scratch.segments:
            raise AssertionError(
                "use segments diverged: "
                f"tracker has {len(self.segments)}, "
                f"scratch has {len(scratch.segments)}"
            )
