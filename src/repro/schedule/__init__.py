"""Modulo scheduling substrate: MRT, partial schedules, pressure, regalloc."""

from repro.schedule.mrt import ModuloReservationTable
from repro.schedule.partial import PartialSchedule
from repro.schedule.slots import Direction, SlotWindow, dependence_window
from repro.schedule.colouring import IncrementalArcColouring
from repro.schedule.lifetimes import LifetimeAnalysis, UseSegment, ValueLifetime
from repro.schedule.pressure import PressureTracker
from repro.schedule.regalloc import RegisterAllocation, allocate_registers

__all__ = [
    "ModuloReservationTable",
    "PartialSchedule",
    "Direction",
    "SlotWindow",
    "dependence_window",
    "IncrementalArcColouring",
    "LifetimeAnalysis",
    "PressureTracker",
    "UseSegment",
    "ValueLifetime",
    "RegisterAllocation",
    "allocate_registers",
]
