"""EarlyStart / LateStart / Direction computation (Section 3.1).

For a node *u* being (re)placed into the partial schedule:

* ``EarlyStart`` is the earliest cycle at which u can issue so that every
  *scheduled* predecessor completes first,
* ``LateStart`` is the latest cycle at which u can issue so that it
  completes before every *scheduled* successor starts,
* ``Direction`` is the sense in which free slots are probed.

Spill nodes carry the paper's *distance gauge* (DG): a spill load is kept
within DG cycles of its consumer (``EarlyStart = LateStart - DG``) and a
spill store within DG cycles of its producer (``LateStart = EarlyStart +
DG``), so spilled values spend their lives in memory rather than in
registers (Section 3.2.3).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.graph.ddg import DependenceGraph, Node
from repro.graph.latency import edge_latency
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.schedule.partial import PartialSchedule


class Direction(enum.Enum):
    """Search direction for a free slot."""

    FORWARD = "forward"  # from EarlyStart towards LateStart
    BACKWARD = "backward"  # from LateStart towards EarlyStart


@dataclasses.dataclass(frozen=True)
class SlotWindow:
    """The candidate cycles for one placement attempt.

    Attributes:
        early: EarlyStart (``None`` when no scheduled predecessor bounds it).
        late: LateStart (``None`` when no scheduled successor bounds it).
        start, stop: first and last candidate cycles, inclusive, in search
            order (``start`` may exceed ``stop`` for empty windows).
        direction: the search direction.
    """

    early: int | None
    late: int | None
    start: int
    stop: int
    direction: Direction

    def candidates(self) -> range:
        """Candidate cycles in search order."""
        if self.direction is Direction.FORWARD:
            return range(self.start, self.stop + 1)
        return range(self.start, self.stop - 1, -1)

    @property
    def empty(self) -> bool:
        if self.direction is Direction.FORWARD:
            return self.start > self.stop
        return self.start < self.stop


def dependence_window(
    graph: DependenceGraph,
    schedule: PartialSchedule,
    node: Node,
    machine: MachineConfig,
    *,
    distance_gauge: int | None = None,
) -> SlotWindow:
    """Compute the slot window of ``node`` against the partial schedule."""
    ii = schedule.ii
    early: int | None = None
    late: int | None = None
    for edge in graph.in_edges(node.id):
        if not schedule.is_scheduled(edge.src) or edge.src == node.id:
            continue
        latency = edge_latency(graph, edge, machine)
        bound = schedule.time(edge.src) + latency - ii * edge.distance
        early = bound if early is None else max(early, bound)
    for edge in graph.out_edges(node.id):
        if not schedule.is_scheduled(edge.dst) or edge.dst == node.id:
            continue
        latency = edge_latency(graph, edge, machine)
        bound = schedule.time(edge.dst) - latency + ii * edge.distance
        late = bound if late is None else min(late, bound)

    if distance_gauge is not None and node.is_spill:
        if node.kind is OpKind.LOAD and late is not None:
            gauge_bound = late - distance_gauge
            early = gauge_bound if early is None else max(early, gauge_bound)
        if node.kind is OpKind.STORE and early is not None:
            gauge_bound = early + distance_gauge
            late = gauge_bound if late is None else min(late, gauge_bound)

    if early is not None and late is not None:
        # Both sides constrained: search forward within the intersection
        # of the dependence window and one II worth of slots.
        return SlotWindow(
            early=early,
            late=late,
            start=early,
            stop=min(late, early + ii - 1),
            direction=Direction.FORWARD,
        )
    if early is not None:
        return SlotWindow(
            early=early,
            late=None,
            start=early,
            stop=early + ii - 1,
            direction=Direction.FORWARD,
        )
    if late is not None:
        return SlotWindow(
            early=None,
            late=late,
            start=late,
            stop=late - ii + 1,
            direction=Direction.BACKWARD,
        )
    # Unconstrained (first node of its region): any row will do.
    return SlotWindow(
        early=None, late=None, start=0, stop=ii - 1, direction=Direction.FORWARD
    )


def find_free_slot(
    schedule: PartialSchedule,
    node: Node,
    cluster: int,
    window: SlotWindow,
    src_cluster: int | None = None,
) -> int | None:
    """First conflict-free cycle in the window, in search order."""
    if window.empty:
        return None
    for cycle in window.candidates():
        if schedule.mrt.can_place(node, cluster, cycle, src_cluster=src_cluster):
            return cycle
    return None


def forced_cycle(
    schedule: PartialSchedule, node: Node, window: SlotWindow
) -> int:
    """The cycle at which a failed placement is *forced* (Section 3.2.2).

    Forward searches force ``max(EarlyStart, Prev_Cycle + 1)``; backward
    searches force ``min(LateStart, Prev_Cycle - 1)``.  A node that was
    never scheduled before is forced at the window edge itself.
    """
    previous = schedule.prev_cycle.get(node.id)
    if window.direction is Direction.FORWARD:
        anchor = window.early if window.early is not None else window.start
        if previous is None:
            return anchor
        return max(anchor, previous + 1)
    anchor = window.late if window.late is not None else window.start
    if previous is None:
        return anchor
    return min(anchor, previous - 1)


def violates_dependences(
    graph: DependenceGraph,
    schedule: PartialSchedule,
    node_id: int,
    machine: MachineConfig,
) -> list[int]:
    """Scheduled neighbours whose dependence with ``node_id`` is violated.

    Used after a forced placement to decide which nodes must be ejected.
    """
    ii = schedule.ii
    t_node = schedule.time(node_id)
    offenders: list[int] = []
    for edge in graph.in_edges(node_id):
        if edge.src == node_id or not schedule.is_scheduled(edge.src):
            continue
        latency = edge_latency(graph, edge, machine)
        if t_node < schedule.time(edge.src) + latency - ii * edge.distance:
            offenders.append(edge.src)
    for edge in graph.out_edges(node_id):
        if edge.dst == node_id or not schedule.is_scheduled(edge.dst):
            continue
        latency = edge_latency(graph, edge, machine)
        if schedule.time(edge.dst) < t_node + latency - ii * edge.distance:
            offenders.append(edge.dst)
    return offenders
