"""HRMS-style node pre-ordering.

MIRS-C pre-orders the nodes of the dependence graph into a *PriorityList*
using the HRMS strategy [22] (Section 3.1).  The published contract of
that ordering, which the scheduler relies on, is:

1. **recurrences first** - priority is given to recurrence circuits, the
   most critical (highest RecMII) first, so that no recurrence is
   stretched by later placement decisions;
2. **neighbour property** - when a node is scheduled, the partial
   schedule contains only predecessors of the node or only successors of
   it, never both (the sole exception being the node that closes a
   recurrence circuit).  This lets every node be placed flush against its
   scheduled neighbours, minimizing lifetimes.

The ordering is produced by hypernode-style alternating sweeps: each node
set (a recurrence together with the nodes on paths connecting it to
already-ordered sets, then the remaining weakly-connected components) is
consumed by alternating top-down passes (following successor edges from
ordered nodes) and bottom-up passes (following predecessor edges), exactly
the mechanism that guarantees property 2.  See DESIGN.md substitution
note (a).
"""

from __future__ import annotations

import dataclasses

import networkx as nx

from repro.graph.ddg import DependenceGraph
from repro.graph.latency import edge_latency
from repro.graph.recurrences import find_recurrences
from repro.machine.config import MachineConfig


@dataclasses.dataclass(frozen=True)
class OrderingResult:
    """The pre-ordering of a graph.

    Attributes:
        order: node ids, highest priority first.
        priority: node id -> priority value (higher = scheduled earlier);
            priorities are spaced one unit apart so that spill and move
            nodes can later be slotted between existing priorities.
        recurrence_nodes: ids that belong to some recurrence circuit.
    """

    order: tuple[int, ...]
    priority: dict[int, float]
    recurrence_nodes: frozenset[int]


def _depths_and_heights(
    graph: DependenceGraph, machine: MachineConfig
) -> tuple[dict[int, int], dict[int, int]]:
    """Longest-latency-path depth (from roots) and height (to sinks).

    Computed on the *condensation* of the full dependence graph: strongly
    connected components collapse to single vertices, so every remaining
    edge (including loop-carried ones between different components)
    contributes its latency.  Heights then decrease *strictly* along
    every inter-component edge, which is what guarantees that the
    max-height sweeps below order predecessors before successors
    everywhere outside recurrence circuits.
    """
    digraph = _full_digraph(graph)
    components = list(nx.strongly_connected_components(digraph))
    component_of = {
        node: index
        for index, members in enumerate(components)
        for node in members
    }
    dag = nx.DiGraph()
    dag.add_nodes_from(range(len(components)))
    latency: dict[tuple[int, int], int] = {}
    for edge in graph.edges():
        src_c = component_of[edge.src]
        dst_c = component_of[edge.dst]
        if src_c == dst_c:
            continue
        lat = edge_latency(graph, edge, machine)
        key = (src_c, dst_c)
        latency[key] = max(latency.get(key, 0), lat)
        dag.add_edge(src_c, dst_c)

    order = list(nx.topological_sort(dag))
    comp_depth = {c: 0 for c in order}
    for component in order:
        for pred in dag.predecessors(component):
            comp_depth[component] = max(
                comp_depth[component],
                comp_depth[pred] + latency[(pred, component)],
            )
    comp_height = {c: 0 for c in order}
    for component in reversed(order):
        for succ in dag.successors(component):
            comp_height[component] = max(
                comp_height[component],
                comp_height[succ] + latency[(component, succ)],
            )
    depth = {node: comp_depth[component_of[node]] for node in graph.node_ids()}
    height = {node: comp_height[component_of[node]] for node in graph.node_ids()}
    return depth, height


def _full_digraph(graph: DependenceGraph) -> nx.DiGraph:
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.node_ids())
    for edge in graph.edges():
        if edge.src != edge.dst:
            digraph.add_edge(edge.src, edge.dst)
    return digraph


def _priority_node_sets(
    graph: DependenceGraph, machine: MachineConfig
) -> tuple[list[set[int]], frozenset[int]]:
    """Node sets in the order they must be consumed.

    Recurrences come first (most critical first), each widened with the
    nodes lying on paths between it and the previously consumed sets, so
    that the connection is ordered before jumping into the new recurrence.
    The leftovers are grouped by weakly connected component.
    """
    recurrences = find_recurrences(graph, machine)
    digraph = _full_digraph(graph)
    sets: list[set[int]] = []
    consumed: set[int] = set()
    for recurrence in recurrences:
        members = set(recurrence.nodes)
        if consumed:
            path_nodes: set[int] = set()
            down = _reachable(digraph, consumed) & _reaching(digraph, members)
            up = _reachable(digraph, members) & _reaching(digraph, consumed)
            path_nodes = (down | up) - consumed - members
            if path_nodes:
                sets.append(path_nodes)
                consumed |= path_nodes
        sets.append(members)
        consumed |= members
    rest = set(graph.node_ids()) - consumed
    if rest:
        undirected = digraph.to_undirected()
        components = [
            set(component) & rest
            for component in nx.connected_components(undirected)
        ]
        components = [c for c in components if c]
        components.sort(key=lambda c: (-len(c), min(c)))
        sets.extend(components)
    recurrence_ids = frozenset(
        node for recurrence in recurrences for node in recurrence.nodes
    )
    return sets, recurrence_ids


def _reachable(digraph: nx.DiGraph, sources: set[int]) -> set[int]:
    seen = set(sources)
    frontier = list(sources)
    while frontier:
        node = frontier.pop()
        for succ in digraph.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def _reaching(digraph: nx.DiGraph, targets: set[int]) -> set[int]:
    seen = set(targets)
    frontier = list(targets)
    while frontier:
        node = frontier.pop()
        for pred in digraph.predecessors(node):
            if pred not in seen:
                seen.add(pred)
                frontier.append(pred)
    return seen


def hrms_order(
    graph: DependenceGraph, machine: MachineConfig
) -> OrderingResult:
    """Pre-order the nodes of ``graph`` (see module docstring)."""
    if len(graph) == 0:
        return OrderingResult(order=(), priority={}, recurrence_nodes=frozenset())
    depth, height = _depths_and_heights(graph, machine)
    node_sets, recurrence_ids = _priority_node_sets(graph, machine)

    ordered: list[int] = []
    placed: set[int] = set()

    def top_down_key(node: int) -> tuple:
        # Most critical remaining path first; deep nodes last.
        return (height[node], -depth[node], -node)

    def bottom_up_key(node: int) -> tuple:
        return (depth[node], -height[node], -node)

    for node_set in node_sets:
        pending = set(node_set) - placed
        while pending:
            from_preds = {
                n for n in pending if graph.preds(n) & placed
            }
            from_succs = {
                n for n in pending if graph.succs(n) & placed
            }
            if from_preds:
                sweep, direction = set(from_preds), "top-down"
            elif from_succs:
                sweep, direction = set(from_succs), "bottom-up"
            else:
                # Fresh region: seed with its true sources (no predecessor
                # inside the pending set).  A recurrence set may have no
                # sources at all; fall back to its shallowest nodes.
                sources = {
                    n for n in pending if not (graph.preds(n) & pending - {n})
                }
                if sources:
                    sweep = sources
                else:
                    min_depth = min(depth[n] for n in pending)
                    sweep = {n for n in pending if depth[n] == min_depth}
                direction = "top-down"
            while sweep:
                if direction == "top-down":
                    node = max(sweep, key=top_down_key)
                else:
                    node = max(sweep, key=bottom_up_key)
                sweep.discard(node)
                pending.discard(node)
                ordered.append(node)
                placed.add(node)
                if direction == "top-down":
                    sweep |= graph.succs(node) & pending
                else:
                    sweep |= graph.preds(node) & pending

    total = len(ordered)
    priority = {node: float(total - index) for index, node in enumerate(ordered)}
    return OrderingResult(
        order=tuple(ordered),
        priority=priority,
        recurrence_nodes=recurrence_ids,
    )


def ordering_property_violations(
    graph: DependenceGraph, order: tuple[int, ...]
) -> list[int]:
    """Nodes violating the preds-XOR-succs property of the ordering.

    A violation is a node whose already-ordered neighbours include both
    predecessors and successors.  For a correct HRMS-style ordering only
    recurrence-closing nodes may appear here, so the list length is
    bounded by the number of recurrence circuits (asserted by tests).
    """
    placed: set[int] = set()
    violations = []
    for node in order:
        preds_in = graph.preds(node) & placed
        succs_in = graph.succs(node) & placed
        if preds_in and succs_in:
            violations.append(node)
        placed.add(node)
    return violations
