"""Node pre-ordering (HRMS strategy, Section 3.1 of the paper)."""

from repro.order.hrms import (
    OrderingResult,
    hrms_order,
    ordering_property_violations,
)

__all__ = ["OrderingResult", "hrms_order", "ordering_property_violations"]
