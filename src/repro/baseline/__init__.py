"""Comparison baseline: the non-iterative clustered scheduler of [31]."""

from repro.baseline.noniterative import NonIterativeScheduler

__all__ = ["NonIterativeScheduler"]
