"""The non-iterative clustered modulo scheduler of Sánchez & González [31].

This is the comparator used throughout Section 4 of the paper.  Its
published characteristics, which this implementation reproduces from the
description given in the paper (DESIGN.md substitution note (e)):

* cluster assignment and scheduling in a single pass over the nodes, but
  **no backtracking**: once placed, an operation is never ejected, and a
  node that finds no free slot forces the whole loop to be rescheduled at
  ``II + 1``;
* **no spill code**: "when the algorithm runs out of registers, then it
  increases the II of the loop without trying to insert spill code";
* loop invariants are accounted for (as in the paper's re-implementation
  of [31]), which is what produces the *non-convergence* reported in
  Table 2: an invariant-heavy cluster needs its registers at any II, so
  raising the II can never fix the shortage.
"""

from __future__ import annotations

import time

from repro.core.params import MirsParams, max_ii_for
from repro.core.result import ScheduleResult
from repro.core.state import SchedulerState
from repro.core.verify import verify_schedule
from repro.cluster.moves import add_move, next_needed_move
from repro.cluster.selection import select_cluster
from repro.errors import SchedulingError
from repro.graph.ddg import DependenceGraph
from repro.graph.mii import compute_mii
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.order.hrms import hrms_order
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.regalloc import allocate_registers
from repro.schedule.slots import dependence_window, find_free_slot


class NonIterativeScheduler:
    """Cluster-aware modulo scheduler without backtracking or spilling."""

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
    ):
        self.machine = machine
        self.params = params or MirsParams()
        self.verify = verify

    # ------------------------------------------------------------------

    def schedule(self, graph: DependenceGraph) -> ScheduleResult:
        """Schedule one loop; may return ``converged=False`` (Table 2)."""
        started = time.perf_counter()
        pristine = graph.clone()
        ordering = hrms_order(pristine, self.machine)
        mii = compute_mii(pristine, self.machine)
        limit = max_ii_for(mii, len(pristine), self.params)

        restarts = 0
        ii = mii
        while ii <= limit:
            state = self._attempt(pristine.clone(), ii, ordering.priority)
            if state is not None:
                return self._finalize(
                    state, mii, restarts, time.perf_counter() - started
                )
            restarts += 1
            ii += 1
        # Genuine non-convergence (the "Not Cnvr" column of Table 2).
        return ScheduleResult(
            loop=pristine.name,
            machine=self.machine,
            converged=False,
            ii=limit,
            mii=mii,
            restarts=restarts,
            scheduling_seconds=time.perf_counter() - started,
            trip_count=pristine.trip_count,
        )

    # ------------------------------------------------------------------

    def _attempt(
        self,
        graph: DependenceGraph,
        ii: int,
        priorities: dict[int, float],
    ) -> SchedulerState | None:
        state = SchedulerState(graph, self.machine, ii, priorities, self.params)
        while not state.pl.empty():
            node_id = state.pl.pop()
            if node_id not in state.graph:
                continue
            node = state.graph.node(node_id)
            cluster = select_cluster(state, node)
            guard = 0
            while True:
                plan = next_needed_move(state, node, cluster)
                if plan is None:
                    break
                move = add_move(state, plan)
                if not self._place(state, move, plan.dst_cluster):
                    return None
                guard += 1
                if guard > 4 * self.machine.clusters + 8:
                    return None
            if not self._place(state, node, cluster):
                return None
        if not self._fits_registers(state):
            return None
        return state

    def _place(self, state: SchedulerState, node, cluster: int) -> bool:
        """First-free-slot placement; no forcing, no ejection."""
        window = dependence_window(
            state.graph, state.schedule, node, state.machine
        )
        src_cluster = node.src_cluster if node.is_move else None
        slot = find_free_slot(
            state.schedule, node, cluster, window, src_cluster=src_cluster
        )
        if slot is None:
            return False
        state.schedule.place(node, cluster, slot, src_cluster=src_cluster)
        state.stats.nodes_scheduled += 1
        return True

    def _fits_registers(self, state: SchedulerState) -> bool:
        available = state.machine.cluster.registers
        if available is None:
            return True
        # MaxLive never exceeds the allocation, so the state's live
        # pressure tracker rejects over-budget attempts without running
        # the allocator (same short-circuit as MIRS-C's final check).
        if any(
            live > available
            for live in state.pressure.max_live_all().values()
        ):
            return False
        if state.colouring is not None:
            return all(
                used <= available
                for used in state.colouring.registers_used_all().values()
            )
        allocations = allocate_registers(
            state.graph, state.schedule, state.machine, state.pressure
        )
        return all(
            alloc.registers_used <= available
            for alloc in allocations.values()
        )

    # ------------------------------------------------------------------

    def _finalize(
        self,
        state: SchedulerState,
        mii: int,
        restarts: int,
        elapsed: float,
    ) -> ScheduleResult:
        graph = state.graph
        schedule = state.schedule
        # The result keeps the graph; stop observing it so the tracker
        # (and the whole partial schedule) are not retained with it.
        state.pressure.detach()
        analysis = LifetimeAnalysis(graph, schedule, state.machine)
        allocations = allocate_registers(
            graph, schedule, state.machine, analysis
        )
        times = {n: schedule.time(n) for n in schedule.scheduled_ids()}
        clusters = {n: schedule.cluster(n) for n in schedule.scheduled_ids()}
        register_usage = {c: a.registers_used for c, a in allocations.items()}
        result = ScheduleResult(
            loop=graph.name,
            machine=state.machine,
            converged=True,
            ii=state.ii,
            mii=mii,
            times=times,
            clusters=clusters,
            register_usage=register_usage,
            max_live={
                c: analysis.max_live(c)
                for c in range(state.machine.clusters)
            },
            memory_traffic=state.memory_operation_count(),
            spill_operations=0,
            move_operations=graph.count_kind(OpKind.MOVE),
            stage_count=max(1, schedule.stage_count()),
            restarts=restarts,
            scheduling_seconds=elapsed,
            stats=state.stats,
            graph=graph,
            trip_count=graph.trip_count,
        )
        if self.verify:
            violations = verify_schedule(
                graph, state.machine, state.ii, times, clusters, register_usage
            )
            if violations:
                raise SchedulingError(
                    f"[31] produced an invalid schedule for {graph.name}: "
                    + "; ".join(violations[:5])
                )
        return result
