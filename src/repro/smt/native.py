"""The built-in exact engine for fixed-II decision problems.

A systematic CSP search over the encoding in :mod:`repro.smt.problem`,
always available (no third-party solver): the z3-free CI matrix, the
examples and the differential tests all run on it, and the z3 backend
must agree with it verdict-for-verdict.

Search structure, outermost to innermost:

1. **Cluster assignments** (clustered machines only) are enumerated
   with first-use symmetry breaking (clusters are identical, so the
   first node to use a new cluster always picks the lowest unused
   index) and per-cluster load pruning (FU-cycle and memory-port sums
   against ``II * capacity``).
2. **Anchor normalization**: any schedule shifts by a multiple of II —
   preserving every MRT row and folded pressure row — until its
   earliest operation issues in ``[0, II)``; that operation has no
   incoming zero-distance dependence, so the search branches over those
   anchor candidates only, each with ``t_anchor < II`` and
   ``t_i >= t_anchor``.  Exhausting every anchor proves UNSAT over the
   whole horizon.
3. **Issue-cycle search**: bounds propagation over the dependence
   difference constraints (the move inequalities included), branching
   on the tightest-window variable with ascending values; every
   variable fixed by propagation or decision immediately reserves its
   MRT rows (per-row counts, plus exact instance packing where
   unpipelined multi-row reservations exist), and complete assignments
   take a final MaxLive check mirroring ``LifetimeAnalysis``.

The search is *deterministic* and budgeted in solver steps (decisions +
propagations), never wall-clock: a cached verdict is reproducible on
any machine.  Budget exhaustion yields ``"unknown"``, and an exhausted
search (no assignment left) is a genuine UNSAT certificate for the
problem's horizon.
"""

from __future__ import annotations

import dataclasses

from repro.core.verify import instances_assignable
from repro.machine.resources import ResourceClass
from repro.smt.problem import FixedIIProblem, MoveSlot

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _Exhausted(Exception):
    """Internal: the step budget ran out mid-search."""


class _Budget:
    __slots__ = ("left", "total")

    def __init__(self, steps: int):
        self.left = steps
        self.total = steps

    def spend(self, n: int = 1) -> None:
        self.left -= n
        if self.left < 0:
            raise _Exhausted

    @property
    def spent(self) -> int:
        return self.total - max(self.left, 0)


@dataclasses.dataclass
class SolveOutcome:
    """Verdict of one fixed-II decision problem.

    ``times``/``clusters``/``move_times`` are populated for ``sat``
    (move send cycles in the producer's iteration frame, keyed by
    ``(producer, destination cluster)``).  ``steps`` is the
    deterministic work spent, whatever the verdict.
    """

    status: str
    times: dict[int, int] | None = None
    clusters: dict[int, int] | None = None
    move_times: dict[tuple[int, int], int] | None = None
    steps: int = 0


def solve_fixed_ii(problem: FixedIIProblem, step_budget: int) -> SolveOutcome:
    """Decide one fixed-II problem exactly (within the step budget)."""
    budget = _Budget(step_budget)
    try:
        for clusters in _cluster_assignments(problem, budget):
            solution = _solve_times(problem, clusters, budget)
            if solution is not None:
                times, move_times = solution
                return SolveOutcome(
                    status=SAT,
                    times=times,
                    clusters=clusters,
                    move_times=move_times,
                    steps=budget.spent,
                )
        return SolveOutcome(status=UNSAT, steps=budget.spent)
    except _Exhausted:
        return SolveOutcome(status=UNKNOWN, steps=budget.spent)


# ----------------------------------------------------------------------
# Cluster enumeration
# ----------------------------------------------------------------------


def _cluster_assignments(problem: FixedIIProblem, budget: _Budget):
    machine = problem.machine
    if machine.clusters == 1:
        yield dict.fromkeys(problem.nodes, 0)
        return
    ii = problem.ii
    gp_cap = ii * machine.cluster.gp_units
    mem_cap = ii * machine.cluster.mem_ports
    nodes = problem.nodes
    graph = problem.graph
    gp_load = [0] * machine.clusters
    mem_load = [0] * machine.clusters
    assignment: dict[int, int] = {}

    def feasible_moves(clusters: dict[int, int]) -> bool:
        """Port/bus counting prune over the activated move slots."""
        active = problem.active_slots(clusters)
        if machine.buses is not None and len(active) > ii * machine.buses:
            return False
        per_src: dict[int, int] = {}
        per_dst: dict[int, int] = {}
        out_cap = ii * machine.instances(ResourceClass.OUT_PORT)
        in_cap = ii * machine.instances(ResourceClass.IN_PORT)
        for slot in active:
            src = clusters[slot.producer]
            per_src[src] = per_src.get(src, 0) + 1
            per_dst[slot.dst] = per_dst.get(slot.dst, 0) + 1
            if per_src[src] > out_cap or per_dst[slot.dst] > in_cap:
                return False
        return True

    def extend(index: int):
        if index == len(nodes):
            if feasible_moves(assignment):
                yield dict(assignment)
            return
        nid = nodes[index]
        node = graph.node(nid)
        used = 1 + max(assignment.values(), default=-1)
        for cluster in range(min(machine.clusters, used + 1)):
            budget.spend()
            if node.kind.is_compute:
                demand = problem.occupancy[nid]
                if gp_load[cluster] + demand > gp_cap:
                    continue
                gp_load[cluster] += demand
            elif node.kind.is_memory:
                if mem_load[cluster] + 1 > mem_cap:
                    continue
                mem_load[cluster] += 1
            assignment[nid] = cluster
            yield from extend(index + 1)
            del assignment[nid]
            if node.kind.is_compute:
                gp_load[cluster] -= problem.occupancy[nid]
            elif node.kind.is_memory:
                mem_load[cluster] -= 1

    yield from extend(0)


# ----------------------------------------------------------------------
# Issue-cycle CSP under one cluster assignment
# ----------------------------------------------------------------------


class _TimeSearch:
    """Difference-constraint CSP with modulo resource reservations."""

    def __init__(
        self,
        problem: FixedIIProblem,
        clusters: dict[int, int],
        slots: list[MoveSlot],
        budget: _Budget,
    ):
        self.problem = problem
        self.machine = problem.machine
        self.ii = problem.ii
        self.clusters = clusters
        self.budget = budget
        self.nodes = problem.nodes
        self.var_of = dict(problem.var_of)
        self.slots = slots
        self.slot_var: dict[tuple[int, int], int] = {}
        nvars = len(self.nodes) + len(slots)
        horizon = problem.horizon
        self.lb = [0] * nvars
        self.ub = [horizon - 1] * nvars
        for i, slot in enumerate(slots):
            var = len(self.nodes) + i
            self.slot_var[(slot.producer, slot.dst)] = var
            maxd = max(
                (d for v, d in slot.active_consumers(clusters)), default=0
            )
            self.ub[var] = horizon - 1 + self.ii * maxd
        self.out_arcs: list[list[tuple[int, int]]] = [[] for _ in range(nvars)]
        self.in_arcs: list[list[tuple[int, int]]] = [[] for _ in range(nvars)]
        self.fixed = [False] * nvars
        self.infeasible = not self._build_arcs()
        # (resource, cluster) -> [row counts, capacity, masks or None].
        # Masks are tracked only where exact multi-row packing matters
        # (GP pools hosting unpipelined operations).
        self.pools: dict[tuple[ResourceClass, int], list] = {}
        self.trail: list[tuple] = []

    # -- model construction -------------------------------------------

    def _arc(self, u: int, v: int, w: int) -> bool:
        """Add ``t_v >= t_u + w``; False when trivially inconsistent."""
        if u == v:
            return w <= 0
        self.out_arcs[u].append((v, w))
        self.in_arcs[v].append((u, w))
        return True

    def _build_arcs(self) -> bool:
        ii = self.ii
        problem = self.problem
        clusters = self.clusters
        move_latency = self.machine.move_latency
        for src, dst, distance, latency in problem.order_edges:
            if not self._arc(
                self.var_of[src], self.var_of[dst], latency - ii * distance
            ):
                return False
        for src, dst, distance, latency in problem.reg_edges:
            if clusters[src] == clusters[dst]:
                if not self._arc(
                    self.var_of[src], self.var_of[dst], latency - ii * distance
                ):
                    return False
            else:
                slot_var = self.slot_var[(src, clusters[dst])]
                # Send after the value exists; deliver before the use.
                self._arc(self.var_of[src], slot_var, problem.latency[src])
                self._arc(slot_var, self.var_of[dst], move_latency - ii * distance)
        return True

    # -- trail / bounds -----------------------------------------------

    def _set_lb(self, var: int, value: int, queue: list[int]) -> bool:
        if value <= self.lb[var]:
            return True
        if value > self.ub[var]:
            return False
        self.trail.append(("lb", var, self.lb[var]))
        self.lb[var] = value
        queue.append(var)
        if value == self.ub[var]:
            return self._on_fixed(var)
        return True

    def _set_ub(self, var: int, value: int, queue: list[int]) -> bool:
        if value >= self.ub[var]:
            return True
        if value < self.lb[var]:
            return False
        self.trail.append(("ub", var, self.ub[var]))
        self.ub[var] = value
        queue.append(var)
        if value == self.lb[var]:
            return self._on_fixed(var)
        return True

    def _undo(self, mark: int) -> None:
        while len(self.trail) > mark:
            entry = self.trail.pop()
            kind = entry[0]
            if kind == "lb":
                self.lb[entry[1]] = entry[2]
            elif kind == "ub":
                self.ub[entry[1]] = entry[2]
            elif kind == "fix":
                self.fixed[entry[1]] = False
            elif kind == "row":
                self.pools[entry[1]][0][entry[2]] -= 1
            else:  # "mask"
                self.pools[entry[1]][2].pop()

    def _propagate(self, queue: list[int]) -> bool:
        while queue:
            var = queue.pop()
            self.budget.spend()
            base_lb = self.lb[var]
            for succ, w in self.out_arcs[var]:
                if not self._set_lb(succ, base_lb + w, queue):
                    return False
            base_ub = self.ub[var]
            for pred, w in self.in_arcs[var]:
                if not self._set_ub(pred, base_ub - w, queue):
                    return False
        return True

    # -- resource reservations ----------------------------------------

    def _pool(self, resource: ResourceClass, cluster: int) -> list:
        key = (resource, cluster)
        pool = self.pools.get(key)
        if pool is None:
            if resource is ResourceClass.BUS:
                capacity = self.machine.buses
            else:
                capacity = self.machine.instances(resource)
            track_masks = resource is ResourceClass.GP_FU and any(
                occ > 1 for occ in self.problem.occupancy.values()
            )
            pool = [[0] * self.ii, capacity, [] if track_masks else None]
            self.pools[key] = pool
        return pool

    def _reserve(
        self, resource: ResourceClass, cluster: int, rows: list[int]
    ) -> bool:
        if resource is ResourceClass.BUS and self.machine.buses is None:
            return True  # unbounded interconnect: never a constraint
        pool = self._pool(resource, cluster)
        counts, capacity, masks = pool
        key = (resource, cluster)
        mask = 0
        for row in rows:
            row %= self.ii
            bit = 1 << row
            if mask & bit:
                return False  # self-collision: occupancy exceeds II
            mask |= bit
            if counts[row] + 1 > capacity:
                return False
            counts[row] += 1
            self.trail.append(("row", key, row))
        if masks is not None:
            masks.append(mask)
            self.trail.append(("mask", key))
            self.budget.spend(len(masks))
            if not instances_assignable(list(masks), capacity):
                return False
        return True

    def _on_fixed(self, var: int) -> bool:
        self.trail.append(("fix", var))
        self.fixed[var] = True
        value = self.lb[var]
        if var < len(self.nodes):
            nid = self.nodes[var]
            node = self.problem.graph.node(nid)
            cluster = self.clusters[nid]
            if node.kind.is_compute:
                occ = self.problem.occupancy[nid]
                return self._reserve(
                    ResourceClass.GP_FU,
                    cluster,
                    [value + k for k in range(occ)],
                )
            if node.kind.is_memory:
                return self._reserve(ResourceClass.MEM_PORT, cluster, [value])
            return True
        slot = self.slots[var - len(self.nodes)]
        src_cluster = self.clusters[slot.producer]
        return (
            self._reserve(ResourceClass.OUT_PORT, src_cluster, [value])
            and self._reserve(ResourceClass.BUS, -1, [value])
            and self._reserve(
                ResourceClass.IN_PORT,
                slot.dst,
                [value + self.machine.move_latency - 1],
            )
        )

    # -- search --------------------------------------------------------

    def _pick(self) -> int | None:
        best = None
        best_width = None
        for var in range(len(self.lb)):
            if self.fixed[var]:
                continue
            width = self.ub[var] - self.lb[var]
            if best_width is None or width < best_width:
                best, best_width = var, width
        return best

    def _leaf_ok(self) -> bool:
        caps = self.problem.register_caps
        if not caps:
            return True
        self.budget.spend(len(self.nodes))
        times = {nid: self.lb[self.var_of[nid]] for nid in self.nodes}
        move_times = {key: self.lb[var] for key, var in self.slot_var.items()}
        pressure = self.problem.pressure_rows(times, self.clusters, move_times)
        return all(
            max(pressure[cluster], default=0) <= cap
            for cluster, cap in caps.items()
        )

    def _dfs(self) -> bool:
        var = self._pick()
        if var is None:
            return self._leaf_ok()
        for value in range(self.lb[var], self.ub[var] + 1):
            self.budget.spend()
            mark = len(self.trail)
            queue: list[int] = []
            ok = (
                self._set_lb(var, value, queue)
                and self._set_ub(var, value, queue)
                and self._propagate(queue)
            )
            if ok and self._dfs():
                return True
            self._undo(mark)
        return False

    def solve_anchored(self, anchor: int) -> bool:
        """Search with ``t_anchor < II`` and every node at/after it."""
        mark = len(self.trail)
        anchor_var = self.var_of[anchor]
        queue: list[int] = []
        ok = self._set_ub(anchor_var, self.ii - 1, queue)
        if ok:
            for var in range(len(self.nodes)):
                if var == anchor_var:
                    continue
                # t_i >= t_anchor: encode via the anchor's lower bound
                # (the anchor is pinned to [0, II) so a one-shot bound
                # suffices; full arcs would slow propagation for no
                # extra pruning once lb[anchor] is 0).
                if self.lb[var] < self.lb[anchor_var]:
                    ok = self._set_lb(var, self.lb[anchor_var], queue)
                    if not ok:
                        break
        if ok and self._propagate(queue) and self._dfs():
            return True
        self._undo(mark)
        return False


def _solve_times(
    problem: FixedIIProblem,
    clusters: dict[int, int],
    budget: _Budget,
) -> tuple[dict[int, int], dict[tuple[int, int], int]] | None:
    slots = problem.active_slots(clusters)
    search = _TimeSearch(problem, clusters, slots, budget)
    if search.infeasible:
        return None
    for anchor in problem.anchor_candidates():
        if search.solve_anchored(anchor):
            times = {nid: search.lb[search.var_of[nid]] for nid in problem.nodes}
            move_times = {
                key: search.lb[var] for key, var in search.slot_var.items()
            }
            return times, move_times
    return None
