"""The z3 engine for fixed-II decision problems.

A direct integer encoding of :class:`repro.smt.problem.FixedIIProblem`
for the optional ``z3-solver`` package (lazily gated through
:func:`repro.errors.require_optional`, like the frontend's tree-sitter
dependency).  The encoding and the native engine must agree verdict for
verdict — the differential suite checks exactly that on the z3 CI leg.

Encoding notes:

* Issue cycles ``t_i`` are bounded to ``[0, horizon)``; a weak
  normalization clause (*some* anchor candidate issues in ``[0, II)``)
  is sound because any schedule shifts by a multiple of II into it.
* Modulo row membership uses SMT-LIB ``mod`` semantics (non-negative
  for a positive modulus), so ``(r - t) mod II < occupancy`` is the
  row-coverage test even when ``r - t`` is negative.
* Per-row counting sums are exact for single-row reservations (memory
  ports, move ports, buses).  Unpipelined multi-row reservations
  additionally get explicit FU-instance variables with pairwise
  disjointness — counting alone is necessary but not sufficient there.
* The register bound introduces one end-of-lifetime variable per value
  with only ``>=`` constraints; a satisfying model can always tighten
  them to the true lifetime ends, so the bound is exact in both the
  SAT and the UNSAT direction.
* The work budget is z3's deterministic ``rlimit`` (never wall-clock),
  so verdicts — including ``unknown`` — reproduce across runs.
"""

from __future__ import annotations

from repro.errors import require_optional
from repro.smt.native import SAT, UNKNOWN, UNSAT, SolveOutcome
from repro.smt.problem import FixedIIProblem

_FEATURE = "the z3 exact-scheduling engine (scheduler='smt', engine='z3')"
_HINT = "pip install z3-solver"


def solve_fixed_ii_z3(problem: FixedIIProblem, step_budget: int) -> SolveOutcome:
    """Decide one fixed-II problem with z3 (within the rlimit budget)."""
    z3 = require_optional("z3", feature=_FEATURE, hint=_HINT)
    ii = problem.ii
    machine = problem.machine
    graph = problem.graph
    horizon = problem.horizon
    clustered = machine.clusters > 1

    if any(occ > ii for occ in problem.occupancy.values()):
        # An unpipelined operation reissues every II cycles on one FU;
        # occupancy beyond II self-collides — UNSAT with no solver work.
        return SolveOutcome(status=UNSAT, steps=0)

    solver = z3.Solver()
    solver.set("rlimit", step_budget)

    t = {nid: z3.Int(f"t_{nid}") for nid in problem.nodes}
    for var in t.values():
        solver.add(var >= 0, var < horizon)
    if clustered:
        c = {nid: z3.Int(f"c_{nid}") for nid in problem.nodes}
        for var in c.values():
            solver.add(var >= 0, var < machine.clusters)
        # Clusters are interchangeable: pin the first node's label.
        solver.add(c[problem.nodes[0]] == 0)
    else:
        c = {}

    def cluster_is(nid: int, k: int):
        if not clustered:
            return z3.BoolVal(k == 0)
        return c[nid] == k

    # Move slots: send cycle, activation condition.
    tau = {}
    active = {}
    for slot in problem.slots:
        key = (slot.producer, slot.dst)
        var = z3.Int(f"tau_{slot.producer}_{slot.dst}")
        maxd = max((d for _, d in slot.consumers), default=0)
        solver.add(var >= 0, var < horizon + ii * maxd)
        tau[key] = var
        active[key] = z3.And(
            c[slot.producer] != slot.dst,
            z3.Or([c[v] == slot.dst for v, _ in slot.consumers]),
        )

    # Dependences.
    for src, dst, distance, latency in problem.order_edges:
        solver.add(t[dst] >= t[src] + latency - ii * distance)
    for src, dst, distance, latency in problem.reg_edges:
        if not clustered:
            solver.add(t[dst] >= t[src] + latency - ii * distance)
            continue
        same = c[src] == c[dst]
        solver.add(z3.Implies(same, t[dst] >= t[src] + latency - ii * distance))
        for k in range(machine.clusters):
            slot_var = tau[(src, k)]
            solver.add(
                z3.Implies(
                    z3.And(c[dst] == k, c[src] != k),
                    z3.And(
                        slot_var >= t[src] + problem.latency[src],
                        t[dst] >= slot_var + machine.move_latency - ii * distance,
                    ),
                )
            )

    # Weak normalization: some anchor issues in the first II cycles.
    anchors = problem.anchor_candidates()
    if anchors:
        solver.add(z3.Or([t[a] <= ii - 1 for a in anchors]))

    def row_of(expr):
        return expr % ii

    # Memory ports: single-row reservations, counting is exact.
    memory_nodes = [
        nid for nid in problem.nodes if graph.node(nid).kind.is_memory
    ]
    for k in range(machine.clusters):
        for r in range(ii):
            terms = [
                z3.If(
                    z3.And(cluster_is(nid, k), row_of(t[nid]) == r), 1, 0
                )
                for nid in memory_nodes
            ]
            if terms:
                solver.add(z3.Sum(terms) <= machine.cluster.mem_ports)

    # GP FUs: row-coverage counting, made exact for unpipelined mixes
    # by explicit instance variables with pairwise disjointness.
    compute_nodes = [
        nid for nid in problem.nodes if graph.node(nid).kind.is_compute
    ]
    for k in range(machine.clusters):
        for r in range(ii):
            terms = [
                z3.If(
                    z3.And(
                        cluster_is(nid, k),
                        row_of(r - t[nid]) < problem.occupancy[nid],
                    ),
                    1,
                    0,
                )
                for nid in compute_nodes
            ]
            if terms:
                solver.add(z3.Sum(terms) <= machine.cluster.gp_units)
    if any(occ > 1 for occ in problem.occupancy.values()):
        fu = {nid: z3.Int(f"fu_{nid}") for nid in compute_nodes}
        for nid in compute_nodes:
            solver.add(fu[nid] >= 0, fu[nid] < machine.cluster.gp_units)
        for i, a in enumerate(compute_nodes):
            for b in compute_nodes[i + 1:]:
                same_unit = (
                    z3.And(c[a] == c[b], fu[a] == fu[b])
                    if clustered
                    else fu[a] == fu[b]
                )
                solver.add(
                    z3.Implies(
                        same_unit,
                        z3.And(
                            row_of(t[b] - t[a]) >= problem.occupancy[a],
                            row_of(t[a] - t[b]) >= problem.occupancy[b],
                        ),
                    )
                )

    # Move ports and buses: single-row reservations per move.
    if problem.slots:
        move_latency = machine.move_latency
        for r in range(ii):
            for k in range(machine.clusters):
                out_terms = [
                    z3.If(
                        z3.And(
                            active[(s.producer, s.dst)],
                            c[s.producer] == k,
                            row_of(tau[(s.producer, s.dst)]) == r,
                        ),
                        1,
                        0,
                    )
                    for s in problem.slots
                ]
                solver.add(z3.Sum(out_terms) <= 1)
                in_terms = [
                    z3.If(
                        z3.And(
                            active[(s.producer, s.dst)],
                            row_of(tau[(s.producer, s.dst)] + move_latency - 1)
                            == r,
                        ),
                        1,
                        0,
                    )
                    for s in problem.slots
                    if s.dst == k
                ]
                if in_terms:
                    solver.add(z3.Sum(in_terms) <= 1)
            if machine.buses is not None:
                bus_terms = [
                    z3.If(
                        z3.And(
                            active[(s.producer, s.dst)],
                            row_of(tau[(s.producer, s.dst)]) == r,
                        ),
                        1,
                        0,
                    )
                    for s in problem.slots
                ]
                solver.add(z3.Sum(bus_terms) <= machine.buses)

    # Register bound: folded-lifetime counting per cluster and row.
    if problem.register_caps:
        ends = {}
        values = [
            nid
            for nid in problem.nodes
            if graph.node(nid).produces_value
        ]
        from repro.graph.ddg import DepKind

        for nid in values:
            end = z3.Int(f"end_{nid}")
            solver.add(end >= t[nid] + problem.latency[nid])
            for edge in graph.out_edges(nid):
                if edge.kind is not DepKind.REG:
                    continue
                use = t[edge.dst] + ii * edge.distance
                if clustered:
                    solver.add(z3.Implies(c[edge.dst] == c[nid], end >= use))
                else:
                    solver.add(end >= use)
            for k in range(machine.clusters):
                key = (nid, k)
                if key in tau:
                    solver.add(z3.Implies(active[key], end >= tau[key]))
            ends[nid] = end
        move_ends = {}
        for slot in problem.slots:
            key = (slot.producer, slot.dst)
            end = z3.Int(f"mend_{slot.producer}_{slot.dst}")
            solver.add(end >= tau[key] + machine.move_latency)
            for v, d in slot.consumers:
                solver.add(
                    z3.Implies(
                        z3.And(active[key], c[v] == slot.dst),
                        end >= t[v] + ii * d,
                    )
                )
            move_ends[key] = end

        def folded(start, end, r):
            length = end - start
            return (length / ii) + z3.If(row_of(r - start) < length % ii, 1, 0)

        for k, cap in sorted(problem.register_caps.items()):
            for r in range(ii):
                terms = [
                    z3.If(
                        cluster_is(nid, k),
                        folded(t[nid], ends[nid], r),
                        0,
                    )
                    for nid in values
                ]
                terms += [
                    z3.If(
                        active[(s.producer, s.dst)],
                        folded(
                            tau[(s.producer, s.dst)],
                            move_ends[(s.producer, s.dst)],
                            r,
                        ),
                        0,
                    )
                    for s in problem.slots
                    if s.dst == k
                ]
                terms += [
                    z3.If(
                        z3.Or([cluster_is(v, k) for v in consumer_ids]),
                        1,
                        0,
                    )
                    for _, consumer_ids in problem.invariants
                ]
                if terms:
                    solver.add(z3.Sum(terms) <= cap)

    verdict = solver.check()
    steps = _rlimit_spent(solver)
    if verdict == z3.unsat:
        return SolveOutcome(status=UNSAT, steps=steps)
    if verdict != z3.sat:
        return SolveOutcome(status=UNKNOWN, steps=steps)

    model = solver.model()
    times = {nid: model.eval(t[nid], model_completion=True).as_long()
             for nid in problem.nodes}
    if clustered:
        clusters = {
            nid: model.eval(c[nid], model_completion=True).as_long()
            for nid in problem.nodes
        }
    else:
        clusters = dict.fromkeys(problem.nodes, 0)
    move_times = {
        (slot.producer, slot.dst): model.eval(
            tau[(slot.producer, slot.dst)], model_completion=True
        ).as_long()
        for slot in problem.active_slots(clusters)
    }
    return SolveOutcome(
        status=SAT,
        times=times,
        clusters=clusters,
        move_times=move_times,
        steps=steps,
    )


def _rlimit_spent(solver) -> int:
    """z3's deterministic work counter (0 when the key is absent)."""
    stats = solver.statistics()
    for i in range(len(stats)):
        if stats.get_key_name(i) == "rlimit count":
            return int(stats.get_value(i))
    return 0
