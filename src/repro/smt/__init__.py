"""Exact modulo scheduling: an optimality oracle for the heuristics.

``scheduler="smt"`` solves fixed-II decision problems *exactly*,
ascending the II ladder from MII, so the first feasible point comes
with UNSAT certificates for every II below it —
a machine-checked proof of minimality within the model's horizon.  Two
engines share one encoding (:mod:`repro.smt.problem`): the built-in
CSP search (:mod:`repro.smt.native`, always available) and z3
(:mod:`repro.smt.z3backend`, optional dependency).
"""

from repro.smt.native import SolveOutcome, solve_fixed_ii
from repro.smt.problem import (
    FixedIIProblem,
    MoveSlot,
    relaxation_covers,
    span_within_horizon,
)
from repro.smt.scheduler import SmtScheduler

__all__ = [
    "FixedIIProblem",
    "MoveSlot",
    "SmtScheduler",
    "SolveOutcome",
    "relaxation_covers",
    "solve_fixed_ii",
    "span_within_horizon",
]
