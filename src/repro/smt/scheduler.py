"""The exact-scheduling driver: ``scheduler="smt"``.

Runs the fixed-II decision problems of :mod:`repro.smt.problem` on an
ascending II ladder and turns the first feasible verdict into a full
:class:`~repro.core.result.ScheduleResult` — moves materialized into
the graph, registers allocated, the schedule re-verified by
:func:`repro.core.verify.verify_schedule` exactly as the heuristic's
results are.  Every result carries an ``oracle`` dict recording the
engine, the per-II certificate ledger and the proven lower bound:

* ``status="optimal"`` — achieved II == proven lower bound (UNSAT
  certificates at every II below, analytic MII certificate underneath);
* ``status="feasible"`` — a schedule exists but some lower II ended
  ``unknown`` (budget) or satisfiable-yet-unallocatable;
* ``status="unsolved"`` — the ladder hit an ``unknown`` verdict before
  any feasible point;
* ``status="skipped"`` — the loop or machine is outside the backend's
  size gates (``SmtParams.max_nodes`` / ``max_clusters``) or the graph
  is not pristine.

The register bound is MaxLive per cluster; the allocator's arc
colouring may still exceed MaxLive (the paper's footnote 2), in which
case the driver tightens the affected cluster's cap by the overshoot
and re-solves the *same* II a few times.  Those refinement solves run
under tightened caps, so their UNSAT outcomes are never recorded as
optimality certificates — only first-solve verdicts under the true
register file enter the proven chain.
"""

from __future__ import annotations

import time

from repro.core.params import MirsParams, SmtParams, max_ii_for
from repro.core.result import ScheduleResult
from repro.core.state import SchedulerStats
from repro.core.verify import verify_schedule
from repro.errors import ConvergenceError, SchedulingError
from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.mii import compute_mii
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind
from repro.obs import resolve_tracer
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import allocate_registers
from repro.smt import native
from repro.smt.problem import FixedIIProblem

#: Refinement attempts per II when arc colouring exceeds MaxLive.
_COLOURING_RETRIES = 4


class SmtScheduler:
    """Exact modulo scheduler (optimality oracle).

    Mirrors the constructor shape of :class:`repro.core.mirsc.MirsC` so
    :meth:`repro.core.request.ScheduleRequest.make_scheduler` and the
    executor's worker processes can treat all backends uniformly.
    ``strict=False`` (the executor's mode) reports skipped/unsolved
    loops as ``converged=False`` results instead of raising.
    """

    def __init__(
        self,
        machine: MachineConfig,
        params: MirsParams | None = None,
        verify: bool = True,
        strict: bool = True,
        tracer=None,
    ):
        self.machine = machine
        self.params = params or MirsParams()
        self.smt: SmtParams = self.params.effective_smt()
        self.verify = verify
        self.strict = strict
        self.tracer = resolve_tracer(tracer)

    # ------------------------------------------------------------------

    def schedule(self, graph: DependenceGraph) -> ScheduleResult:
        started = time.perf_counter()
        pristine = graph.clone()
        engine = self.smt.effective_engine()
        solve = self._solver(engine)
        mii = compute_mii(pristine, self.machine)

        reason = self._skip_reason(pristine)
        if reason is not None:
            return self._give_up(
                pristine, mii, started, engine,
                status="skipped", reason=reason, certificates=[],
            )

        base_caps = self._register_caps()
        limit = max_ii_for(mii, len(pristine), self.params)
        certificates: list[dict] = []
        if mii > 1:
            # IIs below MII need no solver: ResMII/RecMII is analytic.
            certificates.append(
                {"ii": mii - 1, "verdict": "mii", "steps": 0, "horizon": None}
            )
        proven_lower = mii
        restarts = 0

        span = (
            self.tracer.begin("phase.smt", "schedule", loop=pristine.name)
            if self.tracer.enabled
            else None
        )
        try:
            ii = mii
            while ii <= limit:
                problem = self._problem(pristine, ii, base_caps)
                outcome = solve(problem, self.smt.step_budget)
                certificates.append(
                    {
                        "ii": ii,
                        "verdict": outcome.status,
                        "steps": outcome.steps,
                        "horizon": problem.horizon,
                    }
                )
                if outcome.status == native.UNSAT:
                    if proven_lower == ii:
                        proven_lower = ii + 1
                    restarts += 1
                    ii += 1
                    continue
                if outcome.status == native.UNKNOWN:
                    return self._give_up(
                        pristine, mii, started, engine,
                        status="unsolved",
                        reason=f"step budget exhausted at II={ii}",
                        certificates=certificates,
                        proven_lower=proven_lower,
                        last_ii=ii,
                    )
                result = self._accept(
                    pristine, problem, outcome, solve, base_caps, certificates
                )
                if result is None:
                    # Satisfiable at the MaxLive bound, but arc colouring
                    # would not fit even after refinement: not a lower-
                    # bound certificate, just an II this driver cannot
                    # realize — ascend.
                    restarts += 1
                    ii += 1
                    continue
                result.mii = mii
                result.restarts = restarts
                result.scheduling_seconds = time.perf_counter() - started
                result.oracle = self._oracle(
                    engine,
                    status=(
                        "optimal" if result.ii == proven_lower else "feasible"
                    ),
                    mii=mii,
                    proven_lower=proven_lower,
                    achieved=result.ii,
                    certificates=certificates,
                )
                return result
            return self._give_up(
                pristine, mii, started, engine,
                status="unsolved",
                reason=f"no feasible II up to the search limit {limit}",
                certificates=certificates,
                proven_lower=proven_lower,
                last_ii=limit,
            )
        finally:
            if span is not None:
                self.tracer.end(span)

    # ------------------------------------------------------------------
    # Guards and bookkeeping
    # ------------------------------------------------------------------

    def _solver(self, engine: str):
        if engine == "z3":
            from repro.smt.z3backend import solve_fixed_ii_z3

            return solve_fixed_ii_z3
        return native.solve_fixed_ii

    def _skip_reason(self, graph: DependenceGraph) -> str | None:
        if self.machine.clusters > self.smt.max_clusters:
            return (
                f"{self.machine.clusters} clusters exceed the exact "
                f"backend's gate ({self.smt.max_clusters})"
            )
        if len(graph) > self.smt.max_nodes:
            return (
                f"{len(graph)} nodes exceed the exact backend's gate "
                f"({self.smt.max_nodes})"
            )
        for node in graph.nodes():
            if node.is_move or node.is_spill:
                return "graph already contains move/spill nodes"
        return None

    def _register_caps(self) -> dict[int, int] | None:
        if not self.smt.register_bound:
            return None
        registers = self.machine.cluster.registers
        if registers is None:
            return None
        return dict.fromkeys(range(self.machine.clusters), registers)

    def _problem(
        self,
        graph: DependenceGraph,
        ii: int,
        caps: dict[int, int] | None,
    ) -> FixedIIProblem:
        return FixedIIProblem(
            graph,
            self.machine,
            ii,
            horizon_stages=self.smt.horizon_stages,
            register_caps=caps,
        )

    def _oracle(
        self,
        engine: str,
        *,
        status: str,
        mii: int,
        proven_lower: int,
        achieved: int | None,
        certificates: list[dict],
        reason: str = "",
    ) -> dict:
        return {
            "backend": "smt",
            "engine": engine,
            "status": status,
            "mii": mii,
            "proven_lower_ii": proven_lower,
            "achieved_ii": achieved,
            "proven_optimal": achieved is not None and achieved == proven_lower,
            "horizon_stages": self.smt.horizon_stages,
            "register_bound": self._register_caps() is not None,
            "step_budget": self.smt.step_budget,
            "certificates": certificates,
            "reason": reason,
        }

    def _give_up(
        self,
        graph: DependenceGraph,
        mii: int,
        started: float,
        engine: str,
        *,
        status: str,
        reason: str,
        certificates: list[dict],
        proven_lower: int | None = None,
        last_ii: int | None = None,
    ) -> ScheduleResult:
        if self.strict:
            raise ConvergenceError(
                f"exact backend {status} on {graph.name}: {reason}",
                last_ii=last_ii,
                highest_ii=last_ii,
            )
        stats = SchedulerStats()
        stats.search_trace = list(certificates)
        return ScheduleResult(
            loop=graph.name,
            machine=self.machine,
            converged=False,
            ii=last_ii if last_ii is not None else mii,
            mii=mii,
            scheduling_seconds=time.perf_counter() - started,
            stats=stats,
            trip_count=graph.trip_count,
            oracle=self._oracle(
                engine,
                status=status,
                mii=mii,
                proven_lower=proven_lower if proven_lower is not None else mii,
                achieved=None,
                certificates=certificates,
                reason=reason,
            ),
        )

    # ------------------------------------------------------------------
    # Accepting a SAT verdict
    # ------------------------------------------------------------------

    def _accept(
        self,
        pristine: DependenceGraph,
        problem: FixedIIProblem,
        outcome: native.SolveOutcome,
        solve,
        base_caps: dict[int, int] | None,
        certificates: list[dict],
    ) -> ScheduleResult | None:
        """Realize a SAT outcome; ``None`` if arc colouring defeats it."""
        caps = dict(base_caps) if base_caps else None
        for attempt in range(_COLOURING_RETRIES + 1):
            violations = problem.check_solution(
                outcome.times, outcome.clusters, outcome.move_times
            )
            if violations:
                raise SchedulingError(
                    f"exact engine returned an invalid model for "
                    f"{pristine.name} at II={problem.ii}: "
                    + "; ".join(violations[:5])
                )
            result, overflow = self._materialize(pristine, problem, outcome)
            if not overflow:
                return result
            if caps is None or attempt == _COLOURING_RETRIES:
                return None
            # Footnote 2: colouring needed more than MaxLive.  Tighten
            # the overflowing clusters by the overshoot and re-solve the
            # same II under the stricter (non-certifying) caps.
            for cluster, overshoot in overflow.items():
                caps[cluster] = caps[cluster] - overshoot
                if caps[cluster] < 1:
                    return None
            problem = self._problem(pristine, problem.ii, caps)
            outcome = solve(problem, self.smt.step_budget)
            certificates.append(
                {
                    "ii": problem.ii,
                    "verdict": outcome.status,
                    "steps": outcome.steps,
                    "horizon": problem.horizon,
                    "refined_caps": sorted(caps.items()),
                }
            )
            if outcome.status != native.SAT:
                return None
        return None

    def _materialize(
        self,
        pristine: DependenceGraph,
        problem: FixedIIProblem,
        outcome: native.SolveOutcome,
    ) -> tuple[ScheduleResult | None, dict[int, int]]:
        """Turn a model into a verified result.

        Returns ``(result, {})`` on success or ``(None, overflow)`` with
        the per-cluster register overshoot when allocation exceeds the
        register file (footnote 2).
        """
        ii = problem.ii
        graph = pristine.clone()
        times = dict(outcome.times)
        clusters = dict(outcome.clusters)
        for slot in problem.active_slots(outcome.clusters):
            tau = outcome.move_times[(slot.producer, slot.dst)]
            edges = [
                e
                for e in graph.out_edges(slot.producer)
                if e.kind is DepKind.REG
                and e.dst != slot.producer
                and clusters[e.dst] == slot.dst
            ]
            min_distance = min(e.distance for e in edges)
            move = graph.new_node(
                OpKind.MOVE,
                move_of=slot.producer,
                src_cluster=clusters[slot.producer],
            )
            graph.add_edge(
                slot.producer, move.id, kind=DepKind.REG, distance=min_distance
            )
            for edge in edges:
                graph.remove_edge(edge)
                graph.add_edge(
                    move.id,
                    edge.dst,
                    kind=DepKind.REG,
                    distance=edge.distance - min_distance,
                )
            # The model's send cycle lives in the producer's iteration
            # frame; the emitted move issues II*d earlier, like the
            # heuristic's distance-split insertion.
            times[move.id] = tau - ii * min_distance
            clusters[move.id] = slot.dst

        # Shift by a multiple of II (row- and pressure-preserving) so
        # every issue cycle is non-negative with the earliest in [0, II).
        low = min(times.values())
        shift = -(ii * (low // ii))
        if shift:
            times = {nid: t + shift for nid, t in times.items()}

        schedule = self._install(graph, ii, times, clusters)
        analysis = LifetimeAnalysis(graph, schedule, self.machine)
        allocations = allocate_registers(graph, schedule, self.machine, analysis)
        register_usage = {c: a.registers_used for c, a in allocations.items()}
        available = self.machine.cluster.registers
        if available is not None:
            overflow = {
                c: used - available
                for c, used in register_usage.items()
                if used > available
            }
            if overflow:
                return None, overflow

        result = ScheduleResult(
            loop=graph.name,
            machine=self.machine,
            converged=True,
            ii=ii,
            mii=ii,  # caller overwrites with the analytic MII
            times=times,
            clusters=clusters,
            register_usage=register_usage,
            max_live={
                c: analysis.max_live(c) for c in range(self.machine.clusters)
            },
            memory_traffic=sum(
                1 for n in graph.nodes() if n.kind.is_memory
            ),
            spill_operations=0,
            move_operations=graph.count_kind(OpKind.MOVE),
            stage_count=max(1, schedule.stage_count()),
            stats=SchedulerStats(
                moves_added=graph.count_kind(OpKind.MOVE),
                nodes_scheduled=len(times),
            ),
            graph=graph,
            trip_count=graph.trip_count,
        )
        if self.verify:
            violations = verify_schedule(
                graph, self.machine, ii, times, clusters, register_usage
            )
            if violations:
                raise SchedulingError(
                    f"exact backend produced an invalid schedule for "
                    f"{graph.name}: " + "; ".join(violations[:5])
                )
        return result, {}

    def _install(
        self,
        graph: DependenceGraph,
        ii: int,
        times: dict[int, int],
        clusters: dict[int, int],
    ) -> PartialSchedule:
        """Install a complete assignment into a PartialSchedule.

        Writes the placement state directly instead of replaying
        ``place()``: the MRT's online first-fit instance picking is
        order-dependent for multi-row (unpipelined) reservations and can
        reject a valid packing replayed in the wrong order — the exact
        instance assignment is re-checked by ``verify_schedule`` anyway.
        """
        schedule = PartialSchedule(self.machine, ii)
        for nid in sorted(times):
            cycle = times[nid]
            schedule._time[nid] = cycle
            schedule._cluster[nid] = clusters[nid]
            schedule._seq[nid] = next(schedule._counter)
            schedule._rows.setdefault(cycle % ii, {})[nid] = clusters[nid]
            schedule.prev_cycle[nid] = cycle
        return schedule
