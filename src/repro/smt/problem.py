"""Solver-neutral encoding of fixed-II modulo scheduling.

The exact backend decomposes optimal modulo scheduling the way the
solver-based schedulers in PAPERS.md do (Roorda's SMT software
pipelining, SAT-MapIt): a *decision problem* per candidate II — "does a
valid modulo schedule at exactly this II exist?" — plus an outer search
that ascends from MII collecting UNSAT certificates until the first
feasible II.  This module owns the decision problem's encoding; the
engines (:mod:`repro.smt.native`, :mod:`repro.smt.z3backend`) only
decide *how* to search it.

Model
-----

Variables: one issue cycle ``t_i`` per node, one cluster ``c_i`` per
node (clustered machines), and one send cycle ``tau_{p,c}`` per
*potential* inter-cluster move — the pair ``(producer p, destination
cluster c)``, mirroring the heuristic's "one move per (value,
destination cluster)" rule.  Move send cycles live in the *producer's*
iteration frame: ``tau >= t_p + latency(p)`` and each cross-cluster
consumer obeys ``t_v >= tau + move_latency - II * distance(p, v)``.
This subsumes the heuristic's distance-splitting (producer edge carries
``min(distances)``, consumer edges the residual) because the frame
shift is a multiple of II and therefore invisible to the modulo
reservation rows and to the folded register-pressure count.

Constraints:

* dependence inequalities across the back-edge —
  ``t_dst - t_src - latency + II * distance >= 0`` (through the move
  pair when the endpoints sit in different clusters);
* exact per-row resource sums for GP FUs (occupancy rows for
  unpipelined operations, with exact instance packing), memory ports,
  and per-move OUT_PORT @ source / BUS / IN_PORT @ destination;
* a MaxLive-style per-cluster register bound that mirrors
  :class:`repro.schedule.lifetimes.LifetimeAnalysis` bit for bit
  (row folding of each value's ``[def, last-use)`` interval, plus one
  register per cluster consuming each loop invariant).

Soundness of the bound
----------------------

The model is a *relaxation* of what the heuristic emits whenever the
heuristic result uses no spill code, no invariant spilling and no
chained moves (:func:`relaxation_covers`): any such schedule maps
directly onto a satisfying assignment, so an UNSAT verdict at II is a
machine-checked proof that the heuristic cannot beat II either.  All
certificates are *horizon-relative*: "no schedule whose issue cycles
fit in ``[0, horizon)``" — every certificate records the horizon it was
proven under, and comparisons must check the heuristic's schedule span
against it (:func:`ScheduleResult` spans beyond the horizon are not
refuted).  II values below MII need no solver at all: the analytic
ResMII/RecMII argument (:mod:`repro.graph.mii`) is their certificate.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SchedulingError
from repro.graph.ddg import DepKind, DependenceGraph
from repro.graph.latency import edge_latency, node_latency
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind, ResourceClass


@dataclasses.dataclass(frozen=True)
class MoveSlot:
    """One potential inter-cluster move: (producer, destination cluster).

    ``consumers`` lists every register edge of the producer as
    ``(consumer id, distance)``; a slot is *active* under a cluster
    assignment iff the producer sits in another cluster and at least one
    consumer sits in ``dst``.  ``var`` is the slot's variable index in
    the problem's flat variable space (nodes first, slots after).
    """

    producer: int
    dst: int
    var: int
    consumers: tuple[tuple[int, int], ...]

    def active_consumers(self, clusters: dict[int, int]) -> list[tuple[int, int]]:
        return [(v, d) for v, d in self.consumers if clusters[v] == self.dst]


class FixedIIProblem:
    """The fixed-II decision problem for one pristine loop.

    Accepts only pristine graphs (no move or spill nodes): the exact
    model *derives* communication, and spilling is deliberately outside
    the relaxation (see the module docstring).
    """

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        ii: int,
        *,
        horizon_stages: int = 2,
        register_caps: dict[int, int] | None = None,
    ):
        if ii < 1:
            raise SchedulingError("initiation interval must be positive")
        for node in graph.nodes():
            if node.is_move or node.is_spill:
                raise SchedulingError(
                    "the exact backend schedules pristine loops only "
                    f"(node {node.id} is a {'move' if node.is_move else 'spill'})"
                )
        self.graph = graph
        self.machine = machine
        self.ii = ii
        self.nodes: list[int] = sorted(graph.node_ids())
        self.var_of = {nid: i for i, nid in enumerate(self.nodes)}
        self.latency = {
            nid: node_latency(graph.node(nid), machine) for nid in self.nodes
        }
        self.occupancy = {
            nid: machine.occupancy(graph.node(nid).kind)
            for nid in self.nodes
            if graph.node(nid).kind.is_compute
        }
        #: Register edges between distinct nodes: (src, dst, distance,
        #: direct latency).  The direct latency is what a same-cluster
        #: placement must respect (edge override included); the
        #: cross-cluster path uses producer latency + move latency.
        self.reg_edges: list[tuple[int, int, int, int]] = []
        #: Ordering edges (memory/control) plus same-node register
        #: self-edges: always direct, never moved.
        self.order_edges: list[tuple[int, int, int, int]] = []
        for edge in sorted(
            graph.edges(), key=lambda e: (e.src, e.dst, e.kind.value, e.distance)
        ):
            latency = edge_latency(graph, edge, machine)
            item = (edge.src, edge.dst, edge.distance, latency)
            if edge.kind is DepKind.REG and edge.src != edge.dst:
                self.reg_edges.append(item)
            else:
                self.order_edges.append(item)
        #: Potential move slots, only on clustered machines.
        self.slots: list[MoveSlot] = []
        self.slot_of: dict[tuple[int, int], MoveSlot] = {}
        if machine.clusters > 1:
            consumers: dict[int, list[tuple[int, int]]] = {}
            for src, dst, distance, _ in self.reg_edges:
                consumers.setdefault(src, []).append((dst, distance))
            var = len(self.nodes)
            for producer in sorted(consumers):
                for cluster in range(machine.clusters):
                    slot = MoveSlot(
                        producer=producer,
                        dst=cluster,
                        var=var,
                        consumers=tuple(consumers[producer]),
                    )
                    self.slots.append(slot)
                    self.slot_of[(producer, cluster)] = slot
                    var += 1
        self.horizon_stages = horizon_stages
        self.horizon = self._compute_horizon()
        #: Per-cluster register caps (``None`` = unbounded).  Callers
        #: tighten individual clusters when the allocator's arc
        #: colouring lands above MaxLive (the paper's footnote-2 gap).
        self.register_caps = dict(register_caps or {})
        self.invariants: list[tuple[int, tuple[int, ...]]] = [
            (inv.id, tuple(sorted(inv.consumers)))
            for inv in sorted(graph.invariants(), key=lambda i: i.id)
        ]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def _compute_horizon(self) -> int:
        """Absolute cycle bound H: issue cycles range over ``[0, H)``.

        Any modulo schedule can be shifted down by a multiple of II
        (which preserves every reservation row and every folded
        pressure row) until its earliest issue cycle lies in
        ``[0, II)``, so bounding the *span* bounds the problem without
        losing schedules of that span.  The span allowance is the
        longest zero-distance dependence path (with a move-latency
        surcharge per hop on clustered machines) plus
        ``horizon_stages`` extra kernel stages of headroom.
        """
        surcharge = self.machine.move_latency if self.machine.clusters > 1 else 0
        # Longest path over the intra-iteration (distance 0) DAG.
        longest = {nid: self.latency[nid] for nid in self.nodes}
        for nid in self._zero_distance_topo():
            for edge in self.graph.out_edges(nid):
                if edge.distance != 0:
                    continue
                latency = edge_latency(self.graph, edge, self.machine)
                reach = longest[nid] + latency + surcharge
                if reach > longest.get(edge.dst, 0):
                    longest[edge.dst] = reach
        span = max(longest.values(), default=1)
        stages = -(-span // self.ii) + self.horizon_stages
        return self.ii * (stages + 1)

    def _zero_distance_topo(self) -> list[int]:
        """Topological order of the distance-0 subgraph (always a DAG:
        the builder rejects zero-distance cycles)."""
        indeg = {nid: 0 for nid in self.nodes}
        for edge in self.graph.edges():
            if edge.distance == 0 and edge.src != edge.dst:
                indeg[edge.dst] += 1
        ready = sorted(nid for nid, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            for edge in self.graph.out_edges(nid):
                if edge.distance != 0 or edge.src == edge.dst:
                    continue
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
            ready.sort()
        if len(order) != len(self.nodes):
            raise SchedulingError("zero-distance dependence cycle in input")
        return order

    def anchor_candidates(self) -> list[int]:
        """Nodes that can be the earliest-issued operation.

        In any schedule the argmin-cycle node has no incoming
        zero-distance edge of positive latency (its predecessor would
        issue strictly earlier), so the normalized search — "some anchor
        issues in ``[0, II)`` and nothing issues before it" — only needs
        to branch over these sources.
        """
        blocked: set[int] = set()
        for edge in self.graph.edges():
            if edge.distance == 0 and edge.src != edge.dst:
                if edge_latency(self.graph, edge, self.machine) > 0:
                    blocked.add(edge.dst)
        return [nid for nid in self.nodes if nid not in blocked]

    def active_slots(self, clusters: dict[int, int]) -> list[MoveSlot]:
        """Slots activated by a full cluster assignment."""
        active = []
        for slot in self.slots:
            if clusters[slot.producer] == slot.dst:
                continue
            if any(clusters[v] == slot.dst for v, _ in slot.consumers):
                active.append(slot)
        return active

    # ------------------------------------------------------------------
    # Register pressure (the exact mirror of LifetimeAnalysis)
    # ------------------------------------------------------------------

    def pressure_rows(
        self,
        times: dict[int, int],
        clusters: dict[int, int],
        move_times: dict[tuple[int, int], int],
    ) -> dict[int, list[int]]:
        """Per-cluster live-value count per MRT row.

        Mirrors :class:`~repro.schedule.lifetimes.LifetimeAnalysis`:
        every non-store node's value lives from its issue cycle to the
        max of (issue + latency, each same-cluster use at
        ``t_use + II * distance``); each active move both extends its
        producer's lifetime (the send reads it) and creates a copy
        lifetime in the destination cluster.  Lifetimes longer than II
        contribute one live instance per wrapped stage.  Loop invariants
        add one register per cluster with a consumer.
        """
        ii = self.ii
        graph = self.graph
        rows = {c: [0] * ii for c in range(self.machine.clusters)}
        bases = {c: 0 for c in range(self.machine.clusters)}

        def fold(cluster: int, start: int, end: int) -> None:
            full, rest = divmod(end - start, ii)
            bases[cluster] += full
            if rest:
                first = start % ii
                for k in range(rest):
                    rows[cluster][(first + k) % ii] += 1

        for nid in self.nodes:
            node = graph.node(nid)
            if node.kind is OpKind.STORE:
                continue
            cluster = clusters[nid]
            start = times[nid]
            end = start + self.latency[nid]
            for edge in graph.out_edges(nid):
                if edge.kind is not DepKind.REG:
                    continue
                if clusters[edge.dst] == cluster:
                    end = max(end, times[edge.dst] + ii * edge.distance)
            for c in range(self.machine.clusters):
                tau = move_times.get((nid, c))
                if tau is not None:
                    end = max(end, tau)
            fold(cluster, start, end)
        for (producer, dst), tau in sorted(move_times.items()):
            slot = self.slot_of[(producer, dst)]
            end = tau + self.machine.move_latency
            for v, d in slot.active_consumers(clusters):
                end = max(end, times[v] + ii * d)
            fold(dst, tau, end)
        totals = {
            c: [bases[c] + r for r in rows[c]] for c in rows
        }
        for _, consumer_ids in self.invariants:
            held = {clusters[v] for v in consumer_ids}
            for c in held:
                totals[c] = [r + 1 for r in totals[c]]
        return totals

    # ------------------------------------------------------------------
    # Full solution check (belt and braces over any engine)
    # ------------------------------------------------------------------

    def check_solution(
        self,
        times: dict[int, int],
        clusters: dict[int, int],
        move_times: dict[tuple[int, int], int],
    ) -> list[str]:
        """Independent validation of an engine's model; [] = valid."""
        from repro.core.verify import instances_assignable

        ii = self.ii
        machine = self.machine
        violations: list[str] = []
        active = {
            (s.producer, s.dst) for s in self.active_slots(clusters)
        }
        if active != set(move_times):
            violations.append(
                f"move slots {sorted(active)} active but times given for "
                f"{sorted(move_times)}"
            )
            return violations

        for src, dst, distance, latency in self.reg_edges:
            if clusters[src] == clusters[dst]:
                slack = times[dst] - times[src] - latency + ii * distance
                if slack < 0:
                    violations.append(
                        f"dependence {src}->{dst} violated by {-slack}"
                    )
            else:
                tau = move_times[(src, clusters[dst])]
                if tau < times[src] + self.latency[src]:
                    violations.append(f"move ({src},{clusters[dst]}) sends early")
                slack = times[dst] - tau - machine.move_latency + ii * distance
                if slack < 0:
                    violations.append(
                        f"moved dependence {src}->{dst} violated by {-slack}"
                    )
        for src, dst, distance, latency in self.order_edges:
            slack = times[dst] - times[src] - latency + ii * distance
            if slack < 0:
                violations.append(
                    f"ordering {src}->{dst} violated by {-slack}"
                )

        # Resources: exact per-pool packing, as the verifier does.
        pools: dict[tuple[ResourceClass, int], list[int]] = {}

        def reserve(resource: ResourceClass, cluster: int, rows: list[int]) -> None:
            mask = 0
            for row in rows:
                mask |= 1 << (row % ii)
            pools.setdefault((resource, cluster), []).append(mask)

        for nid in self.nodes:
            node = self.graph.node(nid)
            if node.kind.is_compute:
                occ = self.occupancy[nid]
                if occ > ii:
                    violations.append(f"node {nid} occupancy {occ} > II")
                    continue
                reserve(
                    ResourceClass.GP_FU,
                    clusters[nid],
                    [times[nid] + k for k in range(occ)],
                )
            elif node.kind.is_memory:
                reserve(ResourceClass.MEM_PORT, clusters[nid], [times[nid]])
        for (producer, dst), tau in move_times.items():
            reserve(ResourceClass.OUT_PORT, clusters[producer], [tau])
            reserve(ResourceClass.IN_PORT, dst, [tau + machine.move_latency - 1])
            if machine.buses is not None:
                reserve(ResourceClass.BUS, -1, [tau])
        for (resource, cluster), masks in sorted(
            pools.items(), key=lambda kv: (kv[0][0].name, kv[0][1])
        ):
            capacity = (
                machine.buses
                if resource is ResourceClass.BUS
                else machine.instances(resource)
            )
            for row in range(ii):
                bit = 1 << row
                if sum(1 for m in masks if m & bit) > capacity:
                    violations.append(
                        f"{resource.name}@{cluster} over capacity in row {row}"
                    )
                    break
            else:
                if not instances_assignable(masks, capacity):
                    violations.append(
                        f"{resource.name}@{cluster} admits no instance packing"
                    )

        if self.register_caps:
            pressure = self.pressure_rows(times, clusters, move_times)
            for cluster, cap in sorted(self.register_caps.items()):
                peak = max(pressure[cluster], default=0)
                if peak > cap:
                    violations.append(
                        f"cluster {cluster} MaxLive {peak} exceeds cap {cap}"
                    )
        return violations


def relaxation_covers(result) -> tuple[bool, str]:
    """Is a heuristic :class:`ScheduleResult` inside the exact model?

    The exact model forbids spill code, invariant spilling and chained
    moves (a move whose producer is itself a move); heuristic results
    using any of those live outside the relaxation, so the SMT lower
    bound does not apply to them.  Returns ``(covered, reason)``.
    """
    if not result.converged:
        return False, "not converged"
    if result.spill_operations > 0:
        return False, "spill code"
    graph = result.graph
    if graph is None:
        return False, "no graph attached"
    for node in graph.nodes():
        if not node.is_move:
            continue
        if node.move_of_invariant is not None:
            return False, "invariant spill"
        if node.move_of is not None and graph.node(node.move_of).is_move:
            return False, "chained moves"
    return True, ""


def span_within_horizon(result, horizon: int) -> bool:
    """Does a schedule, shift-normalized, fit inside a certificate horizon?

    UNSAT certificates are horizon-relative ("no schedule with issue
    cycles in ``[0, horizon)``"), and shifting by a multiple of II is
    the only free normalization — so a heuristic schedule contradicts a
    certificate at its II only if its earliest-cycle-normalized span
    still fits the horizon.  Schedules spanning beyond it are simply
    not refuted.
    """
    if not result.times:
        return True
    low = min(result.times.values())
    high = max(result.times.values())
    return low % result.ii + (high - low) < horizon
