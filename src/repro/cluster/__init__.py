"""Cluster assignment, inter-cluster moves, register-pressure balancing."""

from repro.cluster.selection import select_cluster
from repro.cluster.moves import MovePlan, add_move, next_needed_move
from repro.cluster.balance import balance_register_pressure

__all__ = [
    "select_cluster",
    "MovePlan",
    "add_move",
    "next_needed_move",
    "balance_register_pressure",
]
