"""Insertion of inter-cluster move operations (step C2, Section 3.3.2).

A move is needed whenever the node about to be scheduled consumes a value
produced in a different cluster, or produces a value already consumed by
operations scheduled in a different cluster.  One move is inserted per
(value, destination cluster) pair: "If a U node has one or more
successors in another cluster, only one move operation is inserted."

Edge distances are preserved across the rewiring: a move transporting the
value instance from ``d`` iterations ago carries distance ``d`` on its
producer edge, and each rewired consumer edge keeps the residual distance
relative to the move.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SchedulingError
from repro.core.state import SchedulerState
from repro.graph.ddg import DepKind, Edge, Node
from repro.machine.resources import OpKind


@dataclasses.dataclass(frozen=True)
class MovePlan:
    """One pending communication discovered by ``next_needed_move``.

    Attributes:
        producer: node whose value must travel (``None`` for invariants).
        invariant: invariant id when re-materializing an invariant.
        src_cluster: cluster the value currently lives in.
        dst_cluster: cluster that needs it.
        edges: the register edges to rewire through the new move.
    """

    producer: int | None
    src_cluster: int
    dst_cluster: int
    edges: tuple[Edge, ...]
    invariant: int | None = None


def next_needed_move(
    state: SchedulerState, node: Node, cluster: int
) -> MovePlan | None:
    """The next move required before ``node`` can live in ``cluster``.

    Checked each time around the C2 loop of Figure 4, because scheduling
    one move can evict operations and change what is still needed.

    Operand side: each scheduled producer in a foreign cluster needs its
    value moved here.  Consumer side: each foreign cluster holding
    scheduled consumers of this node's value needs one move from here.
    """
    graph = state.graph
    schedule = state.schedule

    # Operand side.
    by_producer: dict[int, list[Edge]] = {}
    for edge in graph.in_edges(node.id):
        if edge.kind is not DepKind.REG or edge.src == node.id:
            continue
        if not schedule.is_scheduled(edge.src):
            continue
        if schedule.cluster(edge.src) != cluster:
            by_producer.setdefault(edge.src, []).append(edge)
    for producer, edges in sorted(by_producer.items()):
        return MovePlan(
            producer=producer,
            src_cluster=schedule.cluster(producer),
            dst_cluster=cluster,
            edges=tuple(edges),
        )

    # Consumer side.
    if node.produces_value:
        by_cluster: dict[int, list[Edge]] = {}
        for edge in graph.out_edges(node.id):
            if edge.kind is not DepKind.REG or edge.dst == node.id:
                continue
            if not schedule.is_scheduled(edge.dst):
                continue
            consumer = graph.node(edge.dst)
            if consumer.is_move and consumer.src_cluster is not None:
                # A consumer that is itself a move reads the value in its
                # declared source cluster (chained communications).
                consumer_cluster = consumer.src_cluster
            else:
                consumer_cluster = schedule.cluster(edge.dst)
            if consumer_cluster != cluster:
                by_cluster.setdefault(consumer_cluster, []).append(edge)
        for dst_cluster, edges in sorted(by_cluster.items()):
            return MovePlan(
                producer=node.id,
                src_cluster=cluster,
                dst_cluster=dst_cluster,
                edges=tuple(edges),
            )
    return None


def add_move(state: SchedulerState, plan: MovePlan) -> Node:
    """Insert the move described by ``plan`` into graph and PriorityList."""
    graph = state.graph
    if plan.src_cluster == plan.dst_cluster:
        raise SchedulingError("move within a single cluster is meaningless")
    if plan.invariant is not None:
        raise SchedulingError(
            "invariant re-materialization goes through add_invariant_move"
        )

    producer = plan.producer
    if producer is None:
        raise SchedulingError("non-invariant move plan needs a producer")
    min_distance = min(edge.distance for edge in plan.edges)
    move = graph.new_node(
        OpKind.MOVE,
        move_of=producer,
        src_cluster=plan.src_cluster,
    )
    graph.add_edge(
        producer, move.id, kind=DepKind.REG, distance=min_distance
    )
    for edge in plan.edges:
        graph.remove_edge(edge)
        graph.add_edge(
            move.id,
            edge.dst,
            kind=DepKind.REG,
            distance=edge.distance - min_distance,
        )
    # Moves inherit the priority of their associated producer/consumer
    # node (Section 3.1); ties resolve FIFO, so the move is picked
    # immediately if it is ever ejected.
    anchor = state.pl.priority.get(producer)
    if anchor is None:
        anchor = max(state.pl.priority.values(), default=1.0)
    state.pl.set_priority(move.id, anchor)
    state.stats.moves_added += 1
    return move


def add_invariant_move(
    state: SchedulerState,
    invariant_id: int,
    consumers: list[int],
    src_cluster: int,
    dst_cluster: int,
) -> Node:
    """Insert a move re-materializing an invariant in ``dst_cluster``.

    The listed consumers stop reading the invariant directly and read the
    move's value instead; the invariant's register in ``dst_cluster`` is
    freed (Section 3.3.2).
    """
    graph = state.graph
    invariant = graph.invariant(invariant_id)
    move = graph.new_node(
        OpKind.MOVE,
        move_of_invariant=invariant_id,
        src_cluster=src_cluster,
    )
    priority = 0.0
    for consumer in consumers:
        if consumer not in invariant.consumers:
            raise SchedulingError(
                f"node {consumer} does not consume invariant {invariant_id}"
            )
        invariant.consumers.discard(consumer)
        graph.add_edge(move.id, consumer, kind=DepKind.REG, distance=0)
        priority = max(priority, state.pl.priority.get(consumer, 0.0))
    state.pl.push(move.id, priority - 0.5)
    state.spilled_invariants.add((invariant_id, dst_cluster))
    state.stats.moves_added += 1
    state.stats.invariant_spills += 1
    return move
