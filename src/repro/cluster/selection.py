"""Cluster selection (step C1 of Figure 4, Section 3.3.1).

After picking node U from the PriorityList the algorithm chooses the
cluster to schedule it into, considering **in this order**:

1. availability of an empty slot for U in the current partial schedule of
   each cluster (one slot is enough),
2. the minimum number of move operations that would be required to access
   the values produced/consumed by already-scheduled operations,
3. the minimum occupancy of the functional unit that can perform U.

Spill loads and stores are pinned next to the value they spill: the store
goes where the value lives, the load where its consumer executes, so the
spilled traffic never crosses clusters gratuitously.
"""

from __future__ import annotations

from repro.core.state import SchedulerState
from repro.graph.ddg import DepKind, Node
from repro.machine.resources import OpKind, ResourceClass
from repro.schedule.slots import dependence_window, find_free_slot


def _resource_for(kind: OpKind) -> ResourceClass:
    if kind.is_compute:
        return ResourceClass.GP_FU
    if kind.is_memory:
        return ResourceClass.MEM_PORT
    return ResourceClass.OUT_PORT


def _communication_profile(
    state: SchedulerState, node: Node
) -> tuple[list[int], set[int]]:
    """Clusters of the scheduled producers / consumers touching ``node``.

    Computed once per selection: the per-cluster move count is then a
    pure function of this profile, so choosing among C clusters costs
    O(degree + C) instead of the old O(degree x C) rescans.
    """
    producer_clusters: list[int] = []
    seen_producers: set[int] = set()
    for edge in state.graph.in_edges(node.id):
        if edge.kind is not DepKind.REG or edge.src in seen_producers:
            continue
        if edge.src == node.id:
            continue
        if state.schedule.is_scheduled(edge.src):
            seen_producers.add(edge.src)
            producer_clusters.append(state.schedule.cluster(edge.src))
    consumer_clusters: set[int] = set()
    if node.produces_value:
        consumer_clusters = {
            consumer_cluster
            for _, consumer_cluster in state.scheduled_reg_consumers(node.id)
        }
    return producer_clusters, consumer_clusters


def _moves_for(
    producer_clusters: list[int], consumer_clusters: set[int], cluster: int
) -> int:
    count = sum(1 for c in producer_clusters if c != cluster)
    count += sum(1 for c in consumer_clusters if c != cluster)
    return count


def moves_required(state: SchedulerState, node: Node, cluster: int) -> int:
    """Move operations needed if ``node`` lands in ``cluster``.

    One move per operand value living in a different cluster, plus one
    move per distinct foreign cluster holding already-scheduled consumers
    of the node's value.
    """
    producers, consumers = _communication_profile(state, node)
    return _moves_for(producers, consumers, cluster)


def _pinned_cluster(state: SchedulerState, node: Node) -> int | None:
    """Cluster a spill node is pinned to (next to its value / consumer)."""
    if not node.is_spill:
        return None
    if node.kind is OpKind.STORE:
        # Keep the store where the spilled value lives.
        for edge in state.graph.in_edges(node.id):
            if edge.kind is DepKind.REG and state.schedule.is_scheduled(edge.src):
                return state.schedule.cluster(edge.src)
    if node.kind is OpKind.LOAD:
        # Keep the load where its consumers execute.
        for edge in state.graph.out_edges(node.id):
            if edge.kind is DepKind.REG and state.schedule.is_scheduled(edge.dst):
                return state.schedule.cluster(edge.dst)
    return None


def select_cluster(state: SchedulerState, node: Node) -> int:
    """Choose the cluster for ``node`` (Section 3.3.1).

    For single-cluster machines this is always cluster 0.
    """
    machine = state.machine
    if machine.clusters == 1:
        return 0
    pinned = _pinned_cluster(state, node)
    if pinned is not None:
        return pinned

    window = dependence_window(
        state.graph,
        state.schedule,
        node,
        machine,
        distance_gauge=state.params.distance_gauge if node.is_spill else None,
    )
    resource = _resource_for(node.kind)
    producers, consumers = _communication_profile(state, node)

    best_cluster = 0
    best_key: tuple | None = None
    for cluster in range(machine.clusters):
        has_slot = (
            find_free_slot(state.schedule, node, cluster, window) is not None
        )
        moves = _moves_for(producers, consumers, cluster)
        occupancy = state.schedule.mrt.occupancy_fraction(resource, cluster)
        # Lexicographic preference: slot available, fewest moves, least
        # occupied FU, lowest index (determinism).
        key = (not has_slot, moves, occupancy, cluster)
        if best_key is None or key < best_key:
            best_key = key
            best_cluster = cluster
    return best_cluster
