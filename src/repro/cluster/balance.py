"""Register-pressure balancing by shifting move operations (Section 3.3.3).

When a cluster runs out of registers, MIRS-C first tries to *push or
pull* already-scheduled move operations in time: delaying a move into an
over-pressured cluster shortens the transported value's lifetime there
(the value is received later); advancing a move out of an over-pressured
cluster shortens the source value's lifetime (the value is read and sent
earlier).  Either way registers are released in one cluster at the cost
of occupancy in the other - spilling is attempted only "if not
sufficient".

Probing is *incremental*: the cluster's live-count rows are read off the
scheduler's :class:`~repro.schedule.pressure.PressureTracker` (already
current - no lifetime analysis is run), the contribution of the single
affected lifetime is subtracted, and each candidate cycle only re-folds
that one lifetime - O(II) per probe.
"""

from __future__ import annotations

from repro.core.state import SchedulerState
from repro.graph.ddg import DepKind
from repro.graph.latency import node_latency
from repro.schedule.pressure import fold_lifetime
from repro.schedule.slots import dependence_window

#: Cap on candidate cycles probed per move (keeps balancing cheap).
_MAX_PROBES = 8


def _candidate_moves(state: SchedulerState, cluster: int) -> list[int]:
    """Scheduled moves whose shifting could relieve ``cluster``."""
    candidates = []
    for node in state.graph.nodes():
        if not node.is_move or not state.schedule.is_scheduled(node.id):
            continue
        into = state.schedule.cluster(node.id) == cluster
        out_of = node.src_cluster == cluster
        if into or out_of:
            candidates.append(node.id)
    # Deterministic order: latest-placed first (cheapest to revisit).
    candidates.sort(key=state.schedule.placement_seq, reverse=True)
    return candidates


def _value_lifetime(
    state: SchedulerState, node_id: int, *, time_override: int | None = None
) -> tuple[int, int]:
    """[start, end) of a scheduled node's value on the current schedule.

    ``time_override`` evaluates the lifetime as if the node issued at a
    different cycle (used while probing move shifts).
    """
    schedule = state.schedule
    ii = schedule.ii
    start = (
        time_override
        if time_override is not None
        else schedule.time(node_id)
    )
    node = state.graph.node(node_id)
    end = start + node_latency(node, state.machine)
    for edge in state.graph.out_edges(node_id):
        if edge.kind is not DepKind.REG:
            continue
        if not schedule.is_scheduled(edge.dst):
            continue
        use = schedule.time(edge.dst) + ii * edge.distance
        if use > end:
            end = use
    return start, end


def _producer_lifetime_with_use(
    state: SchedulerState, producer: int, move_id: int, move_cycle: int
) -> tuple[int, int]:
    """Producer's lifetime if the move issued at ``move_cycle``."""
    schedule = state.schedule
    ii = schedule.ii
    start = schedule.time(producer)
    node = state.graph.node(producer)
    end = start + node_latency(node, state.machine)
    for edge in state.graph.out_edges(producer):
        if edge.kind is not DepKind.REG:
            continue
        if edge.dst == move_id:
            use = move_cycle + ii * edge.distance
        elif schedule.is_scheduled(edge.dst):
            use = schedule.time(edge.dst) + ii * edge.distance
        else:
            continue
        if use > end:
            end = use
    return start, end


def balance_register_pressure(state: SchedulerState, cluster: int) -> bool:
    """Try to relieve ``cluster`` by re-timing moves; True on improvement."""
    if not state.machine.is_clustered:
        return False
    schedule = state.schedule
    ii = schedule.ii
    tracker = state.pressure
    rows = tracker.variant_rows(cluster).copy()
    invariants = tracker.invariant_registers(cluster)
    baseline = int(rows.max()) + invariants if rows.size else invariants

    improved = False
    examined = 0
    for move_id in _candidate_moves(state, cluster):
        if examined >= state.params.balance_candidates:
            break
        examined += 1
        node = state.graph.node(move_id)
        old_cluster = schedule.cluster(move_id)
        old_cycle = schedule.time(move_id)
        into = old_cluster == cluster

        # Identify the one lifetime in ``cluster`` the shift affects and
        # strip its current contribution from the row counts.
        producer = None
        if into:
            affected_old = tracker.lifetime_bounds(move_id)
        else:
            producers = [
                e.src
                for e in state.graph.in_edges(move_id)
                if e.kind is DepKind.REG
            ]
            if not producers or not schedule.is_scheduled(producers[0]):
                continue  # invariant move: no producer lifetime to shrink
            producer = producers[0]
            if schedule.cluster(producer) != cluster:
                continue
            affected_old = _producer_lifetime_with_use(
                state, producer, move_id, old_cycle
            )
        stripped = rows.copy()
        fold_lifetime(stripped, ii, affected_old[0], affected_old[1], -1)

        schedule.eject(move_id)
        window = dependence_window(state.graph, schedule, node, state.machine)
        if into:
            hi = window.late if window.late is not None else old_cycle + ii - 1
            candidates = list(range(old_cycle + 1, hi + 1))[:_MAX_PROBES]
        else:
            lo = window.early if window.early is not None else old_cycle - ii + 1
            candidates = list(range(old_cycle - 1, lo - 1, -1))[:_MAX_PROBES]

        best_cycle = None
        for cycle in candidates:
            if into:
                new_lifetime = _value_lifetime(
                    state, move_id, time_override=cycle
                )
            else:
                new_lifetime = _producer_lifetime_with_use(
                    state, producer, move_id, cycle
                )
            probe = stripped.copy()
            fold_lifetime(probe, ii, new_lifetime[0], new_lifetime[1], +1)
            new_max = int(probe.max()) + invariants
            if new_max >= baseline:
                continue
            if schedule.mrt.can_place(
                node, old_cluster, cycle, src_cluster=node.src_cluster
            ):
                best_cycle = cycle
                rows = probe
                baseline = new_max
                break

        if best_cycle is None:
            schedule.place(
                node, old_cluster, old_cycle, src_cluster=node.src_cluster
            )
        else:
            schedule.place(
                node, old_cluster, best_cycle, src_cluster=node.src_cluster
            )
            improved = True
            state.stats.balance_shifts += 1
    return improved
