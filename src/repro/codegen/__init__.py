"""VLIW code generation from modulo schedules (paper step 7)."""

from repro.codegen.emitter import (
    GeneratedCode,
    Instruction,
    generate_code,
)
from repro.codegen.mve import modulo_variable_expansion_factor

__all__ = [
    "GeneratedCode",
    "Instruction",
    "generate_code",
    "modulo_variable_expansion_factor",
]
