"""VLIW code generation from modulo schedules (paper step 7).

The emitted prologue/kernel/epilogue is executable: :mod:`repro.sim`
runs it cycle by cycle against simulated register files and the
lockup-free cache of :mod:`repro.memsim`, and validates the end state
bit-for-bit against a scalar reference interpretation of the loop
(``python -m repro simulate``).
"""

from repro.codegen.emitter import (
    GeneratedCode,
    Instruction,
    generate_code,
)
from repro.codegen.mve import modulo_variable_expansion_factor

__all__ = [
    "GeneratedCode",
    "Instruction",
    "generate_code",
    "modulo_variable_expansion_factor",
]
