"""Modulo variable expansion (MVE).

A value whose lifetime exceeds the initiation interval has several
simultaneously-live instances, one per overlapped iteration.  Without
rotating register files (which none of the paper's configurations have),
the kernel must be *unrolled* enough that each live instance can be given
its own architectural register - the classic modulo variable expansion of
Lam.  The minimum unroll factor is::

    K = max over values v of ceil(lifetime(v) / II)

Each kernel copy then renames every expanded value's register with the
copy index.
"""

from __future__ import annotations

from repro.core.result import ScheduleResult
from repro.errors import CodegenError
from repro.graph.ddg import DepKind
from repro.graph.latency import node_latency


def value_lifetimes(result: ScheduleResult) -> dict[int, int]:
    """Lifetime length (cycles) of every value in a converged schedule.

    Raises:
        CodegenError: (kind ``"not-converged"``) when the schedule has
            no placement to measure lifetimes on.
    """
    if not result.converged or result.graph is None:
        raise CodegenError(
            f"code generation needs a converged schedule; "
            f"loop {result.loop!r} did not converge",
            loop=result.loop,
            kind="not-converged",
        )
    graph = result.graph
    ii = result.ii
    lengths: dict[int, int] = {}
    for node in graph.nodes():
        if not node.produces_value:
            continue
        start = result.times[node.id]
        end = start + node_latency(node, result.machine)
        for edge in graph.out_edges(node.id):
            if edge.kind is not DepKind.REG:
                continue
            use = result.times[edge.dst] + ii * edge.distance
            end = max(end, use)
        lengths[node.id] = end - start
    return lengths


def modulo_variable_expansion_factor(result: ScheduleResult) -> int:
    """The minimum kernel unroll factor K (1 when no value outlives II)."""
    lifetimes = value_lifetimes(result)
    if not lifetimes:
        return 1
    ii = result.ii
    return max(1, max(-(-length // ii) for length in lifetimes.values()))
