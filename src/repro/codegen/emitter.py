"""Emission of software-pipelined VLIW code.

Turns a converged :class:`ScheduleResult` into explicit instruction
bundles: a **prologue** filling the pipeline (stages 0..SC-2 start one
after another), an unrolled steady-state **kernel** (one copy per modulo
variable expansion instance, with per-copy register renaming), and an
**epilogue** draining the pipeline.  An operation scheduled at stage *s*
of an SC-stage schedule appears ``SC - 1 - s`` times in the prologue,
once per kernel copy, and ``s`` times in the epilogue - the invariant the
tests pin down.

Registers are assigned with the wrap-around allocator of
:mod:`repro.schedule.regalloc`; expanded values get one architectural
register per kernel copy (``r7.k1`` denotes copy 1's instance).
"""

from __future__ import annotations

import dataclasses

from repro.core.result import ScheduleResult
from repro.codegen.mve import modulo_variable_expansion_factor
from repro.graph.ddg import DepKind
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import allocate_registers


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One operation slot inside a bundle.

    Attributes:
        node: the dependence-graph node id this instance executes.
        mnemonic: operation mnemonic (``add``, ``move``...).
        cluster: executing cluster.
        stage: kernel stage of the operation.
        copy: kernel copy (MVE instance) this instance belongs to.
        dest: destination register name (``None`` for stores).
        sources: source register names.
    """

    node: int
    mnemonic: str
    cluster: int
    stage: int
    copy: int
    dest: str | None
    sources: tuple[str, ...]

    def render(self) -> str:
        operands = ", ".join(self.sources) if self.sources else ""
        target = f"{self.dest} <- " if self.dest else ""
        return f"c{self.cluster}.{self.mnemonic} {target}{operands}".rstrip()


@dataclasses.dataclass
class GeneratedCode:
    """The emitted software pipeline.

    ``prologue``, ``kernel`` and ``epilogue`` are lists of *bundles*;
    each bundle is the list of instructions issuing in one cycle.
    """

    loop: str
    ii: int
    stage_count: int
    mve_factor: int
    prologue: list[list[Instruction]]
    kernel: list[list[Instruction]]
    epilogue: list[list[Instruction]]

    @property
    def kernel_cycles(self) -> int:
        """Cycles per kernel pass (II x MVE copies)."""
        return self.ii * self.mve_factor

    def all_instructions(self) -> list[Instruction]:
        bundles = self.prologue + self.kernel + self.epilogue
        return [inst for bundle in bundles for inst in bundle]

    def render(self) -> str:
        """Full textual listing."""
        lines = [
            f"; loop {self.loop}: II={self.ii}, {self.stage_count} stages, "
            f"MVE x{self.mve_factor}"
        ]

        def emit(title: str, bundles: list[list[Instruction]]) -> None:
            lines.append(f"{title}:")
            for index, bundle in enumerate(bundles):
                ops = " | ".join(inst.render() for inst in bundle) or "nop"
                lines.append(f"  {index:4d}: {ops}")

        emit("prologue", self.prologue)
        emit("kernel", self.kernel)
        emit("epilogue", self.epilogue)
        return "\n".join(lines)


def _register_names(result: ScheduleResult, mve: int) -> dict[int, list[str]]:
    """value id -> register name per kernel copy."""
    graph = result.graph
    machine = result.machine
    schedule = PartialSchedule(machine, result.ii)
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        schedule.place(
            node,
            result.clusters[node.id],
            result.times[node.id],
            src_cluster=node.src_cluster,
        )
    analysis = LifetimeAnalysis(graph, schedule, machine)
    allocations = allocate_registers(graph, schedule, machine, analysis)
    lifetime_of = {lt.value: lt for lt in analysis.lifetimes}

    names: dict[int, list[str]] = {}
    for cluster, allocation in allocations.items():
        for value, registers in allocation.assignment.items():
            base = registers[-1] if registers else 0
            lifetime = lifetime_of.get(value)
            expanded = (
                lifetime is not None and lifetime.length > result.ii and mve > 1
            )
            if expanded:
                names[value] = [
                    f"c{cluster}:r{base}.k{copy}" for copy in range(mve)
                ]
            else:
                names[value] = [f"c{cluster}:r{base}"] * mve
    return names


def _instruction(
    result: ScheduleResult,
    node_id: int,
    stage: int,
    copy: int,
    registers: dict[int, list[str]],
    mve: int,
) -> Instruction:
    graph = result.graph
    node = graph.node(node_id)
    sources = []
    for edge in graph.in_edges(node_id):
        if edge.kind is not DepKind.REG:
            continue
        # The operand comes from the copy that produced it: `distance`
        # iterations (hence kernel copies) earlier.
        source_copy = (copy - edge.distance) % mve
        sources.append(registers[edge.src][source_copy])
    for invariant in graph.invariants_of(node_id):
        sources.append(f"inv:{invariant.name}")
    dest = registers.get(node_id, [None] * mve)[copy] if (
        node.produces_value and node_id in registers
    ) else None
    return Instruction(
        node=node_id,
        mnemonic=node.kind.value,
        cluster=result.clusters[node_id],
        stage=stage,
        copy=copy,
        dest=dest,
        sources=tuple(sorted(sources)),
    )


def generate_code(result: ScheduleResult) -> GeneratedCode:
    """Emit prologue / kernel / epilogue for a converged schedule."""
    if not result.converged or result.graph is None:
        raise ValueError("code generation needs a converged schedule")
    ii = result.ii
    mve = modulo_variable_expansion_factor(result)
    registers = _register_names(result, mve)

    low = min(result.times.values(), default=0)
    by_slot: dict[tuple[int, int], list[int]] = {}
    stage_count = 1
    for node_id, cycle in result.times.items():
        row = (cycle - low) % ii
        stage = (cycle - low) // ii
        stage_count = max(stage_count, stage + 1)
        by_slot.setdefault((row, stage), []).append(node_id)

    def bundle(row: int, stages: list[tuple[int, int]]) -> list[Instruction]:
        """Instructions issuing at one cycle: (stage, copy) pairs."""
        instructions = []
        for stage, copy in stages:
            for node_id in sorted(by_slot.get((row, stage), ())):
                instructions.append(
                    _instruction(result, node_id, stage, copy, registers, mve)
                )
        return instructions

    # Prologue: iteration i (i = 0..SC-2) starts at cycle i*II; at cycle
    # c of the fill phase, iteration i executes stage (c//II - i).
    prologue: list[list[Instruction]] = []
    for cycle in range(ii * (stage_count - 1)):
        row = cycle % ii
        phase = cycle // ii
        stages = [
            (phase - i, i % mve) for i in range(phase + 1)
        ]
        prologue.append(bundle(row, stages))

    # Kernel: `mve` renamed copies of the II-cycle steady state; copy c
    # executes stage s on behalf of the iteration started (SC-1-s)
    # kernel-iterations ago.
    kernel: list[list[Instruction]] = []
    for copy in range(mve):
        for row in range(ii):
            stages = [
                (stage, (copy - stage) % mve)
                for stage in range(stage_count)
            ]
            kernel.append(bundle(row, stages))

    # Epilogue: drain stages 1..SC-1 of the last SC-1 iterations.
    epilogue: list[list[Instruction]] = []
    for cycle in range(ii * (stage_count - 1)):
        row = cycle % ii
        phase = cycle // ii
        stages = [
            (stage, (phase - stage) % mve)
            for stage in range(phase + 1, stage_count)
        ]
        epilogue.append(bundle(row, stages))

    return GeneratedCode(
        loop=result.loop,
        ii=ii,
        stage_count=stage_count,
        mve_factor=mve,
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
    )
