"""Emission of software-pipelined VLIW code.

Turns a converged :class:`ScheduleResult` into explicit instruction
bundles: a **prologue** filling the pipeline (stages 0..SC-2 start one
after another), an unrolled steady-state **kernel** (one copy per modulo
variable expansion instance, with per-copy register renaming), and an
**epilogue** draining the pipeline.  An operation scheduled at stage *s*
of an SC-stage schedule appears ``SC - 1 - s`` times in the prologue,
once per kernel copy, and ``s`` times in the epilogue - the invariant the
tests pin down.

Registers are assigned with the wrap-around allocator of
:mod:`repro.schedule.regalloc`; expanded values get one architectural
register per kernel copy (``r7.k1`` denotes copy 1's instance).  Copy
labels follow one global convention: iteration ``j`` owns copy
``j % K`` in the prologue, the kernel and the epilogue alike, so a
value produced during the pipeline fill is read from the right renamed
register once the steady state takes over.

The emitted code is *executable*: :mod:`repro.sim` runs it bundle by
bundle on simulated register files and a lockup-free cache
(:mod:`repro.memsim`), and checks the final state against a scalar
reference interpretation of the dependence graph.
"""

from __future__ import annotations

import dataclasses
import os

from repro.core.result import ScheduleResult
from repro.codegen.mve import modulo_variable_expansion_factor
from repro.errors import CertificationError, CodegenError
from repro.graph.ddg import DepKind
from repro.schedule.lifetimes import LifetimeAnalysis
from repro.schedule.partial import PartialSchedule
from repro.schedule.regalloc import allocate_registers

#: Environment knob: any non-empty value turns every
#: :func:`generate_code` call into a self-certifying one (the static
#: certifier of :mod:`repro.analysis` runs on the emitted code and a
#: rejection raises :class:`~repro.errors.CertificationError`) — the
#: sanitizer mode the CI matrix runs the whole suite under.
CERTIFY_ENV = "REPRO_STATIC_CERTIFY"


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One operation slot inside a bundle.

    Attributes:
        node: the dependence-graph node id this instance executes.
        mnemonic: operation mnemonic (``add``, ``move``...).
        cluster: executing cluster.
        stage: kernel stage of the operation.
        copy: kernel copy (MVE instance) this instance belongs to.
        dest: destination register name (``None`` for stores).
        sources: source register names.
    """

    node: int
    mnemonic: str
    cluster: int
    stage: int
    copy: int
    dest: str | None
    sources: tuple[str, ...]

    def render(self) -> str:
        operands = ", ".join(self.sources) if self.sources else ""
        target = f"{self.dest} <- " if self.dest else ""
        return f"c{self.cluster}.{self.mnemonic} {target}{operands}".rstrip()


@dataclasses.dataclass
class GeneratedCode:
    """The emitted software pipeline.

    ``prologue``, ``kernel`` and ``epilogue`` are lists of *bundles*;
    each bundle is the list of instructions issuing in one cycle.
    """

    loop: str
    ii: int
    stage_count: int
    mve_factor: int
    prologue: list[list[Instruction]]
    kernel: list[list[Instruction]]
    epilogue: list[list[Instruction]]
    #: value id -> register name per kernel copy (the map the
    #: instructions were rendered from; the simulator initialises the
    #: live-in registers of loop-carried values through it).
    registers: dict[int, list[str]] = dataclasses.field(default_factory=dict)

    @property
    def kernel_cycles(self) -> int:
        """Cycles per kernel pass (II x MVE copies)."""
        return self.ii * self.mve_factor

    def all_instructions(self) -> list[Instruction]:
        bundles = self.prologue + self.kernel + self.epilogue
        return [inst for bundle in bundles for inst in bundle]

    def render(self) -> str:
        """Full textual listing."""
        lines = [
            f"; loop {self.loop}: II={self.ii}, {self.stage_count} stages, "
            f"MVE x{self.mve_factor}"
        ]

        def emit(title: str, bundles: list[list[Instruction]]) -> None:
            lines.append(f"{title}:")
            for index, bundle in enumerate(bundles):
                ops = " | ".join(inst.render() for inst in bundle) or "nop"
                lines.append(f"  {index:4d}: {ops}")

        emit("prologue", self.prologue)
        emit("kernel", self.kernel)
        emit("epilogue", self.epilogue)
        return "\n".join(lines)


def _register_names(
    result: ScheduleResult, mve: int
) -> tuple[dict[int, list[str]], dict[int, int]]:
    """value id -> register name per kernel copy, plus per-cluster usage.

    Values consumed at an iteration distance >= 1 are *live-in exposed*:
    during the pipeline fill their consumers read the register before
    the value's first definition ever writes it, so the register must
    hold the live-in from loop entry.  The wrap-around allocator colours
    only steady-state arcs and may share such a register with another
    value whose writes would clobber the live-in, so exposed values that
    are not modulo-expanded get a dedicated register here instead (the
    small overshoot past the allocator's count mirrors the preheader
    live-in setup the paper's register model does not charge for).
    """
    graph = result.graph
    assert graph is not None  # generate_code rejects graph-less results
    machine = result.machine
    schedule = PartialSchedule(machine, result.ii)
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        schedule.place(
            node,
            result.clusters[node.id],
            result.times[node.id],
            src_cluster=node.src_cluster,
        )
    analysis = LifetimeAnalysis(graph, schedule, machine)
    allocations = allocate_registers(graph, schedule, machine, analysis)
    lifetime_of = {lt.value: lt for lt in analysis.lifetimes}
    exposed = {
        edge.src
        for edge in graph.edges()
        if edge.kind is DepKind.REG and edge.distance >= 1
    }

    names: dict[int, list[str]] = {}
    usage: dict[int, int] = {}
    for cluster, allocation in allocations.items():
        next_dedicated = allocation.registers_used
        for value, registers in sorted(allocation.assignment.items()):
            # Base register for the name: the first assigned register is
            # a dedicated (per-value unique) one whenever the lifetime
            # spans a full II, and the shared arc colour only for short
            # lifetimes.  Expanded values must never base their ``.k``
            # copies on the shared arc register: two expanded values may
            # legitimately share an arc colour, but their renamed copies
            # would then collide name-for-name.
            base = registers[0] if registers else 0
            lifetime = lifetime_of.get(value)
            expanded = (
                lifetime is not None and lifetime.length > result.ii and mve > 1
            )
            if expanded:
                names[value] = [
                    f"c{cluster}:r{base}.k{copy}" for copy in range(mve)
                ]
            elif value in exposed:
                names[value] = [f"c{cluster}:r{next_dedicated}"] * mve
                next_dedicated += 1
            else:
                names[value] = [f"c{cluster}:r{base}"] * mve
        # Feasibility is judged on the allocator's own count: the
        # live-in dedication above is preheader territory and is not
        # charged against the register file.
        usage[cluster] = allocation.registers_used
    return names, usage


def _instruction(
    result: ScheduleResult,
    node_id: int,
    stage: int,
    copy: int,
    registers: dict[int, list[str]],
    mve: int,
) -> Instruction:
    graph = result.graph
    assert graph is not None  # generate_code rejects graph-less results
    node = graph.node(node_id)
    sources: list[str] = []
    for edge in graph.in_edges(node_id):
        if edge.kind is not DepKind.REG:
            continue
        # The operand comes from the copy that produced it: `distance`
        # iterations (hence kernel copies) earlier.
        source_copy = (copy - edge.distance) % mve
        sources.append(registers[edge.src][source_copy])
    for invariant in graph.invariants_of(node_id):
        sources.append(f"inv:{invariant.name}")
    dest: str | None = None
    if node.produces_value and node_id in registers:
        dest = registers[node_id][copy]
    return Instruction(
        node=node_id,
        mnemonic=node.kind.value,
        cluster=result.clusters[node_id],
        stage=stage,
        copy=copy,
        dest=dest,
        sources=tuple(sorted(sources)),
    )


def generate_code(result: ScheduleResult) -> GeneratedCode:
    """Emit prologue / kernel / epilogue for a converged schedule.

    Feasibility is judged on the register allocator's own count.  Note
    that values carried into the loop additionally receive *dedicated*
    registers numbered past that count (see :func:`_register_names`):
    like the preheader that would initialise them, those few registers
    are a code-generation concession the paper's register model does
    not charge for, so emitted names may exceed the architectural file
    by the number of live-in values even when the check passes.

    Raises:
        CodegenError: (a :class:`ValueError` subclass) when the schedule
            did not converge (``kind="not-converged"``) or its register
            allocation does not fit the machine's register files
            (``kind="register-infeasible"`` — emitting code for such a
            schedule would silently produce wrong register names).  The
            error carries the loop name, so batch drivers can report
            which loop failed without parsing the message.
        CertificationError: under ``REPRO_STATIC_CERTIFY=1``, when the
            emitted code fails static certification.
    """
    if not result.converged or result.graph is None:
        raise CodegenError(
            f"code generation needs a converged schedule; "
            f"loop {result.loop!r} did not converge",
            loop=result.loop,
            kind="not-converged",
        )
    ii = result.ii
    mve = modulo_variable_expansion_factor(result)
    registers, register_usage = _register_names(result, mve)
    available = result.machine.cluster.registers
    if available is not None:
        over = {
            cluster: used
            for cluster, used in sorted(register_usage.items())
            if used > available
        }
        if over:
            detail = ", ".join(
                f"cluster {c} needs {used}" for c, used in over.items()
            )
            raise CodegenError(
                f"schedule for loop {result.loop!r} is register-infeasible "
                f"on {result.machine.name} ({detail}, {available} available); "
                "refusing to emit code with clobbered registers",
                loop=result.loop,
                kind="register-infeasible",
            )

    low = min(result.times.values(), default=0)
    by_slot: dict[tuple[int, int], list[int]] = {}
    stage_count = 1
    for node_id, cycle in result.times.items():
        row = (cycle - low) % ii
        stage = (cycle - low) // ii
        stage_count = max(stage_count, stage + 1)
        by_slot.setdefault((row, stage), []).append(node_id)

    def bundle(row: int, stages: list[tuple[int, int]]) -> list[Instruction]:
        """Instructions issuing at one cycle: (stage, copy) pairs."""
        instructions = []
        for stage, copy in stages:
            for node_id in sorted(by_slot.get((row, stage), ())):
                instructions.append(
                    _instruction(result, node_id, stage, copy, registers, mve)
                )
        return instructions

    # Prologue: iteration i (i = 0..SC-2) starts at cycle i*II; at cycle
    # c of the fill phase, iteration i executes stage (c//II - i).
    prologue: list[list[Instruction]] = []
    for cycle in range(ii * (stage_count - 1)):
        row = cycle % ii
        phase = cycle // ii
        stages = [
            (phase - i, i % mve) for i in range(phase + 1)
        ]
        prologue.append(bundle(row, stages))

    # Kernel: `mve` renamed copies of the II-cycle steady state; copy c
    # executes stage s on behalf of the iteration started (SC-1-s)
    # kernel-iterations ago.  Kernel block c sits at global cycle block
    # (SC-1) + c (+ a multiple of mve per pass), so the iteration
    # executing stage s there is j = (SC-1) + c - s and its copy label
    # must be j % mve: without the SC-1 shift the kernel reads renamed
    # registers the prologue never wrote whenever (SC-1) % mve != 0.
    kernel: list[list[Instruction]] = []
    for copy in range(mve):
        for row in range(ii):
            stages = [
                (stage, (copy - stage + stage_count - 1) % mve)
                for stage in range(stage_count)
            ]
            kernel.append(bundle(row, stages))

    # Epilogue: drain stages 1..SC-1 of the last SC-1 iterations.  The
    # kernel always retires in whole mve-block passes, so the same
    # SC-1 shift keeps iteration j on copy j % mve here too.
    epilogue: list[list[Instruction]] = []
    for cycle in range(ii * (stage_count - 1)):
        row = cycle % ii
        phase = cycle // ii
        stages = [
            (stage, (phase - stage + stage_count - 1) % mve)
            for stage in range(phase + 1, stage_count)
        ]
        epilogue.append(bundle(row, stages))

    code = GeneratedCode(
        loop=result.loop,
        ii=ii,
        stage_count=stage_count,
        mve_factor=mve,
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
        registers=registers,
    )
    if os.environ.get(CERTIFY_ENV):
        # Imported here: repro.analysis certifies *this* module's output.
        from repro.analysis import certify_code

        report = certify_code(code, result)
        if not report.ok:
            raise CertificationError(
                report.summary(), loop=result.loop, report=report
            )
    return code
