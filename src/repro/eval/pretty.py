"""Human-readable rendering of modulo schedules.

Formats the kernel of a software-pipelined loop as a table of II rows
(one per issue cycle of the steady state) with one column per cluster,
annotating each operation with its stage number - the standard way of
reading a modulo schedule.
"""

from __future__ import annotations

from repro.core.result import ScheduleResult


def format_kernel(result: ScheduleResult) -> str:
    """Render the kernel of a converged schedule."""
    if not result.converged or result.graph is None:
        return f"{result.loop}: NOT CONVERGED"
    ii = result.ii
    machine = result.machine
    low = min(result.times.values(), default=0)
    cells: dict[tuple[int, int], list[str]] = {}
    for node in result.graph.nodes():
        t = result.times[node.id]
        cluster = result.clusters[node.id]
        row = (t - low) % ii
        stage = (t - low) // ii
        label = node.name
        if node.is_move:
            label = f"{node.name}[c{node.src_cluster}->c{cluster}]"
        elif node.is_spill:
            label = f"{node.name}*"
        cells.setdefault((row, cluster), []).append(f"{label}({stage})")

    header = [f"cluster {c}" for c in range(machine.clusters)]
    widths = [max(len(h), 12) for h in header]
    for (row, cluster), ops in cells.items():
        widths[cluster] = max(widths[cluster], len(" ".join(sorted(ops))))

    lines = [
        f"loop {result.loop} on {machine.name}: II={result.ii} "
        f"(MII={result.mii}), {result.stage_count} stages, "
        f"regs/cluster={result.register_usage}",
        "cycle | " + " | ".join(
            h.ljust(w) for h, w in zip(header, widths, strict=True)
        ),
        "------+-" + "-+-".join("-" * w for w in widths),
    ]
    for row in range(ii):
        row_cells = []
        for cluster in range(machine.clusters):
            ops = sorted(cells.get((row, cluster), []))
            row_cells.append(" ".join(ops).ljust(widths[cluster]))
        lines.append(f"{row:5d} | " + " | ".join(row_cells))
    lines.append(
        "(n) = kernel stage; moves show [source->destination]; "
        "* marks spill code"
    )
    return "\n".join(lines)
