"""Plain-text rendering of experiment tables.

Benchmarks print these tables so that a run of ``pytest benchmarks/
--benchmark-only`` regenerates the same rows/series the paper reports
(EXPERIMENTS.md records the paper-vs-measured comparison).
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str = "",
) -> str:
    """Render an ASCII table with a title line and optional footnote."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths, strict=True)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)
