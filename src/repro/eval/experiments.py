"""Experiment drivers reproducing every table and figure of the paper.

Each ``*_rows`` function runs the required schedules and returns
``(headers, rows, note)`` ready for :func:`repro.eval.reporting.render_table`.
The benchmark files under ``benchmarks/`` are thin wrappers that time
these drivers and print the tables; EXPERIMENTS.md records how each
reproduction compares with the paper's published numbers.
"""

from __future__ import annotations

import dataclasses

from repro.core.params import MirsParams
from repro.core.request import (
    _UNSET,
    ScheduleRequest,
    SessionConfig,
    fold_legacy_request,
    fold_legacy_session,
)
from repro.eval.runner import SuiteRun, schedule_suite
from repro.exec.engine import SuiteExecutor
from repro.graph.mii import resource_mii
from repro.graph.recurrences import recurrence_mii
from repro.machine.config import (
    parse_config,
    paper_configuration,
    scalability_configuration,
)
from repro.machine.technology import TechnologyModel
from repro.memsim.prefetch import apply_binding_prefetch
from repro.memsim.stall import MemoryModel
from repro.workloads.perfect import SuiteLoop

Rows = tuple[list[str], list[list], str]


# ----------------------------------------------------------------------
# Figure 2: cycle time / area / power of the register file organisations
# ----------------------------------------------------------------------

def figure2_rows(
    clusters: tuple[int, ...] = (1, 2, 4),
    registers: tuple[int, ...] = (16, 32, 64, 128),
    technology: TechnologyModel | None = None,
) -> Rows:
    """Figure 2: technology cost of unified vs clustered register files."""
    technology = technology or TechnologyModel()
    headers = ["k", "regs/cluster", "cycle time (ns)", "area (a.u.)", "power (a.u.)"]
    rows: list[list] = []
    for k in clusters:
        for z in registers:
            machine = paper_configuration(k, z)
            rows.append(
                [
                    k,
                    z,
                    round(technology.cycle_time_ns(machine), 3),
                    round(technology.area(machine), 0),
                    round(technology.power(machine), 1),
                ]
            )
    note = (
        "Anchors (Section 1): 4-cluster/64-reg cycle time slightly below "
        "unified/16-reg; area ~ unified/32-reg; power ~ unified/16-reg."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Tables 1 and 2: MIRS-C vs the non-iterative scheduler [31]
# ----------------------------------------------------------------------

def _differing(a: SuiteRun, b: SuiteRun, common: set[int]) -> set[int]:
    """Loops whose schedules differ in II and/or memory traffic."""
    return {
        i
        for i in common
        if a.results[i].ii != b.results[i].ii
        or a.results[i].memory_traffic != b.results[i].memory_traffic
    }


def table1_rows(
    loops: tuple[SuiteLoop, ...],
    clusters: tuple[int, ...] = (1, 2, 4),
    move_latencies: tuple[int, ...] = (1, 3),
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Table 1: unbounded registers - schedule quality head to head."""
    request = fold_legacy_request(
        "table1_rows", request, params=params, search=search
    )
    session = fold_legacy_session("table1_rows", session, executor=executor)
    headers = [
        "k", "Lm", "loops", "not different", "different",
        "sum II [31]", "sum II MIRS-C", "II ratio",
    ]
    rows: list[list] = []
    for k in clusters:
        for lm in move_latencies:
            machine = paper_configuration(k, None, move_latency=lm)
            base = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="baseline"),
                session=session,
            )
            ours = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="mirsc"),
                session=session,
            )
            common = base.converged_indices() & ours.converged_indices()
            different = _differing(base, ours, common)
            sum_base = base.sum_ii(different)
            sum_ours = ours.sum_ii(different)
            ratio = sum_ours / sum_base if sum_base else 1.0
            rows.append(
                [
                    k, lm, len(loops), len(common) - len(different),
                    len(different), sum_base, sum_ours, round(ratio, 3),
                ]
            )
    note = (
        "Paper: MIRS-C reduces sum-II by factors ~0.95 / 0.93 / 0.91 for "
        "1 / 2 / 4 clusters; the gap grows with the cluster count."
    )
    return headers, rows, note


def table2_rows(
    loops: tuple[SuiteLoop, ...],
    clusters: tuple[int, ...] = (1, 2, 4),
    move_latencies: tuple[int, ...] = (1, 3),
    total_registers: int = 64,
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Table 2: register files constrained to k x z = 64 in total."""
    request = fold_legacy_request(
        "table2_rows", request, params=params, search=search
    )
    session = fold_legacy_session("table2_rows", session, executor=executor)
    headers = [
        "k", "Lm", "not cnvr [31]", "different",
        "sum II [31]", "sum II MIRS-C", "II ratio",
        "sum trf [31]", "sum trf MIRS-C", "trf ratio",
    ]
    rows: list[list] = []
    for k in clusters:
        z = total_registers // k
        for lm in move_latencies:
            machine = paper_configuration(k, z, move_latency=lm)
            base = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="baseline"),
                session=session,
            )
            ours = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="mirsc"),
                session=session,
            )
            common = base.converged_indices() & ours.converged_indices()
            different = _differing(base, ours, common)
            sum_ii_base = base.sum_ii(different)
            sum_ii_ours = ours.sum_ii(different)
            sum_trf_base = base.sum_traffic(different)
            sum_trf_ours = ours.sum_traffic(different)
            rows.append(
                [
                    k, lm, base.not_converged_count, len(different),
                    sum_ii_base, sum_ii_ours,
                    round(sum_ii_ours / sum_ii_base, 3) if sum_ii_base else 1.0,
                    sum_trf_base, sum_trf_ours,
                    round(sum_trf_ours / sum_trf_base, 3) if sum_trf_base else 1.0,
                ]
            )
    note = (
        "Paper (k=4, Lm=3): MIRS-C lowers II by ~0.63x at the cost of "
        "~1.44x memory traffic; [31] fails to converge on its biggest loops."
    )
    return headers, rows, note


def table3_rows(
    loops: tuple[SuiteLoop, ...],
    move_latencies: tuple[int, ...] = (1, 3),
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Table 3: scheduling time of [31] vs MIRS-C.

    Rows follow the paper: unbounded-register and register-constrained
    variants of the 1-, 2- and 4-cluster machines; the [31] column
    covers only the loops it converges on (the paper's footnote), while
    MIRS-C also pays for the loops [31] gives up on.
    """
    request = fold_legacy_request(
        "table3_rows", request, params=params, search=search
    )
    session = fold_legacy_session("table3_rows", session, executor=executor)
    configs: list[tuple[int, int | None]] = [
        (1, None), (1, 64), (2, None), (2, 32), (4, None), (4, 16),
    ]
    headers = [
        "config", "Lm", "loops [31]",
        "time [31] (s)", "time MIRS-C (s)", "time MIRS-C all (s)",
    ]
    rows: list[list] = []
    for k, z in configs:
        for lm in move_latencies:
            machine = paper_configuration(k, z, move_latency=lm)
            base = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="baseline"),
                session=session,
            )
            ours = schedule_suite(
                machine, loops,
                dataclasses.replace(request, scheduler="mirsc"),
                session=session,
            )
            common = base.converged_indices()
            label = f"{k} x {'inf' if z is None else z}"
            rows.append(
                [
                    label, lm, len(common),
                    round(base.sum_scheduling_seconds(common), 2),
                    round(ours.sum_scheduling_seconds(common), 2),
                    round(ours.sum_scheduling_seconds(), 2),
                ]
            )
    note = (
        "Paper: MIRS-C is competitive, and slightly faster on register-"
        "constrained configs (spilling avoids full reschedules); the "
        "loops [31] cannot schedule are the largest, so MIRS-C's 'all' "
        "column is dominated by them."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Figure 5: ideal-memory evaluation of the configuration space
# ----------------------------------------------------------------------

def figure5_rows(
    loops: tuple[SuiteLoop, ...],
    clusters: tuple[int, ...] = (1, 2, 4),
    registers: tuple[int, ...] = (16, 32, 64, 128),
    move_latencies: tuple[int, ...] = (1, 3),
    request: ScheduleRequest | MirsParams | None = None,
    technology: TechnologyModel | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Figure 5: execution cycles, memory traffic and execution time."""
    technology = technology or TechnologyModel()
    request = fold_legacy_request(
        "figure5_rows", request, params=params, search=search
    )
    session = fold_legacy_session("figure5_rows", session, executor=executor)
    headers = [
        "Lm", "k", "regs/cluster",
        "exec cycles (M)", "memory ops (M)", "exec time (ms)",
    ]
    rows: list[list] = []
    for lm in move_latencies:
        for k in clusters:
            for z in registers:
                machine = paper_configuration(k, z, move_latency=lm)
                run = schedule_suite(
                    machine, loops, request, session=session
                )
                cycles = run.sum_cycles()
                mem_ops = sum(
                    r.memory_traffic * r.trip_count
                    for r in run.converged
                )
                exec_ns = technology.execution_time_ns(machine, cycles)
                rows.append(
                    [
                        lm, k, z,
                        round(cycles / 1e6, 4),
                        round(mem_ops / 1e6, 4),
                        round(exec_ns / 1e6, 4),
                    ]
                )
    note = (
        "Paper: more clusters -> more cycles (+8% at k=2, +19% at k=4 for "
        "64 total registers) but lower execution time once the cycle time "
        "is factored in; minimum time at 64 registers in total."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Figure 6: scalability with cluster count and bus count
# ----------------------------------------------------------------------

def figure6_rows(
    loops: tuple[SuiteLoop, ...],
    clusters: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    bus_counts: tuple[int | None, ...] = (2, 3, 4, None),
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Figure 6: replicate a GP2M1-REG32 cluster k times, sweep buses."""
    request = fold_legacy_request(
        "figure6_rows", request, params=params, search=search
    )
    session = fold_legacy_session("figure6_rows", session, executor=executor)
    headers = ["buses", "k", "sum cycles (M)", "speedup vs k=1"]
    rows: list[list] = []
    for buses in bus_counts:
        baseline_cycles = None
        for k in clusters:
            machine = scalability_configuration(k, buses=buses)
            run = schedule_suite(
                machine, loops, request, session=session
            )
            cycles = run.sum_cycles()
            if k == clusters[0]:
                baseline_cycles = cycles
            speedup = baseline_cycles / cycles if cycles else 0.0
            rows.append(
                [
                    "inf" if buses is None else buses,
                    k,
                    round(cycles / 1e6, 4),
                    round(speedup, 3),
                ]
            )
    note = (
        "Paper: the organisation scales well whenever the number of buses "
        "is close to k/2; with only 2 buses the speedup saturates beyond "
        "~4 clusters."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Measured vs analytic: execute the generated code and compare cycles
# ----------------------------------------------------------------------

def simulator_rows(
    loops: tuple[SuiteLoop, ...],
    configs: tuple[str, ...] = ("1-(GP8M4-REG64)", "4-(GP2M1-REG16)"),
    iterations: int = 50,
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Measured (simulated) vs analytic (memsim) cycles per loop.

    Every loop's generated code is executed on the cycle-accurate
    simulator of :mod:`repro.sim` and validated bit-for-bit against the
    scalar reference interpreter; the measured useful/stall cycles sit
    next to the :class:`~repro.memsim.stall.MemoryModel` prediction for
    the same trip count.  Useful cycles must agree exactly (both follow
    ``II * (N + SC - 1)``); stall cycles are where the analytic model
    approximates what the simulator observes.

    Differential reports are memoized in the executor's result cache
    (when it has one), so warm benchmark reruns skip the simulations
    the same way they skip the scheduling.
    """
    from repro.sim import run_differential

    request = fold_legacy_request(
        "simulator_rows", request, params=params, search=search
    )
    session = fold_legacy_session("simulator_rows", session, executor=executor)
    suite_executor = session.make_executor()
    cache = suite_executor.cache if suite_executor.cache is not None else False
    memory = MemoryModel()
    headers = [
        "config", "loop", "II", "SC", "iters",
        "useful sim", "useful model", "stall sim", "stall model",
        "IPC", "verdict",
    ]
    rows: list[list] = []
    for config in configs:
        machine = parse_config(config)
        run = schedule_suite(machine, loops, request, session=session)
        for result in run.converged:
            report = run_differential(result, iterations, cache=cache)
            sim = report.simulation
            analytic = memory.evaluate(result, iterations=sim.iterations)
            verdict = "ok" if report.match and (
                sim.useful_cycles == round(analytic.useful_cycles)
            ) else "MISMATCH"
            rows.append(
                [
                    machine.name, result.loop, sim.ii, sim.stage_count,
                    sim.iterations, sim.useful_cycles,
                    round(analytic.useful_cycles),
                    sim.stall_cycles, round(analytic.stall_cycles, 1),
                    round(sim.ipc, 2), verdict,
                ]
            )
    note = (
        "Differential validation: the generated code's end state matches "
        "the scalar reference interpreter bit-for-bit ('ok'); useful "
        "cycles follow II*(N+SC-1) exactly, stall cycles expose where "
        "the analytic overlap model deviates from observed behaviour."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Frontend corpus: real source loops, end to end
# ----------------------------------------------------------------------

def frontend_rows(
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    kernels: tuple[str, ...] | None = None,
    configs: tuple[str, ...] = ("1-(GP8M4-REG64)", "4-(GP2M1-REG32)"),
    iterations: int = 40,
) -> Rows:
    """The frontend corpus scheduled, certified and validated end to end.

    Every corpus kernel (or the named subset) is parsed from source,
    lowered, scheduled on each reference configuration through the
    suite-execution engine, its emitted code statically certified
    (:func:`repro.analysis.certify_code`), and the three-link source
    differential run (:func:`repro.frontend.differential.run_source_differential`):
    source semantics vs the lowered graph, emitted code vs the final
    graph, and emitted code vs direct source execution.  Like
    :func:`simulator_rows`, the (deterministic) differential reports are
    memoized in the executor's result cache when it has one.
    """
    from repro.analysis import certify_code
    from repro.codegen import generate_code
    from repro.errors import CodegenError
    from repro.frontend.corpus import CORPUS_KERNELS, load_kernel
    from repro.frontend.differential import run_source_differential

    request = ScheduleRequest.coerce(request)
    session = SessionConfig.coerce(session)
    suite_executor = session.make_executor()
    cache = suite_executor.cache if suite_executor.cache is not None else False
    lowered = [load_kernel(name) for name in (kernels or CORPUS_KERNELS)]
    headers = [
        "config", "kernel", "ops", "ResMII", "RecMII", "II",
        "certify", "differential",
    ]
    rows: list[list] = []
    validated = 0
    for config in configs:
        machine = parse_config(config)
        run = schedule_suite(machine, lowered, request, session=session)
        for kernel, result in zip(lowered, run.results, strict=True):
            base = [
                machine.name, kernel.name, len(kernel.graph),
                resource_mii(kernel.graph, machine),
                recurrence_mii(kernel.graph, machine),
            ]
            if not result.converged:
                rows.append(base + ["n/a", "-", "not converged"])
                continue
            try:
                code = generate_code(result)
            except CodegenError as error:
                rows.append(base + [result.ii, error.kind, "-"])
                continue
            cert = certify_code(code, result)
            diff = run_source_differential(
                kernel, result, iterations, cache=cache
            )
            verdict = "match" if diff.match else "MISMATCH"
            if diff.match and diff.source_match is None:
                verdict = "match (link 3 skipped)"
            rows.append(
                base
                + [
                    result.ii,
                    "ok" if cert.ok else f"{len(cert.violations)} violations",
                    verdict,
                ]
            )
            if cert.ok and diff.match:
                validated += 1
    note = (
        f"{validated}/{len(lowered) * len(configs)} kernel/config pairs "
        "fully validated: certifier ok and bit-identical across source, "
        "lowered graph and emitted pipeline; RecMII comes from analyzed "
        "loop-carried distances, not defaults."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Figure 7: real memory and selective binding prefetching
# ----------------------------------------------------------------------

def figure7_rows(
    loops: tuple[SuiteLoop, ...],
    configs: tuple[tuple[int, int], ...] = (
        (1, 64), (1, 128), (2, 32), (2, 64), (4, 32), (4, 64),
    ),
    request: ScheduleRequest | MirsParams | None = None,
    technology: TechnologyModel | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    params: MirsParams | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
) -> Rows:
    """Figure 7: useful/stall cycles and execution time, with and without
    selective binding prefetching."""
    technology = technology or TechnologyModel()
    request = fold_legacy_request(
        "figure7_rows", request, params=params, search=search
    )
    session = fold_legacy_session("figure7_rows", session, executor=executor)
    memory = MemoryModel(technology)
    headers = [
        "mode", "k", "regs/cluster",
        "useful (rel)", "stall (rel)", "exec time (rel)",
    ]
    # Normalisation reference: useful cycles of 1-(GP8M4-REG64), hit
    # latency scheduling (the paper's reference configuration).
    reference_machine = paper_configuration(1, 64)
    reference = schedule_suite(
        reference_machine, loops, request, session=session
    )
    ref_useful = float(reference.sum_cycles()) or 1.0
    ref_time = technology.execution_time_ns(reference_machine, ref_useful)

    rows: list[list] = []
    for mode in ("normal", "prefetch"):
        for k, z in configs:
            machine = paper_configuration(k, z)
            if mode == "prefetch":
                graphs = [
                    apply_binding_prefetch(loop.graph, machine, technology)
                    for loop in loops
                ]
            else:
                graphs = None
            run = schedule_suite(
                machine, loops, request, graphs, session=session
            )
            useful = 0.0
            stall = 0.0
            for result in run.converged:
                report = memory.evaluate(result)
                useful += report.useful_cycles
                stall += report.stall_cycles
            total_ns = technology.execution_time_ns(machine, useful + stall)
            rows.append(
                [
                    mode, k, z,
                    round(useful / ref_useful, 3),
                    round(stall / ref_useful, 3),
                    round(total_ns / ref_time, 3),
                ]
            )
    note = (
        "Paper: prefetching removes most stall cycles; factoring in cycle "
        "time, the best clustered configurations beat the unified one by "
        "~1.19x (k=2) and ~1.46x (k=4)."
    )
    return headers, rows, note


# ----------------------------------------------------------------------
# Optimality gap: the exact backend as an oracle over the heuristic
# ----------------------------------------------------------------------

def optimality_rows(
    request: ScheduleRequest | MirsParams | None = None,
    session: SessionConfig | SuiteExecutor | None = None,
    *,
    loops=None,
    config: str = "1-(GP8M4-REG64)",
    iterations: int = 16,
) -> Rows:
    """Heuristic vs provably-optimal II across the reference loop sets.

    Every loop is scheduled twice through the suite-execution engine
    (separate cache keys: the scheduler name is part of the key): once
    with MIRS-C, once with the exact backend (``scheduler="smt"``).
    Each exact schedule is statically certified and run through the
    bit-for-bit simulator differential before its II is trusted.  The
    ``gate`` column is the soundness check the nightly benchmark fails
    on: a heuristic II *below* a certified lower bound — for a loop the
    relaxation covers (no spills, no invariant spills, no chained
    moves: :func:`repro.smt.problem.relaxation_covers`) and a schedule
    span inside the certificate's horizon
    (:func:`repro.smt.problem.span_within_horizon`) — would disprove
    one of the two schedulers.

    ``loops`` defaults to the 16-loop workbench plus the full frontend
    corpus; anything with a ``.graph`` (or a bare graph) is accepted.
    """
    from repro.analysis import certify_code
    from repro.codegen import generate_code
    from repro.sim.differential import run_differential
    from repro.smt.problem import relaxation_covers, span_within_horizon

    request = ScheduleRequest.coerce(request)
    session = SessionConfig.coerce(session)
    suite_executor = session.make_executor()
    cache = suite_executor.cache if suite_executor.cache is not None else False
    if loops is None:
        from repro.frontend.corpus import load_corpus
        from repro.workloads.perfect import cached_suite

        loops = list(cached_suite(16)) + load_corpus()
    machine = parse_config(config)
    heuristic = schedule_suite(
        machine, loops,
        dataclasses.replace(request, scheduler="mirsc"),
        session=session,
    )
    exact = schedule_suite(
        machine, loops,
        dataclasses.replace(request, scheduler="smt"),
        session=session,
    )

    headers = [
        "loop", "ops", "MII", "heur II", "exact lb", "exact II",
        "II gap", "reg gap", "oracle", "covered", "validated", "gate",
    ]
    rows: list[list] = []
    proven = 0
    violations = 0
    for loop, heur, smt in zip(
        loops, heuristic.results, exact.results, strict=True
    ):
        graph = getattr(loop, "graph", loop)
        oracle = smt.oracle or {}
        status = oracle.get("status", "-")
        lower = oracle.get("proven_lower_ii")
        covered, why = relaxation_covers(heur)
        base = [
            graph.name,
            len(graph),
            heur.mii,
            heur.ii if heur.converged else "-",
            lower if lower is not None else "-",
            smt.ii if smt.converged else "-",
        ]
        validated = "-"
        if smt.converged:
            cert = certify_code(generate_code(smt), smt)
            diff = run_differential(smt, iterations, cache=cache)
            validated = "ok" if cert.ok and diff.match else "FAIL"
        gap: object = "-"
        gate = "n/a"
        if covered and heur.converged and lower is not None:
            gap = heur.ii - lower
            gate = "ok"
            if heur.ii < lower:
                horizon = next(
                    (
                        c.get("horizon")
                        for c in oracle.get("certificates", [])
                        if c.get("ii") == heur.ii
                        and c.get("verdict") == "unsat"
                    ),
                    None,
                )
                if horizon is None or span_within_horizon(heur, horizon):
                    gate = "VIOLATION"
                    violations += 1
                else:
                    gate = "beyond horizon"
        reg_gap: object = "-"
        if smt.converged and heur.converged:
            reg_gap = heur.total_registers_used - smt.total_registers_used
        if oracle.get("proven_optimal"):
            proven += 1
        rows.append(
            base
            + [gap, reg_gap, status, "yes" if covered else (why or "no"),
               validated, gate]
        )
    note = (
        f"{proven}/{len(rows)} loops proven II-optimal on {machine.name}; "
        f"{violations} lower-bound violations (a covered heuristic II "
        "below a certified minimum would disprove one of the schedulers)."
    )
    return headers, rows, note
