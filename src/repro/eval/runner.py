"""Suite execution helpers shared by the experiment drivers."""

from __future__ import annotations

import dataclasses
import os

from repro.baseline.noniterative import NonIterativeScheduler
from repro.core.mirsc import MirsC
from repro.core.params import MirsParams
from repro.core.result import ScheduleResult
from repro.machine.config import MachineConfig
from repro.workloads.perfect import SuiteLoop, cached_suite

#: Environment variable selecting the workbench subset size used by the
#: benchmarks (the full paper-scale run uses REPRO_BENCH_LOOPS=1258).
LOOPS_ENV = "REPRO_BENCH_LOOPS"
DEFAULT_BENCH_LOOPS = 16


def bench_loop_count(default: int = DEFAULT_BENCH_LOOPS) -> int:
    """Workbench subset size, configurable via ``REPRO_BENCH_LOOPS``."""
    value = os.environ.get(LOOPS_ENV)
    if not value:
        return default
    return max(1, int(value))


def bench_suite(count: int | None = None) -> tuple[SuiteLoop, ...]:
    """The (cached) workbench subset used by the benchmarks."""
    return cached_suite(count or bench_loop_count())


@dataclasses.dataclass
class SuiteRun:
    """Results of one scheduler over one suite on one machine."""

    machine: MachineConfig
    scheduler_name: str
    results: list[ScheduleResult]

    @property
    def converged(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.converged]

    @property
    def not_converged_count(self) -> int:
        return sum(1 for r in self.results if not r.converged)

    def sum_ii(self, indices: set[int] | None = None) -> int:
        return sum(
            r.ii
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_traffic(self, indices: set[int] | None = None) -> int:
        """Summed memory operations per iteration (the paper's "trf")."""
        return sum(
            r.memory_traffic
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_cycles(self, indices: set[int] | None = None) -> int:
        return sum(
            r.execution_cycles
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_scheduling_seconds(self, indices: set[int] | None = None) -> float:
        return sum(
            r.scheduling_seconds
            for i, r in enumerate(self.results)
            if indices is None or i in indices
        )

    def converged_indices(self) -> set[int]:
        return {i for i, r in enumerate(self.results) if r.converged}


def schedule_suite(
    machine: MachineConfig,
    loops: tuple[SuiteLoop, ...] | list[SuiteLoop],
    scheduler: str = "mirsc",
    params: MirsParams | None = None,
    graphs=None,
) -> SuiteRun:
    """Run one scheduler over a workbench subset.

    Args:
        machine: target configuration.
        loops: workbench loops.
        scheduler: ``"mirsc"`` or ``"baseline"``.
        params: algorithm parameters.
        graphs: optional per-loop replacement graphs (used by the
            prefetching experiments, which re-latency the loads).
    """
    if scheduler == "mirsc":
        # Non-strict: off-default parameter ablations (e.g. a starved
        # budget) may legitimately fail to converge; the aggregations
        # already handle unconverged entries.
        engine = MirsC(machine, params=params, strict=False)
    elif scheduler == "baseline":
        engine = NonIterativeScheduler(machine, params=params)
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    results = []
    for index, loop in enumerate(loops):
        graph = graphs[index] if graphs is not None else loop.graph
        results.append(engine.schedule(graph))
    return SuiteRun(
        machine=machine, scheduler_name=scheduler, results=results
    )
