"""Suite execution helpers shared by the experiment drivers."""

from __future__ import annotations

import dataclasses

from repro.core.params import MirsParams
from repro.core.request import (
    _UNSET,
    ScheduleRequest,
    SessionConfig,
    fold_legacy_request,
    fold_legacy_session,
)
from repro.core.result import ScheduleResult
from repro.exec.cache import ResultCache
from repro.exec.engine import SuiteExecutor, int_env
from repro.machine.config import MachineConfig
from repro.workloads.perfect import SuiteLoop, cached_suite


def with_search(params: MirsParams | None, search) -> MirsParams | None:
    """Fold an II-search spec into a parameter set.

    ``search`` is a registered policy name or an
    :class:`~repro.core.search.IISearchPolicy` instance; ``None`` leaves
    ``params`` untouched (including the ``params is None`` "defaults"
    case, which the exec cache keys treat as ``MirsParams()``).
    """
    if search is None:
        return params
    return dataclasses.replace(params or MirsParams(), ii_search=search)

#: Environment variable selecting the workbench subset size used by the
#: benchmarks (the full paper-scale run uses REPRO_BENCH_LOOPS=1258).
LOOPS_ENV = "REPRO_BENCH_LOOPS"
DEFAULT_BENCH_LOOPS = 16


def bench_loop_count(default: int = DEFAULT_BENCH_LOOPS) -> int:
    """Workbench subset size, configurable via ``REPRO_BENCH_LOOPS``.

    A malformed value warns and falls back to ``default`` rather than
    killing a whole benchmark run with a ``ValueError``.
    """
    return max(
        1,
        int_env(
            LOOPS_ENV,
            default,
            fallback_note=f"using the default of {default} loops",
        ),
    )


def bench_suite(count: int | None = None) -> tuple[SuiteLoop, ...]:
    """The (cached) workbench subset used by the benchmarks."""
    return cached_suite(count or bench_loop_count())


@dataclasses.dataclass
class SuiteRun:
    """Results of one scheduler over one suite on one machine."""

    machine: MachineConfig
    scheduler_name: str
    results: list[ScheduleResult]

    @property
    def converged(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.converged]

    @property
    def not_converged_count(self) -> int:
        return sum(1 for r in self.results if not r.converged)

    def sum_ii(self, indices: set[int] | None = None) -> int:
        return sum(
            r.ii
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_traffic(self, indices: set[int] | None = None) -> int:
        """Summed memory operations per iteration (the paper's "trf")."""
        return sum(
            r.memory_traffic
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_cycles(self, indices: set[int] | None = None) -> int:
        return sum(
            r.execution_cycles
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_scheduling_seconds(self, indices: set[int] | None = None) -> float:
        return sum(
            r.scheduling_seconds
            for i, r in enumerate(self.results)
            if indices is None or i in indices
        )

    def converged_indices(self) -> set[int]:
        return {i for i, r in enumerate(self.results) if r.converged}


def schedule_suite(
    machine: MachineConfig,
    loops: tuple[SuiteLoop, ...] | list[SuiteLoop],
    request: ScheduleRequest | str | None = None,
    graphs=None,
    *,
    session: SessionConfig | SuiteExecutor | None = None,
    scheduler: str = _UNSET,
    params: MirsParams | None = _UNSET,
    jobs: int | None = _UNSET,
    cache: ResultCache | bool | None = _UNSET,
    executor: SuiteExecutor | None = _UNSET,
    search=_UNSET,
    speculation: int | None = _UNSET,
) -> SuiteRun:
    """Run one scheduler over a workbench subset.

    Thin wrapper over :class:`repro.exec.engine.SuiteExecutor`; with the
    defaults it reproduces the historical sequential code path exactly.

    Args:
        machine: target configuration.
        loops: workbench loops.
        request: what to schedule — a
            :class:`~repro.core.request.ScheduleRequest`, a bare
            scheduler name (``"mirsc"``/``"baseline"``) or ``None`` for
            the defaults.
        graphs: optional per-loop replacement graphs (used by the
            prefetching experiments, which re-latency the loads).
        session: how to execute — a
            :class:`~repro.core.request.SessionConfig` (jobs, cache,
            progress) or a pre-built executor; reuse one session across
            calls to accumulate stats in a single executor.

    The remaining keywords (``scheduler``, ``params``, ``jobs``,
    ``cache``, ``executor``, ``search``, ``speculation``) are the
    removed pre-request spellings; passing any of them raises a
    :class:`~repro.errors.ConfigError` with a migration hint.
    """
    if isinstance(graphs, MirsParams):
        # Historical 4th positional was params; rejected with the same
        # migration hint as the keyword spelling.
        params = graphs
        graphs = None
    request = fold_legacy_request(
        "schedule_suite", request,
        scheduler=scheduler, params=params, search=search,
        speculation=speculation,
    )
    session = fold_legacy_session(
        "schedule_suite", session, jobs=jobs, cache=cache, executor=executor
    )
    results = session.make_executor().run(machine, loops, request, graphs)
    return SuiteRun(
        machine=machine, scheduler_name=request.scheduler, results=results
    )
