"""Suite execution helpers shared by the experiment drivers."""

from __future__ import annotations

import dataclasses

from repro.core.params import MirsParams
from repro.core.result import ScheduleResult
from repro.exec.cache import ResultCache
from repro.exec.engine import SuiteExecutor, int_env
from repro.machine.config import MachineConfig
from repro.workloads.perfect import SuiteLoop, cached_suite


def with_search(params: MirsParams | None, search) -> MirsParams | None:
    """Fold an II-search spec into a parameter set.

    ``search`` is a registered policy name or an
    :class:`~repro.core.search.IISearchPolicy` instance; ``None`` leaves
    ``params`` untouched (including the ``params is None`` "defaults"
    case, which the exec cache keys treat as ``MirsParams()``).
    """
    if search is None:
        return params
    return dataclasses.replace(params or MirsParams(), ii_search=search)

#: Environment variable selecting the workbench subset size used by the
#: benchmarks (the full paper-scale run uses REPRO_BENCH_LOOPS=1258).
LOOPS_ENV = "REPRO_BENCH_LOOPS"
DEFAULT_BENCH_LOOPS = 16


def bench_loop_count(default: int = DEFAULT_BENCH_LOOPS) -> int:
    """Workbench subset size, configurable via ``REPRO_BENCH_LOOPS``.

    A malformed value warns and falls back to ``default`` rather than
    killing a whole benchmark run with a ``ValueError``.
    """
    return max(
        1,
        int_env(
            LOOPS_ENV,
            default,
            fallback_note=f"using the default of {default} loops",
        ),
    )


def bench_suite(count: int | None = None) -> tuple[SuiteLoop, ...]:
    """The (cached) workbench subset used by the benchmarks."""
    return cached_suite(count or bench_loop_count())


@dataclasses.dataclass
class SuiteRun:
    """Results of one scheduler over one suite on one machine."""

    machine: MachineConfig
    scheduler_name: str
    results: list[ScheduleResult]

    @property
    def converged(self) -> list[ScheduleResult]:
        return [r for r in self.results if r.converged]

    @property
    def not_converged_count(self) -> int:
        return sum(1 for r in self.results if not r.converged)

    def sum_ii(self, indices: set[int] | None = None) -> int:
        return sum(
            r.ii
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_traffic(self, indices: set[int] | None = None) -> int:
        """Summed memory operations per iteration (the paper's "trf")."""
        return sum(
            r.memory_traffic
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_cycles(self, indices: set[int] | None = None) -> int:
        return sum(
            r.execution_cycles
            for i, r in enumerate(self.results)
            if r.converged and (indices is None or i in indices)
        )

    def sum_scheduling_seconds(self, indices: set[int] | None = None) -> float:
        return sum(
            r.scheduling_seconds
            for i, r in enumerate(self.results)
            if indices is None or i in indices
        )

    def converged_indices(self) -> set[int]:
        return {i for i, r in enumerate(self.results) if r.converged}


def schedule_suite(
    machine: MachineConfig,
    loops: tuple[SuiteLoop, ...] | list[SuiteLoop],
    scheduler: str = "mirsc",
    params: MirsParams | None = None,
    graphs=None,
    *,
    jobs: int | None = None,
    cache: ResultCache | bool | None = None,
    executor: SuiteExecutor | None = None,
    search=None,
) -> SuiteRun:
    """Run one scheduler over a workbench subset.

    Thin wrapper over :class:`repro.exec.engine.SuiteExecutor`; with the
    defaults (``jobs=1``, no cache) it reproduces the historical
    sequential code path exactly.

    Args:
        machine: target configuration.
        loops: workbench loops.
        scheduler: ``"mirsc"`` or ``"baseline"``.
        params: algorithm parameters.
        graphs: optional per-loop replacement graphs (used by the
            prefetching experiments, which re-latency the loads).
        jobs: worker processes (``None``: ``REPRO_JOBS`` env or 1).
        cache: result cache selector (see
            :func:`repro.exec.cache.resolve_cache`).
        executor: a pre-built executor; overrides ``jobs``/``cache`` and
            accumulates stats across calls.
        search: II-search policy (name or instance) folded into
            ``params``; participates in the cache keys like any other
            parameter.
    """
    params = with_search(params, search)
    if executor is None:
        executor = SuiteExecutor(jobs=jobs, cache=cache)
    results = executor.run(
        machine, loops, scheduler=scheduler, params=params, graphs=graphs
    )
    return SuiteRun(
        machine=machine, scheduler_name=scheduler, results=results
    )
