"""Experiment drivers: one function per table/figure of the paper."""

from repro.eval.runner import schedule_suite, SuiteRun
from repro.eval.reporting import render_table
from repro.eval.experiments import (
    figure2_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    figure5_rows,
    figure6_rows,
    figure7_rows,
)

__all__ = [
    "schedule_suite",
    "SuiteRun",
    "render_table",
    "figure2_rows",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "figure5_rows",
    "figure6_rows",
    "figure7_rows",
]
