"""On-disk memoization of schedule results.

The cache is a plain directory of pickle files, content-addressed by the
keys of :mod:`repro.exec.hashing` and fanned out over 256 subdirectories
(first key byte) so paper-scale runs do not pile tens of thousands of
entries into one directory.  Writes go through a temporary file followed
by an atomic :func:`os.replace`, so concurrent workers and concurrent
benchmark processes can share one cache directory without locking:
last-writer-wins is safe because both writers hold the identical,
deterministically computed result.

Location, in decreasing precedence:

* an explicit ``directory`` argument (tests pass ``tmp_path``),
* the ``REPRO_CACHE_DIR`` environment variable,
* ``.repro-cache/`` under the current working directory.

``REPRO_NO_CACHE=1`` makes :func:`resolve_cache` return ``None``
everywhere a default would otherwise be constructed.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import pickle
import tempfile

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
DEFAULT_CACHE_DIR = ".repro-cache"

_SUFFIX = ".pkl"


def default_cache_dir() -> pathlib.Path:
    """The cache directory implied by the environment."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


@dataclasses.dataclass
class CacheStats:
    """Aggregate on-disk state, for reporting (``repro cache``)."""

    directory: str
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed store of result pickles.

    Holds :class:`ScheduleResult` objects for the scheduling layer and
    the simulation layer's ``SimulationResult`` / ``DifferentialReport``
    records (:mod:`repro.sim`); callers type-check what they load.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / (key + _SUFFIX)

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------

    def get(self, key: str) -> object | None:
        """The cached result, or ``None`` on a miss.

        A corrupt or truncated entry (killed writer, disk trouble) is
        treated as a miss and removed so it is rewritten cleanly.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result: object) -> None:
        """Store a result atomically (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _entries(self) -> list[pathlib.Path]:
        if not self.directory.is_dir():
            return []
        return list(self.directory.glob(f"??/*{_SUFFIX}"))

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self) -> CacheStats:
        entries = self._entries()
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=sum(path.stat().st_size for path in entries),
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(
    cache: ResultCache | bool | None,
) -> ResultCache | None:
    """Normalise the ``cache`` argument accepted by the execution layer.

    * a :class:`ResultCache` is used as-is;
    * ``True`` opens the default (environment-selected) cache;
    * ``False`` disables caching;
    * ``None`` opens the default cache only when the environment asks
      for one (``REPRO_CACHE_DIR`` set), keeping plain library calls —
      including the tier-1 test suite — free of hidden on-disk state.

    ``REPRO_NO_CACHE=1`` wins over everything except an explicit
    :class:`ResultCache` instance.
    """
    if isinstance(cache, ResultCache):
        return cache
    if os.environ.get(NO_CACHE_ENV):
        return None
    if cache is True:
        return ResultCache()
    if cache is None and os.environ.get(CACHE_DIR_ENV):
        return ResultCache()
    return None
