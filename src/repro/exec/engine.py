"""The suite-execution engine.

:class:`SuiteExecutor` turns "run this scheduler over these loops on
this machine" into a shardable, memoizable job list:

1. every loop's scheduling problem is keyed by a stable content hash
   (:func:`repro.exec.hashing.cache_key`) and probed against the
   on-disk :class:`~repro.exec.cache.ResultCache`;
2. the misses are scheduled — sequentially for ``jobs=1`` (the exact
   historical code path: one scheduler instance, loops in order), or
   sharded over a ``multiprocessing`` pool for ``jobs>1``;
3. results are reassembled *by position*, so the output order is
   deterministic and identical regardless of worker count or completion
   order, then written back to the cache.

The schedulers are deterministic, so parallel and sequential runs agree
on every field except wall-clock timing; tests pin this with
:func:`repro.exec.hashing.result_fingerprint`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import warnings
from collections.abc import Callable, Sequence

from repro.core.params import MirsParams
from repro.core.request import (
    _UNSET,
    ScheduleRequest,
    fold_legacy_request,
)
from repro.core.result import ScheduleResult
from repro.exec.cache import ResultCache, resolve_cache
from repro.exec.hashing import cache_key
from repro.graph.ddg import DependenceGraph
from repro.machine.config import MachineConfig
from repro.obs import resolve_tracer

JOBS_ENV = "REPRO_JOBS"

#: Callback invoked after each loop completes:
#: ``progress(done, total, loop_name, from_cache)``.
ProgressFn = Callable[[int, int, str, bool], None]


def int_env(name: str, default: int, *, fallback_note: str) -> int:
    """An integer environment knob with warn-and-fallback semantics.

    A malformed value warns and falls back to ``default`` rather than
    aborting a long benchmark run (shared by ``REPRO_JOBS`` here and
    ``REPRO_BENCH_LOOPS`` in :mod:`repro.eval.runner`).
    """
    value = os.environ.get(name)
    if not value:
        return default
    try:
        return int(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={value!r}; {fallback_note}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalise a worker count.

    ``None`` falls back to the ``REPRO_JOBS`` environment variable and
    then to 1 (sequential); 0 or a negative count means "one worker per
    CPU".
    """
    if jobs is None:
        jobs = int_env(
            JOBS_ENV, 1, fallback_note="running sequentially (jobs=1)"
        )
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def make_engine(
    machine: MachineConfig,
    request: ScheduleRequest | str | None = None,
    params: MirsParams | None = _UNSET,
):
    """Instantiate the scheduler of a :class:`ScheduleRequest`.

    Non-strict: off-default parameter ablations (e.g. a starved budget)
    may legitimately fail to converge; the aggregations already handle
    unconverged entries.  The historical ``(machine, "mirsc", params)``
    call shape still works — the name coerces and a positional
    ``params`` folds in with a :class:`DeprecationWarning`.
    """
    request = fold_legacy_request("make_engine", request, params=params)
    return request.make_scheduler(machine, strict=False)


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_ENGINE = None


def _init_worker(machine: MachineConfig, request: ScheduleRequest) -> None:
    """Pool initializer: build the per-process scheduler once.

    A forked worker inherits the parent's process-global tracer along
    with everything it has recorded (e.g. under ``REPRO_TRACE``); the
    reset gives this worker an empty tracer of its own so the first
    per-loop drain cannot replay the parent's history.
    """
    from repro.obs import reset_global_tracer

    reset_global_tracer()
    global _WORKER_ENGINE
    _WORKER_ENGINE = make_engine(machine, request)


def _schedule_item(
    item: tuple[int, DependenceGraph],
) -> tuple[int, ScheduleResult, dict | None]:
    """Schedule one loop in a worker, shipping its trace slice back.

    With tracing on, the worker engine records into the worker's own
    process-global tracer (tracer objects are never pickled across the
    pool boundary); draining it after each loop ships exactly that
    loop's events back through the result tuple, where the parent
    merges them under a per-position ``worker:N`` thread id.
    """
    position, graph = item
    result = _WORKER_ENGINE.schedule(graph)
    payload = None
    tracer = getattr(_WORKER_ENGINE, "tracer", None)
    if getattr(tracer, "enabled", False):
        payload = tracer.drain()
    return position, result, payload


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ExecStats:
    """Cumulative counters over every :meth:`SuiteExecutor.run` call."""

    loops: int = 0
    scheduled: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.loops if self.loops else 0.0


@dataclasses.dataclass
class SuiteSummary:
    """Machine-readable record of one suite execution.

    The benchmark harness collects these into ``BENCH_suite.json`` so
    successive commits have a perf trajectory to compare against.
    """

    machine: str
    scheduler: str
    loops: int
    converged: int
    sum_ii: int
    sum_traffic: int
    scheduling_seconds: float
    wall_seconds: float
    scheduled: int
    cache_hits: int
    jobs: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class SuiteExecutor:
    """Shards suite scheduling over workers, memoizing every result.

    Args:
        jobs: worker processes (see :func:`resolve_jobs`; default 1,
            i.e. the sequential code path).
        cache: a :class:`ResultCache`, ``True`` for the default cache,
            ``False`` to disable, ``None`` to follow the environment
            (see :func:`repro.exec.cache.resolve_cache`).
        progress: optional per-loop completion callback.

    One executor may serve many :meth:`run` calls (the experiment
    drivers issue one per machine configuration); ``stats`` accumulates
    across them and ``history`` records one summary per call.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | bool | None = None,
        progress: ProgressFn | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = resolve_cache(cache)
        self.progress = progress
        self.stats = ExecStats()
        self.history: list[SuiteSummary] = []

    # ------------------------------------------------------------------

    def run(
        self,
        machine: MachineConfig,
        loops: Sequence,
        request: ScheduleRequest | str | None = None,
        graphs: Sequence[DependenceGraph] | None = None,
        *,
        scheduler: str = _UNSET,
        params: MirsParams | None = _UNSET,
    ) -> list[ScheduleResult]:
        """Schedule every loop, in order; see module docstring.

        ``loops`` holds workbench :class:`SuiteLoop` entries (anything
        with a ``.graph``) or bare dependence graphs; ``graphs``
        optionally replaces them position-for-position (the prefetching
        experiments re-latency the loads this way).  ``request`` also
        accepts a bare scheduler name (the historical third positional);
        the old ``scheduler=``/``params=`` keywords are deprecated.
        """
        if isinstance(graphs, MirsParams):
            # Historical 4th positional was params; accept it with the
            # same deprecation story as the keyword spelling.
            params = graphs
            graphs = None
        request = fold_legacy_request(
            "SuiteExecutor.run", request, scheduler=scheduler, params=params
        )
        scheduler_name = request.scheduler
        resolved = request.resolved_params()
        tracer = resolve_tracer(request.trace)
        started = time.perf_counter()
        work: list[DependenceGraph] = []
        for position, loop in enumerate(loops):
            if graphs is not None:
                work.append(graphs[position])
            else:
                work.append(getattr(loop, "graph", loop))

        # Fail fast on an unknown scheduler, before pools or cache IO.
        make_engine(machine, request)

        suite_span = (
            tracer.begin(
                "exec.suite", "exec",
                machine=machine.name, scheduler=scheduler_name,
                loops=len(work), jobs=self.jobs,
            )
            if tracer.enabled
            else None
        )
        results: dict[int, ScheduleResult] = {}
        keys: dict[int, str] = {}
        if self.cache is not None:
            for position, graph in enumerate(work):
                keys[position] = cache_key(
                    graph, machine, resolved, scheduler_name
                )
                cached = self.cache.get(keys[position])
                if cached is not None:
                    results[position] = cached
                if tracer.enabled:
                    tracer.instant(
                        "exec.cache", "exec",
                        loop=graph.name, hit=cached is not None,
                    )
        hits = len(results)
        misses = [(p, graph) for p, graph in enumerate(work) if p not in results]

        done = hits
        total = len(work)
        if self.progress is not None:
            for count, position in enumerate(sorted(results), start=1):
                self.progress(count, total, results[position].loop, True)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                fresh = self._run_parallel(machine, request, misses, tracer)
            else:
                fresh = self._run_sequential(
                    machine, request, misses, tracer, started
                )
            for position, result in fresh:
                results[position] = result
                if self.cache is not None:
                    self.cache.put(keys[position], result)
                done += 1
                if self.progress is not None:
                    self.progress(done, total, result.loop, False)

        ordered = [results[position] for position in range(total)]
        wall = time.perf_counter() - started
        if suite_span is not None:
            tracer.end(
                suite_span, scheduled=len(misses), cache_hits=hits,
            )
        self._record(
            machine, scheduler_name, ordered,
            scheduled=len(misses), hits=hits,
            wall=wall,
        )
        return ordered

    # ------------------------------------------------------------------

    def _run_sequential(
        self,
        machine: MachineConfig,
        request: ScheduleRequest,
        misses: list[tuple[int, DependenceGraph]],
        tracer,
        started: float,
    ) -> list[tuple[int, ScheduleResult]]:
        # The engine inherits the resolved tracer directly, so its
        # schedule/attempt spans land in the parent trace unmediated.
        engine = make_engine(
            machine, dataclasses.replace(request, trace=tracer)
        )
        produced = []
        for position, graph in misses:
            if tracer.enabled:
                tracer.instant(
                    "exec.queue", "exec",
                    loop=graph.name, position=position,
                    wait=round(time.perf_counter() - started, 6),
                )
            produced.append((position, engine.schedule(graph)))
        return produced

    def _run_parallel(
        self,
        machine: MachineConfig,
        request: ScheduleRequest,
        misses: list[tuple[int, DependenceGraph]],
        tracer,
    ) -> list[tuple[int, ScheduleResult]]:
        workers = min(self.jobs, len(misses))
        chunksize = max(1, len(misses) // (workers * 4))
        ctx = multiprocessing.get_context()
        # Tracer objects never cross the pool boundary: the workers see
        # a plain True/False and record into their own global tracers,
        # shipping each loop's slice back in the result tuple.
        wire = dataclasses.replace(request, trace=bool(tracer.enabled))
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(machine, wire),
        ) as pool:
            produced = list(
                pool.imap_unordered(_schedule_item, misses, chunksize=chunksize)
            )
        # Reassembled by position: completion order is load-dependent,
        # the returned order must not be — and the merged trace follows
        # the same positional order so traces stay deterministic modulo
        # timestamps regardless of completion order.
        produced.sort(key=lambda item: item[0])
        if tracer.enabled:
            for position, _result, payload in produced:
                if payload is not None:
                    tracer.merge(payload, tid=f"worker:{position}")
        return [(position, result) for position, result, _ in produced]

    # ------------------------------------------------------------------

    def _record(
        self,
        machine: MachineConfig,
        scheduler: str,
        results: list[ScheduleResult],
        *,
        scheduled: int,
        hits: int,
        wall: float,
    ) -> None:
        self.stats.loops += len(results)
        self.stats.scheduled += scheduled
        self.stats.cache_hits += hits
        self.stats.wall_seconds += wall
        converged = [r for r in results if r.converged]
        self.history.append(
            SuiteSummary(
                machine=machine.name,
                scheduler=scheduler,
                loops=len(results),
                converged=len(converged),
                sum_ii=sum(r.ii for r in converged),
                sum_traffic=sum(r.memory_traffic for r in converged),
                scheduling_seconds=round(
                    sum(r.scheduling_seconds for r in results), 6
                ),
                wall_seconds=round(wall, 6),
                scheduled=scheduled,
                cache_hits=hits,
                jobs=self.jobs,
            )
        )
