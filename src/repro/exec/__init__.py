"""Suite-execution engine: parallel fan-out + on-disk result memoization.

The experiment drivers (``repro.eval.experiments``) schedule the same
(machine, params, loop) combinations over and over across tables and
figures; at paper scale (``REPRO_BENCH_LOOPS=1258``) re-scheduling them
sequentially dominates the cost of every run.  This package provides:

* :mod:`repro.exec.hashing` - stable, content-addressed cache keys for
  (graph, machine configuration, algorithm parameters, scheduler);
* :mod:`repro.exec.cache` - an on-disk :class:`ResultCache` memoizing
  :class:`~repro.core.result.ScheduleResult` objects by those keys;
* :mod:`repro.exec.engine` - the :class:`SuiteExecutor` that shards a
  workbench across a ``multiprocessing`` worker pool with deterministic
  result ordering, consulting the cache before scheduling anything.

``jobs=1`` with the cache disabled reproduces the original sequential
code path bit for bit; everything else is a pure optimisation layer.
"""

from repro.exec.cache import ResultCache, default_cache_dir, resolve_cache
from repro.exec.engine import (
    ExecStats,
    SuiteExecutor,
    SuiteSummary,
    make_engine,
    resolve_jobs,
)
from repro.exec.hashing import (
    attempt_cache_key,
    cache_key,
    result_fingerprint,
    simulation_cache_key,
    stable_hash,
)

__all__ = [
    "ExecStats",
    "ResultCache",
    "SuiteExecutor",
    "SuiteSummary",
    "attempt_cache_key",
    "cache_key",
    "default_cache_dir",
    "make_engine",
    "resolve_cache",
    "resolve_jobs",
    "result_fingerprint",
    "simulation_cache_key",
    "stable_hash",
]
