"""Stable content hashing of scheduling inputs and outputs.

Cache keys must be reproducible across processes, Python versions and
machines, so everything is first lowered to a *canonical form* — plain
lists/dicts of scalars with deterministic ordering — and then hashed as
compact JSON.  ``hash()`` and ``pickle`` are both unsuitable here: the
former is salted per process (``PYTHONHASHSEED``) and the latter encodes
implementation details (memo indices, protocol framing) that can change
without the semantic content changing.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import pathlib

import repro
from repro.core.params import MirsParams
from repro.core.result import ScheduleResult
from repro.graph.ddg import DependenceGraph, MemRef
from repro.machine.config import MachineConfig

#: Bump whenever the canonical encoding (or the semantics of a cached
#: result) changes; old cache entries then simply stop matching.
CACHE_FORMAT_VERSION = 1


@functools.cache
def code_digest() -> str:
    """Digest of the installed ``repro`` sources.

    Folded into every cache key so a persistent cache (the benchmarks
    keep one across commits) can never serve results computed by an
    older version of the scheduler: edit any module and every key
    changes.  Deliberately coarse — hashing just the scheduling modules
    would be cheaper to invalidate but easy to under-scope.
    """
    package_root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def stable_hash(payload) -> str:
    """SHA-256 hex digest of a canonical (JSON-serializable) payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_mem_ref(ref: MemRef | None) -> list | None:
    if ref is None:
        return None
    return [ref.array, ref.offset, ref.stride, ref.element_size]


def canonical_graph(graph: DependenceGraph) -> dict:
    """Canonical form of a dependence graph.

    Nodes are sorted by id and edges by (src, dst, kind, distance), so
    two graphs built through different insertion orders but describing
    the same loop hash identically.
    """
    nodes = [
        [
            node.id,
            node.kind.value,
            node.name,
            _canonical_mem_ref(node.mem_ref),
            node.latency_override,
            node.is_spill,
            node.spilled_value,
            node.move_of,
            node.move_of_invariant,
            node.load_of_invariant,
            node.src_cluster,
        ]
        for node in sorted(graph.nodes(), key=lambda n: n.id)
    ]
    edges = sorted(
        (
            [edge.src, edge.dst, edge.kind.value, edge.distance, edge.latency]
            for edge in graph.edges()
        ),
        key=lambda e: (e[0], e[1], e[2], e[3], -1 if e[4] is None else e[4]),
    )
    invariants = [
        [
            inv.id,
            inv.name,
            sorted(inv.consumers),
            _canonical_mem_ref(inv.mem_ref),
        ]
        for inv in sorted(graph.invariants(), key=lambda i: i.id)
    ]
    return {
        "name": graph.name,
        "trip_count": graph.trip_count,
        # Iteration-space provenance: two unrollings can produce the
        # same body and trip count from *different* source loops (e.g.
        # trips 10 and 12 both unroll by 3 into trip 4), and the
        # simulator's surplus-iteration reporting depends on the
        # difference — so it must split the cache key.
        "unroll": [graph.unroll_factor, graph.source_trip_count],
        "nodes": nodes,
        "edges": edges,
        "invariants": invariants,
    }


def cache_key(
    graph: DependenceGraph,
    machine: MachineConfig,
    params: MirsParams | None,
    scheduler: str,
) -> str:
    """The content-addressed cache key of one scheduling problem."""
    return stable_hash(
        {
            "version": CACHE_FORMAT_VERSION,
            "code": code_digest(),
            "scheduler": scheduler,
            "machine": machine.canonical(),
            "params": (params or MirsParams()).canonical(),
            "graph": canonical_graph(graph),
        }
    )


def attempt_cache_key(task) -> str:
    """Content-addressed key of one fixed-II attempt task.

    An attempt's behaviour is independent of the II-*search* policy and
    of the speculation width (both only decide *which* IIs get
    attempted), so those are stripped from the canonical parameter
    payload — a geometric search at K=4 and the serial linear ladder
    share cache entries for every II they both probe.  Everything the
    attempt loop does consume stays: the resolved ``bound_eject_churn``
    (policy-derived, and it changes attempt verdicts' timing), the
    gauges, the budget, the machine, the graph content hash and the
    HRMS priorities.
    """
    params = task.params.canonical()
    params.pop("ii_search", None)
    params.pop("speculation", None)
    # The exact backend's knobs never reach the heuristic attempt loop.
    params.pop("smt", None)
    return stable_hash(
        {
            "version": CACHE_FORMAT_VERSION,
            "code": code_digest(),
            "kind": "attempt",
            "machine": task.machine.canonical(),
            "params": params,
            "ii": task.ii,
            "graph": task.graph_hash,
            "priorities": sorted(task.priorities.items()),
        }
    )


def simulation_cache_key(
    result: ScheduleResult,
    iterations: int,
    cache_config=None,
    technology=None,
) -> str:
    """Content-addressed key of one simulation problem.

    A :class:`repro.sim.result.SimulationResult` is fully determined by
    the schedule being executed (its fingerprint covers graph, times,
    clusters and machine), the requested trip count and the memory
    system, so those — plus the usual code digest — form the key.  The
    cache configuration and technology model are dataclasses; their
    field dicts are canonical enough once sorted by
    :func:`stable_hash`'s ``sort_keys``.
    """
    return stable_hash(
        {
            "version": CACHE_FORMAT_VERSION,
            "code": code_digest(),
            "kind": "simulation",
            "schedule": result_fingerprint(result),
            "iterations": iterations,
            "cache_config": (
                None if cache_config is None else dataclasses.asdict(cache_config)
            ),
            "technology": (
                None if technology is None else dataclasses.asdict(technology)
            ),
        }
    )


def result_fingerprint(result: ScheduleResult) -> str:
    """Digest of every deterministic field of a schedule result.

    Wall-clock timing (``scheduling_seconds``), the II-search trace
    (``stats.search_trace``) and the speculative-search accounting
    (``stats.search``) are excluded: they are diagnostic (they
    record *how* the II was found, not the schedule), and keeping them
    out lets the default :class:`~repro.core.search.LinearSearch`
    produce fingerprints bit-identical to the pre-policy scheduler's —
    and the speculative driver bit-identical to the serial one.  Two
    runs of the same deterministic scheduler agree on every included
    field, and the parallel-vs-sequential, cache-vs-fresh and
    speculative-vs-serial equivalence tests compare exactly this
    fingerprint.
    """
    stats = dataclasses.asdict(result.stats)
    stats.pop("search_trace", None)
    stats.pop("search_stats", None)  # pre-typed-ledger field name
    stats.pop("search", None)
    payload = {
        "loop": result.loop,
        "machine": result.machine.canonical(),
        "converged": result.converged,
        "ii": result.ii,
        "mii": result.mii,
        "times": sorted(result.times.items()),
        "clusters": sorted(result.clusters.items()),
        "register_usage": sorted(result.register_usage.items()),
        "max_live": sorted(result.max_live.items()),
        "memory_traffic": result.memory_traffic,
        "spill_operations": result.spill_operations,
        "move_operations": result.move_operations,
        "stage_count": result.stage_count,
        "restarts": result.restarts,
        "stats": stats,
        "trip_count": result.trip_count,
        "graph": None if result.graph is None else canonical_graph(result.graph),
    }
    return stable_hash(payload)
