"""repro - a reproduction of "Modulo Scheduling with Integrated Register
Spilling for Clustered VLIW Architectures" (Zalamea, Llosa, Ayguadé,
Valero; MICRO-34, 2001).

Public API tour
---------------

Machine model::

    from repro import parse_config, MachineConfig
    machine = parse_config("4-(GP2M1-REG32)", move_latency=1)

Loops::

    from repro import LoopBuilder
    b = LoopBuilder("axpy", trip_count=1000)
    x = b.load(array=0)
    y = b.load(array=1)
    a = b.invariant("a")
    b.store(b.add(b.mul(x, a), y), array=1)
    graph = b.build()

Scheduling::

    from repro import MirsC
    result = MirsC(machine).schedule(graph)
    print(result.summary())

Observability::

    from repro import MirsC, RecordingTracer
    tracer = RecordingTracer()
    MirsC(machine, tracer=tracer).schedule(graph)
    # or: REPRO_TRACE=trace.jsonl, or the CLI's --trace PATH
    from repro.obs.export import write_jsonl
    write_jsonl(tracer, "trace.jsonl")

The baseline of Sánchez & González [31] lives in
:class:`repro.NonIterativeScheduler`; the synthetic Perfect-Club-like
workload in :mod:`repro.workloads`; the memory-hierarchy simulator in
:mod:`repro.memsim`; experiment drivers for every table and figure in
:mod:`repro.eval`.
"""

from repro.analysis import (
    CertifierReport,
    CertifierViolation,
    ViolationKind,
    certify_code,
    certify_schedule,
)
from repro.baseline.noniterative import NonIterativeScheduler
from repro.codegen.emitter import GeneratedCode, generate_code
from repro.core.attempts import (
    AttemptResult,
    AttemptTask,
    SpeculativeSearchDriver,
)
from repro.core.mirsc import Mirs, MirsC
from repro.core.params import MirsParams
from repro.core.request import ScheduleRequest, SessionConfig
from repro.core.result import ScheduleResult
from repro.core.search import (
    AttemptOutcome,
    BisectionSearch,
    GeometricPressureSearch,
    IISearchPolicy,
    LinearSearch,
    OutcomeKind,
)
from repro.core.verify import verify_schedule
from repro.errors import (
    AllocationError,
    CertificationError,
    CodegenError,
    ConfigError,
    ConvergenceError,
    GraphError,
    ReproError,
    SchedulingError,
)
from repro.graph.builder import LoopBuilder
from repro.graph.ddg import (
    DependenceGraph,
    DepKind,
    Edge,
    Invariant,
    MemRef,
    Node,
)
from repro.graph.mii import compute_mii, resource_mii
from repro.graph.recurrences import find_recurrences, recurrence_mii
from repro.machine.config import (
    ClusterConfig,
    MachineConfig,
    parse_config,
    paper_configuration,
    scalability_configuration,
)
from repro.machine.resources import OpKind
from repro.machine.technology import TechnologyModel
from repro.obs import (
    NullTracer,
    RecordingTracer,
    SearchStats,
    Tracer,
    resolve_tracer,
)
from repro.order.hrms import hrms_order

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "AttemptOutcome",
    "AttemptResult",
    "AttemptTask",
    "BisectionSearch",
    "CertificationError",
    "CertifierReport",
    "CertifierViolation",
    "ClusterConfig",
    "CodegenError",
    "ConfigError",
    "ConvergenceError",
    "DependenceGraph",
    "GeometricPressureSearch",
    "IISearchPolicy",
    "LinearSearch",
    "OutcomeKind",
    "DepKind",
    "Edge",
    "GeneratedCode",
    "generate_code",
    "GraphError",
    "Invariant",
    "LoopBuilder",
    "MachineConfig",
    "MemRef",
    "Mirs",
    "MirsC",
    "MirsParams",
    "Node",
    "NonIterativeScheduler",
    "NullTracer",
    "OpKind",
    "RecordingTracer",
    "ReproError",
    "ScheduleRequest",
    "ScheduleResult",
    "SchedulingError",
    "SearchStats",
    "SessionConfig",
    "SpeculativeSearchDriver",
    "TechnologyModel",
    "Tracer",
    "ViolationKind",
    "certify_code",
    "certify_schedule",
    "resolve_tracer",
    "compute_mii",
    "find_recurrences",
    "hrms_order",
    "paper_configuration",
    "parse_config",
    "recurrence_mii",
    "resource_mii",
    "scalability_configuration",
    "verify_schedule",
    "__version__",
]
