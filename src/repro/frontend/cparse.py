"""Optional tree-sitter C parser for the frontend.

The container this repository targets does not ship ``tree_sitter``;
everything here degrades cleanly when it is absent:

* :func:`c_parser_available` answers without raising;
* :func:`make_c_parser` (called lazily by the parser registry the first
  time a ``.c`` file is selected) raises
  :class:`~repro.errors.FrontendError` with an install hint.

When the dependency *is* present (``tree_sitter`` plus a C grammar from
``tree_sitter_c`` or the ``tree_sitter_languages`` bundle), the parser
accepts the C mirror of the Python fragment::

    void saxpy(double *x, double *y, double a, int n) {
        for (int i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
        }
    }

i.e. canonical counted ``for`` loops (``i = c``; ``i < bound`` /
``i <= bound``; ``i++`` / ``i += c``) whose bodies are straight-line
assignments over scalars and affine subscripts.  The output is the same
:class:`~repro.frontend.ir.Kernel` IR the Python parser produces, so
analysis, lowering and the differential harness are shared.
"""

from __future__ import annotations

from typing import Any

from repro.errors import FrontendError, optional_import
from repro.frontend.ir import (
    Assign,
    BinOp,
    Call,
    Expr,
    Kernel,
    LoopInfo,
    Name,
    Num,
    Subscript,
)

_INSTALL_HINT = (
    "the optional C frontend needs the 'tree_sitter' package plus a C "
    "grammar (pip install tree-sitter tree-sitter-c); the Python "
    "frontend (.py sources) is always available"
)


# The probe half of the gate lives in repro.errors now (shared with the
# z3 exact-scheduling backend); kept under the historical local name so
# the module reads as before.
_import = optional_import


def _load_language() -> tuple[Any, Any] | None:
    """(Parser instance, Language) or None when unavailable."""
    ts = _import("tree_sitter")
    if ts is None:
        return None
    ts_c = _import("tree_sitter_c")
    language: Any = None
    if ts_c is not None:
        language = ts.Language(ts_c.language())
    else:
        bundle = _import("tree_sitter_languages")
        if bundle is not None:
            language = bundle.get_language("c")
    if language is None:
        return None
    parser = ts.Parser()
    try:
        parser.language = language
    except AttributeError:  # pre-0.22 API
        parser.set_language(language)
    return parser, language


def c_parser_available() -> bool:
    """True when tree-sitter and a C grammar are importable."""
    return _load_language() is not None


def make_c_parser() -> "CParser":
    """Build the C parser, or raise with an install hint."""
    loaded = _load_language()
    if loaded is None:
        raise FrontendError(f"C parser unavailable: {_INSTALL_HINT}")
    return CParser(loaded[0])


class CParser:
    """Tree-sitter-backed C loop parser (see module docstring)."""

    name = "c"
    suffixes = (".c", ".h")

    def __init__(self, parser: Any):
        self._parser = parser

    def parse(
        self,
        text: str,
        *,
        source: str = "<string>",
        default_trip_count: int = 120,
    ) -> list[Kernel]:
        tree = self._parser.parse(text.encode())
        kernels: list[Kernel] = []
        for node in tree.root_node.children:
            if node.type != "function_definition":
                continue
            kernel = self._function(node, source, default_trip_count)
            if kernel is not None:
                kernels.append(kernel)
        return kernels

    # -- helpers --------------------------------------------------------

    def _text(self, node: Any) -> str:
        text = node.text
        return text.decode() if isinstance(text, bytes) else str(text)

    def _child(self, node: Any, field: str) -> Any:
        return node.child_by_field_name(field)

    def _find_all(self, node: Any, kind: str) -> list[Any]:
        found: list[Any] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.type == kind:
                found.append(current)
            stack.extend(reversed(current.children))
        return found

    # -- functions ------------------------------------------------------

    def _function(
        self, node: Any, source: str, default_trip_count: int
    ) -> Kernel | None:
        declarator = self._child(node, "declarator")
        names = self._find_all(declarator, "identifier") if declarator else []
        if not names:
            return None
        func_name = self._text(names[0])
        params = tuple(self._text(n) for n in names[1:])
        where = f"{source}:{func_name}"
        loops = self._find_all(self._child(node, "body"), "for_statement")
        if not loops:
            return None
        # Innermost loop of the (single) nest.
        loop = loops[0]
        inner = [f for f in self._find_all(loop, "for_statement") if f != loop]
        while inner:
            loop = inner[0]
            inner = [
                f for f in self._find_all(loop, "for_statement") if f != loop
            ]
        info = self._loop_info(loop, where, default_trip_count)
        body: list[Assign] = []
        body_node = self._child(loop, "body")
        statements = (
            body_node.children
            if body_node.type == "compound_statement"
            else [body_node]
        )
        for stmt in statements:
            if stmt.type in ("{", "}", "comment"):
                continue
            if stmt.type != "expression_statement":
                raise FrontendError(
                    f"{where}: unsupported statement {stmt.type!r} in "
                    "loop body"
                )
            body.append(self._statement(stmt.children[0], where, info.var))
        if not body:
            raise FrontendError(f"{where}: empty loop body")
        return Kernel(
            name=func_name, params=params, loop=info, body=body, source=source
        )

    # -- loop header ----------------------------------------------------

    def _loop_info(
        self, loop: Any, where: str, default_trip_count: int
    ) -> LoopInfo:
        init = self._child(loop, "initializer")
        cond = self._child(loop, "condition")
        update = self._child(loop, "update")
        if init is None or cond is None or update is None:
            raise FrontendError(f"{where}: for loop is not in canonical form")

        var, start = self._parse_init(init, where)
        step = self._parse_update(update, var, where)
        stop_text, inclusive = self._parse_cond(cond, var, where)
        symbolic: str | None = None
        try:
            stop = int(stop_text)
            if inclusive:
                stop += 1 if step > 0 else -1
            trip = len(range(start, stop, step))
        except ValueError:
            symbolic = stop_text
            trip = default_trip_count
        if trip < 1:
            raise FrontendError(f"{where}: loop executes no iterations")
        return LoopInfo(
            var=var,
            start=start,
            step=step,
            trip_count=trip,
            symbolic_bound=symbolic,
        )

    def _parse_init(self, init: Any, where: str) -> tuple[str, int]:
        decls = self._find_all(init, "init_declarator")
        if decls:
            name_node = self._child(decls[0], "declarator")
            value_node = self._child(decls[0], "value")
        else:
            assigns = self._find_all(init, "assignment_expression")
            if not assigns:
                raise FrontendError(
                    f"{where}: for-loop initializer must set the "
                    "induction variable"
                )
            name_node = self._child(assigns[0], "left")
            value_node = self._child(assigns[0], "right")
        try:
            start = int(self._text(value_node))
        except (TypeError, ValueError) as exc:
            raise FrontendError(
                f"{where}: induction start must be an integer literal"
            ) from exc
        return self._text(name_node), start

    def _parse_cond(
        self, cond: Any, var: str, where: str
    ) -> tuple[str, bool]:
        rels = self._find_all(cond, "binary_expression")
        if not rels:
            raise FrontendError(f"{where}: unsupported loop condition")
        rel = rels[0]
        op = self._text(self._child(rel, "operator"))
        left = self._text(self._child(rel, "left"))
        right = self._text(self._child(rel, "right"))
        if left != var or op not in ("<", "<=", ">", ">="):
            raise FrontendError(
                f"{where}: loop condition must compare {var!r} to a bound"
            )
        return right, op in ("<=", ">=")

    def _parse_update(self, update: Any, var: str, where: str) -> int:
        text = self._text(update).replace(" ", "")
        if text in (f"{var}++", f"++{var}"):
            return 1
        if text in (f"{var}--", f"--{var}"):
            return -1
        if text.startswith(f"{var}+="):
            return int(text[len(var) + 2 :])
        if text.startswith(f"{var}-="):
            return -int(text[len(var) + 2 :])
        raise FrontendError(
            f"{where}: loop update must be {var}++/--/+= c/-= c "
            f"(got {text!r})"
        )

    # -- statements and expressions ------------------------------------

    def _statement(self, node: Any, where: str, var: str) -> Assign:
        if node.type != "assignment_expression":
            raise FrontendError(
                f"{where}: loop body statements must be assignments "
                f"(got {node.type!r})"
            )
        op = self._text(self._child(node, "operator"))
        target = self._target(self._child(node, "left"), where, var)
        expr = self._expr(self._child(node, "right"), where, var)
        if op != "=":
            if op not in ("+=", "-=", "*=", "/="):
                raise FrontendError(
                    f"{where}: unsupported assignment operator {op!r}"
                )
            read: Expr
            if isinstance(target, Name):
                read = Name(target.name)
            else:
                read = Subscript(target.array, target.coeff, target.offset)
            expr = BinOp(op=op[0], left=read, right=expr)
        return Assign(target=target, expr=expr)

    def _target(self, node: Any, where: str, var: str) -> Name | Subscript:
        if node.type == "identifier":
            return Name(self._text(node))
        if node.type == "subscript_expression":
            return self._subscript(node, where, var)
        raise FrontendError(
            f"{where}: assignment target must be a scalar or subscript "
            f"(got {node.type!r})"
        )

    def _expr(self, node: Any, where: str, var: str) -> Expr:
        if node.type == "parenthesized_expression":
            inner = [
                c for c in node.children if c.type not in ("(", ")")
            ]
            return self._expr(inner[0], where, var)
        if node.type == "identifier":
            return Name(self._text(node))
        if node.type == "number_literal":
            return Num(float(self._text(node)))
        if node.type == "subscript_expression":
            return self._subscript(node, where, var)
        if node.type == "unary_expression":
            operand = self._expr(self._child(node, "argument"), where, var)
            if isinstance(operand, Num):
                return Num(-operand.value)
            return BinOp(op="-", left=Num(0.0), right=operand)
        if node.type == "binary_expression":
            op = self._text(self._child(node, "operator"))
            if op not in ("+", "-", "*", "/"):
                raise FrontendError(
                    f"{where}: unsupported operator {op!r} in loop body"
                )
            return BinOp(
                op=op,
                left=self._expr(self._child(node, "left"), where, var),
                right=self._expr(self._child(node, "right"), where, var),
            )
        if node.type == "call_expression":
            fname = self._text(self._child(node, "function"))
            args = [
                c
                for c in self._child(node, "arguments").children
                if c.type not in ("(", ")", ",")
            ]
            if fname not in ("sqrt", "sqrtf") or len(args) != 1:
                raise FrontendError(
                    f"{where}: only sqrt(x) calls are supported "
                    f"(got {fname!r})"
                )
            return Call(func="sqrt", arg=self._expr(args[0], where, var))
        raise FrontendError(
            f"{where}: unsupported expression {node.type!r}"
        )

    def _subscript(self, node: Any, where: str, var: str) -> Subscript:
        array_node = self._child(node, "argument")
        index_node = self._child(node, "index")
        if array_node.type != "identifier":
            raise FrontendError(
                f"{where}: subscripted value must be a plain array name"
            )
        coeff, offset = self._linear(index_node, where, var)
        return Subscript(
            array=self._text(array_node), coeff=coeff, offset=offset
        )

    def _linear(self, node: Any, where: str, var: str) -> tuple[int, int]:
        if node.type == "parenthesized_expression":
            inner = [c for c in node.children if c.type not in ("(", ")")]
            return self._linear(inner[0], where, var)
        if node.type == "identifier":
            if self._text(node) != var:
                raise FrontendError(
                    f"{where}: subscript uses {self._text(node)!r}, not "
                    f"the induction variable {var!r}"
                )
            return (1, 0)
        if node.type == "number_literal":
            return (0, int(self._text(node)))
        if node.type == "unary_expression":
            coeff, offset = self._linear(
                self._child(node, "argument"), where, var
            )
            return (-coeff, -offset)
        if node.type == "binary_expression":
            op = self._text(self._child(node, "operator"))
            lc, lo = self._linear(self._child(node, "left"), where, var)
            rc, ro = self._linear(self._child(node, "right"), where, var)
            if op == "+":
                return (lc + rc, lo + ro)
            if op == "-":
                return (lc - rc, lo - ro)
            if op == "*":
                if lc != 0 and rc != 0:
                    raise FrontendError(
                        f"{where}: non-affine subscript (index product)"
                    )
                if lc == 0:
                    return (lo * rc, lo * ro)
                return (ro * lc, ro * lo)
        raise FrontendError(
            f"{where}: subscript must be affine in the loop variable"
        )
