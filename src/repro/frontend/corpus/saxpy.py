"""saxpy: the BLAS level-1 scaled vector addition."""


def saxpy(x: list[float], y: list[float], a: float, n: int) -> None:
    for i in range(n):
        y[i] = a * x[i] + y[i]
