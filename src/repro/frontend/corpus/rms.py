"""rms: windowed root-mean-square envelope — sqrt (30-cycle
unpipelined) on the hot path plus a scalar reduction."""


def rms(x: list[float], env: list[float], s: float, n: int) -> None:
    for i in range(n):
        s = s + x[i] * x[i]
        env[i] = sqrt(s)


def sqrt(v: float) -> float:
    return v**0.5
