"""matvec_row4: matrix-vector product rows with a stride-4 access
stream over the packed matrix and four invariant vector elements."""


def matvec_row4(
    m: list[float],
    x0: float,
    x1: float,
    x2: float,
    x3: float,
    y: list[float],
    n: int,
) -> None:
    for i in range(n):
        y[i] = (
            m[4 * i] * x0
            + m[4 * i + 1] * x1
            + m[4 * i + 2] * x2
            + m[4 * i + 3] * x3
        )
