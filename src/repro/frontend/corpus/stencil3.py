"""stencil3: a 1D 3-point weighted stencil (separate output array)."""


def stencil3(a: list[float], out: list[float], w: float, n: int) -> None:
    for i in range(n):
        out[i] = w * (a[i] + a[i + 1] + a[i + 2])
