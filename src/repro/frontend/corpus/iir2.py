"""iir2: a direct-form biquad recursion over two delayed states.

The copy chain ``s2 = s1; s1 = v`` gives the frontend a distance-1
*and* a distance-2 loop-carried arc out of one producer.
"""


def iir2(
    x: list[float],
    y: list[float],
    b0: float,
    a1: float,
    a2: float,
    s1: float,
    s2: float,
    n: int,
) -> None:
    for i in range(n):
        v = b0 * x[i] + a1 * s1 + a2 * s2
        s2 = s1
        s1 = v
        y[i] = v
