"""cmul: elementwise complex multiply — two statements sharing four
loads (exercises common-subexpression merging across statements)."""


def cmul(
    ar: list[float],
    ai: list[float],
    br: list[float],
    bi: list[float],
    cr: list[float],
    ci: list[float],
    n: int,
) -> None:
    for i in range(n):
        cr[i] = ar[i] * br[i] - ai[i] * bi[i]
        ci[i] = ar[i] * bi[i] + ai[i] * br[i]
