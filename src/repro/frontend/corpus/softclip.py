"""softclip: rational soft clipper — a division (17-cycle unpipelined)
fed by a squared term (one load consumed twice by one multiply)."""


def softclip(x: list[float], y: list[float], k: float, n: int) -> None:
    for i in range(n):
        y[i] = x[i] / (k + x[i] * x[i])
