"""dot: inner product with a loop-carried scalar reduction."""


def dot(x: list[float], y: list[float], s: float, n: int) -> float:
    for i in range(n):
        s = s + x[i] * y[i]
    return s
