"""fir4: a 4-tap finite impulse response filter."""


def fir4(
    x: list[float],
    y: list[float],
    c0: float,
    c1: float,
    c2: float,
    c3: float,
    n: int,
) -> None:
    for i in range(n):
        y[i] = c0 * x[i] + c1 * x[i + 1] + c2 * x[i + 2] + c3 * x[i + 3]
