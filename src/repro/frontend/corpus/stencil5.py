"""stencil5: one row of a 2D 5-point stencil (top/mid/bot rows).

Starts at i = 1, so lowering must normalize a non-zero loop start into
the MemRef offsets.
"""


def stencil5(
    top: list[float],
    mid: list[float],
    bot: list[float],
    out: list[float],
    c: float,
    n: int,
) -> None:
    for i in range(1, n):
        out[i] = c * (top[i] + bot[i] + mid[i - 1] + mid[i + 1])
