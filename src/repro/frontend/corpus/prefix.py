"""prefix: in-place prefix sum — a loop-carried recurrence *through
memory* (the store to a[i] feeds the next iteration's load of a[i-1])."""


def prefix(a: list[float], n: int) -> None:
    for i in range(1, n):
        a[i] = a[i] + a[i - 1]
