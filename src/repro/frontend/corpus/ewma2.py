"""ewma2: exponential moving average over the state of two iterations
ago.

The only recurrence is the distance-**2** arc the copy chain
``s2 = s1; s1 = t`` induces, so RecMII is ceil(cycle latency / 2) —
half of what a defaulted distance-1 arc would give.  The test suite
asserts exactly that (the "distances are analyzed, not defaulted"
acceptance criterion).
"""


def ewma2(
    x: list[float],
    out: list[float],
    b: float,
    s1: float,
    s2: float,
    n: int,
) -> None:
    for i in range(n):
        t = s2 * b + x[i]
        out[i] = t
        s2 = s1
        s1 = t
