"""The curated kernel corpus of real loop bodies.

Each module in this directory is an ordinary, runnable, annotated
Python file whose kernel function the frontend parses *as source text*
(the loader never imports them).  The names below are the canonical
corpus sweep order used by the tests, the CI smoke leg,
``repro frontend run`` and the nightly benchmark.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import FrontendError
from repro.frontend.lower import LoweredKernel, lower_kernel
from repro.frontend.parser import DEFAULT_TRIP_COUNT, parse_source

#: Canonical corpus order: one kernel per module of this package.
CORPUS_KERNELS = (
    "saxpy",
    "dot",
    "fir4",
    "iir2",
    "stencil3",
    "stencil5",
    "prefix",
    "matvec_row4",
    "cmul",
    "softclip",
    "ewma2",
    "rms",
)


def corpus_dir() -> Path:
    """Directory holding the corpus sources."""
    return Path(__file__).parent


def corpus_path(name: str) -> Path:
    """Source path of one corpus kernel."""
    if name not in CORPUS_KERNELS:
        raise FrontendError(
            f"no corpus kernel {name!r} (have: {list(CORPUS_KERNELS)})"
        )
    return corpus_dir() / f"{name}.py"


def load_kernel(
    name: str, *, default_trip_count: int = DEFAULT_TRIP_COUNT
) -> LoweredKernel:
    """Parse, analyze and lower one corpus kernel."""
    kernels = parse_source(
        corpus_path(name), kernel=name, default_trip_count=default_trip_count
    )
    return lower_kernel(kernels[0])


def load_corpus(
    *, default_trip_count: int = DEFAULT_TRIP_COUNT
) -> list[LoweredKernel]:
    """Every corpus kernel, lowered, in canonical order."""
    return [
        load_kernel(name, default_trip_count=default_trip_count)
        for name in CORPUS_KERNELS
    ]
