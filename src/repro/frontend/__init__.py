"""repro.frontend — real source loops in, dependence graphs out.

The frontend closes the gap between source programs and the scheduler:

* :mod:`repro.frontend.parser` — pluggable :class:`LoopParser`
  protocol; a zero-dependency Python :mod:`ast` parser ships and an
  optional tree-sitter C parser registers when its dependency exists;
* :mod:`repro.frontend.analyze` — name classification plus an exact
  single-subscript memory dependence test;
* :mod:`repro.frontend.lower` — versioned-environment lowering to a
  scheduler-ready :class:`~repro.graph.ddg.DependenceGraph` with real
  loop-carried distances (copy chains included), live-ins, invariants
  and per-access :class:`~repro.graph.ddg.MemRef` streams;
* :mod:`repro.frontend.reference` / ``differential`` — direct source
  execution under the GF(2^61-1) simulation semantics and the
  three-link source→graph→emitted-code differential;
* :mod:`repro.frontend.corpus` — curated real kernels swept by tests,
  CI and the nightly benchmark.

Entry points: :func:`lower_source` here, ``repro schedule --source``
and ``repro frontend show|run`` on the command line, and
:func:`repro.eval.experiments.frontend_rows` for table-style sweeps.
"""

from __future__ import annotations

from pathlib import Path

from repro.frontend.analyze import (
    MemDep,
    NameRoles,
    classify_names,
    memory_dependences,
)
from repro.frontend.differential import (
    SourceDifferentialReport,
    live_in_hazards,
    run_source_differential,
)
from repro.frontend.ir import (
    Assign,
    BinOp,
    Call,
    Expr,
    Kernel,
    LoopInfo,
    Name,
    Num,
    Subscript,
)
from repro.frontend.lower import LoweredKernel, ScalarBinding, lower_kernel
from repro.frontend.parser import (
    DEFAULT_TRIP_COUNT,
    LoopParser,
    PythonAstParser,
    available_parsers,
    get_parser,
    parse_source,
    parser_for,
    register_parser,
)
from repro.frontend.reference import SourceInterpreter, run_source

__all__ = [
    "DEFAULT_TRIP_COUNT",
    "Assign",
    "BinOp",
    "Call",
    "Expr",
    "Kernel",
    "LoopInfo",
    "LoopParser",
    "LoweredKernel",
    "MemDep",
    "Name",
    "NameRoles",
    "Num",
    "PythonAstParser",
    "ScalarBinding",
    "SourceDifferentialReport",
    "SourceInterpreter",
    "Subscript",
    "available_parsers",
    "classify_names",
    "get_parser",
    "live_in_hazards",
    "lower_kernel",
    "lower_source",
    "memory_dependences",
    "parse_source",
    "parser_for",
    "register_parser",
    "run_source",
    "run_source_differential",
]


def lower_source(
    path: str | Path,
    *,
    kernel: str | None = None,
    default_trip_count: int = DEFAULT_TRIP_COUNT,
) -> list[LoweredKernel]:
    """Parse a source file and lower every (or one named) kernel."""
    return [
        lower_kernel(parsed)
        for parsed in parse_source(
            path, kernel=kernel, default_trip_count=default_trip_count
        )
    ]
