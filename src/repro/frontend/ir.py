"""The frontend's small loop IR.

Parsers (:mod:`repro.frontend.parser`) normalize an innermost countable
source loop into this representation; the dependence analyzer
(:mod:`repro.frontend.analyze`) and the lowering pass
(:mod:`repro.frontend.lower`) consume it.  The fragment is deliberately
small — exactly what the machine model can express:

* one induction variable counting ``range(start, stop, step)`` with a
  literal (or defaulted) trip count;
* a straight-line body of assignments ``scalar = expr`` or
  ``array[affine] = expr``;
* expressions over scalars, affine array reads ``a[c1*i + c0]``,
  numeric literals, the four arithmetic operators and ``sqrt``.

Expression nodes are mutable on purpose: the lowering pass annotates
each value-producing node with the id of the dependence-graph node (or
loop invariant) it became, and the source interpreter
(:mod:`repro.frontend.reference`) replays the annotated IR to produce
per-instance values keyed exactly like the scheduler's world.
"""

from __future__ import annotations

import dataclasses

#: Operators of :class:`BinOp`; ``+``/``-`` both lower to the machine's
#: addition/subtraction class operation.
BINARY_OPERATORS = ("+", "-", "*", "/")

#: Call targets of :class:`Call`.
CALL_FUNCTIONS = ("sqrt",)


@dataclasses.dataclass
class Name:
    """A scalar read (loop-carried scalar, local temporary or parameter).

    ``invariant_id`` is set by lowering when the scalar is loop-invariant
    (never assigned inside the loop); loop scalars resolve to graph
    nodes through the lowering's version map instead.
    """

    name: str
    invariant_id: int | None = None


@dataclasses.dataclass
class Num:
    """A numeric literal; lowered to a loop invariant (one per distinct
    value) because the value semantics of :mod:`repro.sim.ops` has no
    notion of immediates."""

    value: float
    invariant_id: int | None = None


@dataclasses.dataclass
class Subscript:
    """An affine array reference ``array[coeff * var + offset]``.

    As an expression operand it is an array *read* (lowered to a load);
    as an assignment target it is an array *write* (lowered to a store).
    ``node_id`` is the lowered load/store node.
    """

    array: str
    coeff: int
    offset: int
    node_id: int | None = None


@dataclasses.dataclass
class BinOp:
    """A binary arithmetic operation (see :data:`BINARY_OPERATORS`)."""

    op: str
    left: "Expr"
    right: "Expr"
    node_id: int | None = None


@dataclasses.dataclass
class Call:
    """A unary intrinsic call (see :data:`CALL_FUNCTIONS`)."""

    func: str
    arg: "Expr"
    node_id: int | None = None


Expr = Name | Num | Subscript | BinOp | Call


@dataclasses.dataclass
class Assign:
    """One body statement: ``target = expr``."""

    target: Name | Subscript
    expr: Expr


@dataclasses.dataclass
class LoopInfo:
    """The normalized counting loop.

    ``trip_count`` is exact when the range bound was a literal;
    otherwise it is the parser's ``default_trip_count`` and
    ``symbolic_bound`` names the runtime bound (``n`` in
    ``range(n)``) the count stands in for.
    """

    var: str
    start: int
    step: int
    trip_count: int
    symbolic_bound: str | None = None

    def induction_value(self, iteration: int) -> int:
        """Source value of the induction variable at one iteration."""
        return self.start + self.step * iteration


@dataclasses.dataclass
class Kernel:
    """One parsed innermost loop nest, ready for analysis and lowering."""

    name: str
    params: tuple[str, ...]
    loop: LoopInfo
    body: list[Assign]
    #: Where the kernel came from (path or "<string>"), for messages.
    source: str = "<string>"

    def statements(self) -> list[Assign]:
        return list(self.body)
