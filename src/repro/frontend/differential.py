"""Source-to-silicon differential validation of frontend kernels.

For one scheduled corpus kernel, three independent executions must
agree bit for bit:

1. **Source vs lowered graph** — :class:`~repro.frontend.reference.SourceInterpreter`
   (the annotated IR, executed as the source program) against
   :class:`~repro.sim.reference.ReferenceInterpreter` on the *pristine*
   lowered graph.  A mismatch here is a frontend bug: a wrong
   dependence distance, a misdirected memory arc, a bad MemRef.
2. **Emitted code vs final graph** — the existing
   :func:`repro.sim.differential.run_differential` (scheduler, spill,
   moves, allocation, emission).
3. **Emitted code vs source** — the end-to-end statement: the VLIW
   pipeline's values, restricted to the source's operations and the
   source's arrays, against direct source execution under the emitted
   code's live-in register moduli.

Link 3 has one structural caveat: the simulator materializes live-in
registers as functions of the *final-graph* value that owns the
register, so when a loop-carried value's pre-loop instance is delivered
through an inserted move or re-loaded from a spill slot (a move with a
loop-carried out-arc, a spill load with a carried store→load arc), the
emitted code's early-iteration inputs are salted with the move/spill
node's identity, which no source-level execution can reproduce.
:func:`live_in_hazards` detects exactly those schedules; the
differential then reports the hazard and skips link 3 rather than
raising a false mismatch.  The corpus tests assert the reference
machines produce hazard-free schedules for every kernel, so the full
three-link proof actually runs.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import ScheduleResult
from repro.errors import FrontendError
from repro.exec.cache import ResultCache
from repro.frontend.lower import LoweredKernel
from repro.frontend.reference import SourceInterpreter
from repro.graph.ddg import DepKind, DependenceGraph
from repro.machine.resources import OpKind
from repro.sim.differential import MAX_REPORTED, run_differential
from repro.sim.reference import (
    ReferenceInterpreter,
    ReferenceRun,
    live_in_moduli_of_code,
    spill_load_distance,
)
from repro.sim.vliw import VliwSimulator


@dataclasses.dataclass(frozen=True)
class SourceDifferentialReport:
    """Outcome of one three-link source differential."""

    kernel: str
    machine: str
    iterations: int
    #: Link 1: source interpretation vs lowered-graph reference.
    analysis_match: bool
    #: Link 2: emitted code vs final-graph reference.
    emitted_match: bool
    #: Link 3: emitted code vs source; None when skipped on a hazard.
    source_match: bool | None
    #: Live-in renaming hazards of the final schedule (see module doc).
    hazards: tuple[str, ...]
    mismatches: tuple[str, ...]

    @property
    def match(self) -> bool:
        return (
            self.analysis_match
            and self.emitted_match
            and self.source_match is not False
        )

    def summary(self) -> str:
        def verdict(state: bool | None) -> str:
            if state is None:
                return "skipped"
            return "MATCH" if state else "MISMATCH"

        head = (
            f"{self.kernel} on {self.machine} over {self.iterations} "
            f"iterations: analysis={verdict(self.analysis_match)} "
            f"emitted={verdict(self.emitted_match)} "
            f"source={verdict(self.source_match)}"
        )
        lines = [head]
        lines.extend(f"  hazard: {hazard}" for hazard in self.hazards)
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


def live_in_hazards(graph: DependenceGraph) -> tuple[str, ...]:
    """Live-in renaming hazards of a final schedule graph."""
    hazards: list[str] = []
    for node in graph.nodes():
        if node.is_move:
            carried = [
                edge
                for edge in graph.out_edges(node.id)
                if edge.kind is DepKind.REG and edge.distance > 0
            ]
            if carried:
                hazards.append(
                    f"move {node.name} carries its value across "
                    f"{max(e.distance for e in carried)} iteration(s)"
                )
        elif (
            node.kind is OpKind.LOAD
            and node.is_spill
            and node.load_of_invariant is None
            and spill_load_distance(graph, node.id) > 0
        ):
            hazards.append(
                f"spill load {node.name} re-materializes a value from "
                f"{spill_load_distance(graph, node.id)} iteration(s) back"
            )
    return tuple(hazards)


def _compare_runs(
    label: str,
    actual: dict[tuple[int, int], int],
    expected: dict[tuple[int, int], int],
    actual_memory: dict[int, int],
    expected_memory: dict[int, int],
    names: dict[int, str],
    mismatches: list[str],
) -> bool:
    """Append mismatch descriptions; True when both states agree."""
    found = 0
    truncated = 0
    for instance in sorted(set(actual) | set(expected)):
        got = actual.get(instance)
        want = expected.get(instance)
        if got == want:
            continue
        if found < MAX_REPORTED:
            node_id, iteration = instance
            mismatches.append(
                f"[{label}] value of {names.get(node_id, node_id)} @ "
                f"iteration {iteration}: {got} != {want}"
            )
        else:
            truncated += 1
        found += 1
    for address in sorted(set(actual_memory) | set(expected_memory)):
        got = actual_memory.get(address)
        want = expected_memory.get(address)
        if got == want:
            continue
        if found < MAX_REPORTED * 2:
            mismatches.append(
                f"[{label}] memory[{address:#x}]: {got} != {want}"
            )
        else:
            truncated += 1
        found += 1
    if truncated:
        mismatches.append(
            f"[{label}] ... and {truncated} further mismatches"
        )
    return found == 0


def run_source_differential(
    lowered: LoweredKernel,
    schedule: ScheduleResult,
    iterations: int,
    *,
    cache: ResultCache | bool | None = None,
) -> SourceDifferentialReport:
    """Run all three differential links for one scheduled kernel.

    Args:
        lowered: the kernel as lowered by the frontend (its ``graph``
            must be the pristine graph the schedule was produced from).
        schedule: a converged schedule of that graph.
        iterations: requested trip count; the emitted pipeline may
            round it up to whole kernel passes, and every comparison
            uses the effective count.
        cache: memoization selector for the (deterministic) link-2
            differential, as accepted by
            :func:`repro.exec.cache.resolve_cache`.
    """
    if schedule.graph is None:
        raise FrontendError(
            f"{lowered.name}: schedule carries no final graph to validate"
        )
    names = {node.id: node.name for node in lowered.graph.nodes()}
    mismatches: list[str] = []

    # Link 1: source semantics vs the lowered graph, exact live-ins.
    source = SourceInterpreter(lowered).run(iterations)
    reference = ReferenceInterpreter(lowered.graph).run(iterations)
    analysis_match = _compare_runs(
        "analysis",
        source.values,
        reference.values,
        source.memory,
        reference.memory,
        names,
        mismatches,
    )

    # Link 2: emitted code vs the final graph (existing machinery).
    emitted = run_differential(schedule, iterations, cache=cache)
    if not emitted.match:
        mismatches.extend(f"[emitted] {m}" for m in emitted.mismatches)

    # Link 3: emitted code vs the source, unless live-ins were renamed.
    hazards = live_in_hazards(schedule.graph)
    source_match: bool | None = None
    if not hazards:
        simulator = VliwSimulator(schedule)
        run = simulator.run(iterations)
        effective = run.result.iterations
        moduli = live_in_moduli_of_code(simulator.code)
        source_run = SourceInterpreter(
            lowered, live_in_moduli=moduli
        ).run(effective)
        pristine = set(lowered.graph.node_ids())
        arrays = set(lowered.arrays.values())
        sim_values = {
            key: value
            for key, value in run.values.items()
            if key[0] in pristine
        }
        sim_memory = {
            address: value
            for address, value in run.memory.items()
            if (address >> 24) in arrays
        }
        source_match = _compare_runs(
            "source",
            sim_values,
            source_run.values,
            sim_memory,
            source_run.memory,
            names,
            mismatches,
        )

    return SourceDifferentialReport(
        kernel=lowered.name,
        machine=schedule.machine.name,
        iterations=emitted.iterations,
        analysis_match=analysis_match,
        emitted_match=emitted.match,
        source_match=source_match,
        hazards=hazards,
        mismatches=tuple(mismatches),
    )


def source_reference_run(
    lowered: LoweredKernel, iterations: int
) -> ReferenceRun:
    """Convenience: direct source execution with exact live-ins."""
    return SourceInterpreter(lowered).run(iterations)
