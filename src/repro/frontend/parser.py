"""Loop parsers: source text → :class:`repro.frontend.ir.Kernel`.

The frontend accepts any parser implementing the :class:`LoopParser`
protocol; implementations register under a language name and a set of
file suffixes.  Two ship with the repository:

* :class:`PythonAstParser` — zero-dependency, built on :mod:`ast`,
  always available; the corpus under ``frontend/corpus/`` is written
  for it.
* ``repro.frontend.cparse.CParser`` — an optional tree-sitter C parser
  registered only when the ``tree_sitter`` package (plus a C grammar)
  is importable; selecting a ``.c`` file without it raises
  :class:`~repro.errors.FrontendError` with an install hint.

A parser extracts every function that wraps exactly one countable
innermost loop over ``range(start, stop, step)`` whose body is
straight-line assignments in the frontend fragment (see
:mod:`repro.frontend.ir`).  Statements outside the loop (accumulator
initialization, ``return``) are ignored: the frontend models the
steady-state loop, and live-in/live-out values get the simulation's
synthetic identities (:mod:`repro.sim.ops`).
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import FrontendError
from repro.frontend.ir import (
    Assign,
    BinOp,
    Call,
    Expr,
    Kernel,
    LoopInfo,
    Name,
    Num,
    Subscript,
)

#: Trip count substituted for a symbolic range bound (``range(n)``).
#: Large enough to be paper-realistic, small enough to simulate fully.
DEFAULT_TRIP_COUNT = 120


@runtime_checkable
class LoopParser(Protocol):
    """What the frontend needs from a language parser."""

    #: Registry name (``"python"``, ``"c"``).
    name: str
    #: File suffixes this parser claims (``(".py",)``).
    suffixes: tuple[str, ...]

    def parse(
        self,
        text: str,
        *,
        source: str = "<string>",
        default_trip_count: int = DEFAULT_TRIP_COUNT,
    ) -> list[Kernel]:
        """Extract every kernel from one source file's text."""
        ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_PARSERS: dict[str, LoopParser] = {}
#: Deferred registrations: language name -> thunk that builds the parser
#: (or raises FrontendError when its dependency is missing).
_LAZY: dict[str, Callable[[], LoopParser]] = {}
_LAZY_SUFFIXES: dict[str, str] = {}


def register_parser(parser: LoopParser) -> None:
    """Register a parser instance under its :attr:`LoopParser.name`."""
    _PARSERS[parser.name] = parser


def register_lazy_parser(
    name: str, suffixes: tuple[str, ...], factory: Callable[[], LoopParser]
) -> None:
    """Register a parser whose construction may fail on a missing
    optional dependency; the factory runs (once) on first use."""
    _LAZY[name] = factory
    for suffix in suffixes:
        _LAZY_SUFFIXES[suffix] = name


def available_parsers() -> dict[str, bool]:
    """Language name → whether the parser is usable right now."""
    status = {name: True for name in _PARSERS}
    for name, factory in _LAZY.items():
        if name in status:
            continue
        try:
            factory()
        except FrontendError:
            status[name] = False
        else:
            status[name] = True
    return status


def get_parser(name: str) -> LoopParser:
    """Look a parser up by language name."""
    if name in _PARSERS:
        return _PARSERS[name]
    if name in _LAZY:
        parser = _LAZY[name]()
        _PARSERS[name] = parser
        return parser
    known = sorted(set(_PARSERS) | set(_LAZY))
    raise FrontendError(
        f"no parser registered for language {name!r} (available: {known})"
    )


def parser_for(path: str | Path) -> LoopParser:
    """Pick the parser claiming the file's suffix."""
    suffix = Path(path).suffix
    for parser in _PARSERS.values():
        if suffix in parser.suffixes:
            return parser
    if suffix in _LAZY_SUFFIXES:
        return get_parser(_LAZY_SUFFIXES[suffix])
    raise FrontendError(
        f"no parser claims {suffix!r} files (from {path}); "
        f"known languages: {sorted(set(_PARSERS) | set(_LAZY))}"
    )


def parse_source(
    path: str | Path,
    *,
    kernel: str | None = None,
    default_trip_count: int = DEFAULT_TRIP_COUNT,
) -> list[Kernel]:
    """Parse a source file into kernels.

    Args:
        path: source file; the suffix selects the parser.
        kernel: when given, return only the kernel with this name
            (raise :class:`~repro.errors.FrontendError` if absent).
        default_trip_count: trip count substituted for symbolic bounds.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FrontendError(f"cannot read {path}: {exc}") from exc
    parser = parser_for(path)
    kernels = parser.parse(
        text, source=str(path), default_trip_count=default_trip_count
    )
    if not kernels:
        raise FrontendError(
            f"{path}: no supported loop kernels found (need a function "
            "containing a 'for ... in range(...)' loop of straight-line "
            "assignments)"
        )
    if kernel is not None:
        matches = [k for k in kernels if k.name == kernel]
        if not matches:
            names = [k.name for k in kernels]
            raise FrontendError(
                f"{path}: no kernel named {kernel!r} (found: {names})"
            )
        return matches
    return kernels


# ----------------------------------------------------------------------
# Python ast parser
# ----------------------------------------------------------------------


class PythonAstParser:
    """The always-available parser, built on the stdlib :mod:`ast`.

    Supported fragment per function: any number of statements around a
    single ``for var in range(...)`` loop (nested loops recurse to the
    innermost); the innermost body must be assignments (``=`` or
    augmented ``+=`` etc.) whose targets are scalar names or affine
    array subscripts and whose expressions use names, numeric literals,
    affine subscript reads, ``+ - * /`` and ``sqrt``.
    """

    name = "python"
    suffixes = (".py",)

    def parse(
        self,
        text: str,
        *,
        source: str = "<string>",
        default_trip_count: int = DEFAULT_TRIP_COUNT,
    ) -> list[Kernel]:
        try:
            module = ast.parse(text, filename=source)
        except SyntaxError as exc:
            raise FrontendError(f"{source}: not valid Python: {exc}") from exc
        kernels: list[Kernel] = []
        for stmt in module.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            loop = self._find_loop(stmt, source)
            if loop is None:
                continue
            kernels.append(
                self._kernel_of(stmt, loop, source, default_trip_count)
            )
        return kernels

    # -- loop discovery -------------------------------------------------

    def _find_loop(
        self, func: ast.FunctionDef, source: str
    ) -> ast.For | None:
        """The function's innermost loop, or None if it has no loop."""
        loops = [s for s in func.body if isinstance(s, ast.For)]
        if not loops:
            return None
        if len(loops) > 1:
            raise FrontendError(
                f"{source}:{func.name}: more than one top-level loop; "
                "the frontend models a single innermost loop per kernel"
            )
        loop = loops[0]
        # Recurse to the innermost loop of a perfect-looking nest.
        while True:
            inner = [s for s in loop.body if isinstance(s, ast.For)]
            if not inner:
                return loop
            if len(inner) > 1:
                raise FrontendError(
                    f"{source}:{func.name}: sibling nested loops are "
                    "outside the supported fragment"
                )
            loop = inner[0]

    def _kernel_of(
        self,
        func: ast.FunctionDef,
        loop: ast.For,
        source: str,
        default_trip_count: int,
    ) -> Kernel:
        where = f"{source}:{func.name}"
        info = self._loop_info(loop, where, default_trip_count)
        body: list[Assign] = []
        for stmt in loop.body:
            body.append(self._statement(stmt, where, info.var))
        if not body:
            raise FrontendError(f"{where}: empty loop body")
        params = tuple(arg.arg for arg in func.args.args)
        return Kernel(
            name=func.name, params=params, loop=info, body=body, source=source
        )

    def _loop_info(
        self, loop: ast.For, where: str, default_trip_count: int
    ) -> LoopInfo:
        if not isinstance(loop.target, ast.Name):
            raise FrontendError(f"{where}: loop target must be a simple name")
        var = loop.target.id
        call = loop.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
            and not call.keywords
            and 1 <= len(call.args) <= 3
        ):
            raise FrontendError(
                f"{where}: only 'for {var} in range(...)' loops are "
                "countable; other iterables are outside the fragment"
            )
        args = call.args
        start_node = args[0] if len(args) >= 2 else None
        stop_node = args[1] if len(args) >= 2 else args[0]
        step_node = args[2] if len(args) == 3 else None

        start = 0 if start_node is None else self._int_literal(
            start_node, where, "range start"
        )
        step = 1 if step_node is None else self._int_literal(
            step_node, where, "range step"
        )
        if step == 0:
            raise FrontendError(f"{where}: range step must be non-zero")

        symbolic: str | None = None
        if isinstance(stop_node, ast.Name):
            symbolic = stop_node.id
            trip = default_trip_count
        else:
            stop = self._int_literal(stop_node, where, "range stop")
            trip = len(range(start, stop, step))
        if trip < 1:
            raise FrontendError(
                f"{where}: loop executes no iterations "
                f"(range start={start}, step={step})"
            )
        return LoopInfo(
            var=var,
            start=start,
            step=step,
            trip_count=trip,
            symbolic_bound=symbolic,
        )

    def _int_literal(self, node: ast.expr, where: str, what: str) -> int:
        value = self._const_int(node)
        if value is None:
            raise FrontendError(
                f"{where}: {what} must be an integer literal "
                f"(got {ast.dump(node)})"
            )
        return value

    def _const_int(self, node: ast.expr) -> int | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)
        ):
            return -node.operand.value
        return None

    # -- statements -----------------------------------------------------

    def _statement(self, stmt: ast.stmt, where: str, var: str) -> Assign:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise FrontendError(
                    f"{where}:{stmt.lineno}: chained assignment is outside "
                    "the supported fragment"
                )
            target = self._target(stmt.targets[0], where, var)
            return Assign(
                target=target, expr=self._expr(stmt.value, where, var)
            )
        if isinstance(stmt, ast.AugAssign):
            target = self._target(stmt.target, where, var)
            op = self._operator(stmt.op, where, stmt.lineno)
            read: Expr
            if isinstance(target, Name):
                read = Name(target.name)
            else:
                read = Subscript(target.array, target.coeff, target.offset)
            return Assign(
                target=target,
                expr=BinOp(
                    op=op, left=read, right=self._expr(stmt.value, where, var)
                ),
            )
        raise FrontendError(
            f"{where}:{stmt.lineno}: only straight-line assignments are "
            f"supported in the loop body (got {type(stmt).__name__})"
        )

    def _target(
        self, node: ast.expr, where: str, var: str
    ) -> Name | Subscript:
        if isinstance(node, ast.Name):
            return Name(node.id)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, where, var)
        raise FrontendError(
            f"{where}:{node.lineno}: assignment target must be a scalar "
            "name or an array subscript"
        )

    # -- expressions ----------------------------------------------------

    def _expr(self, node: ast.expr, where: str, var: str) -> Expr:
        if isinstance(node, ast.Name):
            return Name(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                raise FrontendError(
                    f"{where}:{node.lineno}: only numeric literals are "
                    f"supported (got {node.value!r})"
                )
            return Num(float(node.value))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            operand = self._expr(node.operand, where, var)
            if isinstance(operand, Num):
                return Num(-operand.value)
            return BinOp(op="-", left=Num(0.0), right=operand)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, where, var)
        if isinstance(node, ast.BinOp):
            op = self._operator(node.op, where, node.lineno)
            return BinOp(
                op=op,
                left=self._expr(node.left, where, var),
                right=self._expr(node.right, where, var),
            )
        if isinstance(node, ast.Call):
            func = node.func
            fname: str | None = None
            if isinstance(func, ast.Name):
                fname = func.id
            elif isinstance(func, ast.Attribute):
                fname = func.attr
            if fname != "sqrt" or len(node.args) != 1 or node.keywords:
                raise FrontendError(
                    f"{where}:{node.lineno}: only sqrt(x) calls are "
                    "supported in loop bodies"
                )
            return Call(func="sqrt", arg=self._expr(node.args[0], where, var))
        raise FrontendError(
            f"{where}:{node.lineno}: unsupported expression "
            f"{type(node).__name__}"
        )

    def _operator(self, op: ast.operator, where: str, lineno: int) -> str:
        if isinstance(op, ast.Add):
            return "+"
        if isinstance(op, ast.Sub):
            return "-"
        if isinstance(op, ast.Mult):
            return "*"
        if isinstance(op, ast.Div):
            return "/"
        raise FrontendError(
            f"{where}:{lineno}: operator {type(op).__name__} is outside "
            "the supported fragment (+ - * / and sqrt)"
        )

    # -- subscripts -----------------------------------------------------

    def _subscript(
        self, node: ast.Subscript, where: str, var: str
    ) -> Subscript:
        if not isinstance(node.value, ast.Name):
            raise FrontendError(
                f"{where}:{node.lineno}: subscripted value must be a "
                "plain array name"
            )
        array = node.value.id
        coeff, offset = self._linear(node.slice, where, var)
        return Subscript(array=array, coeff=coeff, offset=offset)

    def _linear(
        self, node: ast.expr, where: str, var: str
    ) -> tuple[int, int]:
        """Evaluate an index expression as ``(coeff, offset)`` over the
        induction variable: ``coeff * var + offset``."""
        lineno = getattr(node, "lineno", 0)
        if isinstance(node, ast.Name):
            if node.id != var:
                raise FrontendError(
                    f"{where}:{lineno}: subscript uses {node.id!r}, not "
                    f"the induction variable {var!r}; symbolic offsets "
                    "are outside the supported fragment"
                )
            return (1, 0)
        literal = self._const_int(node)
        if literal is not None:
            return (0, literal)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            coeff, offset = self._linear(node.operand, where, var)
            return (-coeff, -offset)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Add):
                lc, lo = self._linear(node.left, where, var)
                rc, ro = self._linear(node.right, where, var)
                return (lc + rc, lo + ro)
            if isinstance(node.op, ast.Sub):
                lc, lo = self._linear(node.left, where, var)
                rc, ro = self._linear(node.right, where, var)
                return (lc - rc, lo - ro)
            if isinstance(node.op, ast.Mult):
                lc, lo = self._linear(node.left, where, var)
                rc, ro = self._linear(node.right, where, var)
                if lc != 0 and rc != 0:
                    raise FrontendError(
                        f"{where}:{lineno}: non-affine subscript "
                        "(product of two index terms)"
                    )
                if lc == 0:
                    return (lo * rc, lo * ro)
                return (ro * lc, ro * lo)
        raise FrontendError(
            f"{where}:{lineno}: subscript must be affine in the loop "
            f"variable (got {ast.dump(node)})"
        )


register_parser(PythonAstParser())


def _c_parser_factory() -> LoopParser:
    from repro.frontend.cparse import make_c_parser

    return make_c_parser()


register_lazy_parser("c", (".c", ".h"), _c_parser_factory)
