"""Dependence analysis over the frontend IR.

Two analyses run between parsing and lowering:

* **Name classification** (:func:`classify_names`) sorts every name of
  a kernel into exactly one role — induction variable, array, loop
  scalar (assigned inside the body) or loop invariant (read but never
  assigned) — and rejects kernels where one name plays two roles.

* **Memory dependence analysis** (:func:`memory_dependences`) solves
  the single-subscript dependence equation for every pair of accesses
  to the same array.  With uniform strides the test is exact: accesses
  ``A`` (iteration ``j``) and ``B`` (iteration ``j + d``) touch the
  same word iff ``d = (offset_A - offset_B) / stride`` is a
  non-negative integer, giving loop-carried distances that feed RecMII
  directly (a prefix sum's ``a[i] = a[i] + a[i-1]`` yields the
  distance-1 flow arc that makes its recurrence real).  Accesses with
  differing strides on one array are outside the exact fragment and
  rejected with :class:`~repro.errors.FrontendError` rather than
  approximated.

Scalar (register) dependences — including loop-carried recurrences
through copy chains like ``s2 = s1; s1 = t`` — are handled by the
versioned-environment walk in :mod:`repro.frontend.lower`, which needs
graph nodes to attach them to.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from repro.errors import FrontendError
from repro.frontend.ir import (
    Assign,
    BinOp,
    Call,
    Expr,
    Kernel,
    Name,
    Num,
    Subscript,
)


@dataclasses.dataclass(frozen=True)
class NameRoles:
    """Every name of a kernel, classified (see module docstring)."""

    induction: str
    arrays: tuple[str, ...]
    loop_scalars: tuple[str, ...]
    invariants: tuple[str, ...]

    def role_of(self, name: str) -> str:
        if name == self.induction:
            return "induction"
        if name in self.arrays:
            return "array"
        if name in self.loop_scalars:
            return "scalar"
        if name in self.invariants:
            return "invariant"
        raise FrontendError(f"unknown name {name!r}")


@dataclasses.dataclass(frozen=True)
class MemDep:
    """One memory dependence between two subscript references.

    ``dst`` at iteration ``j + distance`` must execute after ``src`` at
    iteration ``j``.  The references are the IR objects themselves;
    after lowering their ``node_id`` fields name the graph nodes.
    """

    src: Subscript
    dst: Subscript
    distance: int
    #: "flow" (write -> read), "anti" (read -> write) or
    #: "output" (write -> write).
    kind: str

    def describe(self) -> str:
        return (
            f"{self.kind} {self.src.array}[{self.src.coeff}i"
            f"{self.src.offset:+d}] -> {self.dst.array}[{self.dst.coeff}i"
            f"{self.dst.offset:+d}] distance={self.distance}"
        )


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield every node of an expression tree, root first."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Call):
        yield from walk_expr(expr.arg)


def classify_names(kernel: Kernel) -> NameRoles:
    """Classify every name of the kernel (see module docstring)."""
    where = f"{kernel.source}:{kernel.name}"
    var = kernel.loop.var
    arrays: dict[str, None] = {}
    assigned: dict[str, None] = {}
    read: dict[str, None] = {}
    for stmt in kernel.body:
        for node in walk_expr(stmt.expr):
            if isinstance(node, Subscript):
                arrays.setdefault(node.array, None)
            elif isinstance(node, Name):
                read.setdefault(node.name, None)
        if isinstance(stmt.target, Subscript):
            arrays.setdefault(stmt.target.array, None)
        else:
            assigned.setdefault(stmt.target.name, None)

    if var in assigned:
        raise FrontendError(
            f"{where}: the induction variable {var!r} is assigned inside "
            "the loop body"
        )
    if var in read:
        raise FrontendError(
            f"{where}: the induction variable {var!r} is used as a value; "
            "the machine model has no iteration counter, only subscript "
            "uses are supported"
        )
    for name in arrays:
        if name in assigned or name in read:
            raise FrontendError(
                f"{where}: {name!r} is used both as an array and as a "
                "scalar"
            )
    if var in arrays:
        raise FrontendError(
            f"{where}: the induction variable {var!r} is subscripted"
        )
    symbolic = kernel.loop.symbolic_bound
    invariants = tuple(
        name for name in read if name not in assigned and name != symbolic
    )
    if symbolic is not None and (
        symbolic in assigned or symbolic in arrays or symbolic in read
    ):
        raise FrontendError(
            f"{where}: the loop bound {symbolic!r} is also used inside "
            "the loop body"
        )
    return NameRoles(
        induction=var,
        arrays=tuple(arrays),
        loop_scalars=tuple(assigned),
        invariants=invariants,
    )


@dataclasses.dataclass(frozen=True)
class _Access:
    stmt: int
    is_write: bool
    ref: Subscript


def _accesses(kernel: Kernel) -> list[_Access]:
    """Every array access in program order (reads of a statement before
    its write, mirroring evaluation order)."""
    out: list[_Access] = []
    for index, stmt in enumerate(kernel.body):
        for node in walk_expr(stmt.expr):
            if isinstance(node, Subscript):
                out.append(_Access(stmt=index, is_write=False, ref=node))
        if isinstance(stmt.target, Subscript):
            out.append(_Access(stmt=index, is_write=True, ref=stmt.target))
    return out


def memory_dependences(kernel: Kernel) -> list[MemDep]:
    """Exact memory dependences of the kernel (see module docstring).

    Distances are in *normalized* iterations (0, 1, 2, ... whatever the
    source loop's start/step), matching the iteration space the
    scheduler and simulator operate in.
    """
    where = f"{kernel.source}:{kernel.name}"
    step = kernel.loop.step
    accesses = _accesses(kernel)
    deps: list[MemDep] = []
    seen: set[tuple[int, int, int, str]] = set()
    for i, a in enumerate(accesses):
        for b in accesses[i + 1 :]:
            if a.ref.array != b.ref.array:
                continue
            if not a.is_write and not b.is_write:
                continue
            stride_a = a.ref.coeff * step
            stride_b = b.ref.coeff * step
            if stride_a != stride_b:
                raise FrontendError(
                    f"{where}: accesses to {a.ref.array!r} with different "
                    f"strides ({stride_a} vs {stride_b}); the exact "
                    "dependence test needs a uniform stride per array"
                )
            delta = a.ref.offset - b.ref.offset
            if delta % stride_a != 0:
                continue  # the two streams never touch the same word
            d = delta // stride_a
            if d > 0:
                src, dst, distance = a, b, d
            elif d < 0:
                src, dst, distance = b, a, -d
            else:
                # Same address, same iteration: program order decides
                # (a precedes b by construction of the access list).
                if a.ref.node_id is not None and a.ref.node_id == b.ref.node_id:
                    continue  # one CSE-merged load
                src, dst, distance = a, b, 0
            kind = (
                "output"
                if src.is_write and dst.is_write
                else "flow"
                if src.is_write
                else "anti"
            )
            key = (id(src.ref), id(dst.ref), distance, kind)
            if key in seen:
                continue
            seen.add(key)
            deps.append(
                MemDep(src=src.ref, dst=dst.ref, distance=distance, kind=kind)
            )
    return deps


def literal_values(kernel: Kernel) -> list[float]:
    """Distinct numeric literals of the body, in appearance order."""
    out: list[float] = []
    for stmt in kernel.body:
        for node in walk_expr(stmt.expr):
            if isinstance(node, Num) and node.value not in out:
                out.append(node.value)
    return out
