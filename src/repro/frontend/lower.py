"""Lowering: annotated frontend IR → scheduler-ready dependence graph.

The pass walks the loop body once with a *versioned scalar environment*
(classic SSA-style renaming restricted to straight-line code):

* every arithmetic expression node becomes a graph node of the matching
  :class:`~repro.machine.resources.OpKind` (``+``/``-`` → ADD-class,
  ``*`` → MUL, ``/`` → DIV, ``sqrt`` → SQRT);
* affine array reads become LOAD nodes carrying the exact
  :class:`~repro.graph.ddg.MemRef` address stream (common subexpression
  elimination merges identical reads until a store to the same array
  intervenes); array writes become STORE nodes;
* parameters and literals become loop :class:`Invariant` values;
* scalar copies (``s2 = s1``) create **no** node — the environment
  propagates the copied value reference instead.

Reads of a loop scalar before its assignment in the body are the loop's
recurrences.  They cannot be wired while walking (the producing node
may not exist yet), so the walk records *fixups* and resolves them at
the end against the final environment: a scalar whose end-of-body value
is node ``t`` shifted ``k`` iterations back reads as a REG edge from
``t`` with distance ``k + 1``.  Copy chains accumulate shift — in::

    t = s2*b + x[i]
    s2 = s1
    s1 = t

``s1`` resolves to ``(t, shift 0)`` and ``s2`` to ``(t, shift 1)``, so
the pre-assignment read of ``s2`` becomes a distance-**2** arc from
``t`` to itself — the arc that makes the kernel's RecMII
``ceil(latency / 2)`` instead of ``latency`` (asserted in the tests;
this is the "distances are analyzed, not defaulted" acceptance
criterion).

Memory dependences come from :func:`repro.frontend.analyze.memory_dependences`
and are attached as MEM edges with their analyzed distances.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FrontendError
from repro.frontend.analyze import (
    MemDep,
    NameRoles,
    classify_names,
    memory_dependences,
)
from repro.frontend.ir import (
    Assign,
    BinOp,
    Call,
    Expr,
    Kernel,
    Name,
    Num,
    Subscript,
)
from repro.graph.ddg import DependenceGraph, DepKind, MemRef
from repro.machine.resources import OpKind

_OP_KINDS = {
    "+": OpKind.ADD,
    "-": OpKind.ADD,  # the machine's ADD class covers subtraction
    "*": OpKind.MUL,
    "/": OpKind.DIV,
}


@dataclasses.dataclass(frozen=True)
class _NodeRef:
    """Value produced by a graph node ``shift`` iterations back."""

    node_id: int
    shift: int = 0


@dataclasses.dataclass(frozen=True)
class _InvRef:
    """A loop-invariant value."""

    invariant_id: int


@dataclasses.dataclass(frozen=True)
class _PendingRef:
    """The end-of-previous-iteration value of a loop scalar (read
    before its assignment; wired by the fixup pass)."""

    name: str


_ValueRef = _NodeRef | _InvRef | _PendingRef


@dataclasses.dataclass(frozen=True)
class ScalarBinding:
    """Where a loop scalar's end-of-body value lives in the graph.

    Either ``node_id``/``shift`` (the value is node ``node_id``'s
    instance of ``shift`` iterations before the current one) or
    ``invariant_id`` (the scalar is a pure copy of an invariant).
    """

    name: str
    node_id: int | None
    shift: int
    invariant_id: int | None = None


@dataclasses.dataclass
class LoweredKernel:
    """A kernel plus everything lowering learned about it.

    The ``graph`` attribute makes a :class:`LoweredKernel` directly
    acceptable to :meth:`repro.exec.engine.SuiteExecutor.run` and
    :func:`repro.eval.runner.schedule_suite` (both take "anything with
    a ``.graph``"), so frontend kernels ride the exec cache for free.
    """

    kernel: Kernel
    roles: NameRoles
    graph: DependenceGraph
    #: array name -> array id used in every MemRef of the graph.
    arrays: dict[str, int]
    #: loop scalar name -> final-value binding.
    scalars: dict[str, ScalarBinding]
    #: invariant name (parameters and ``lit_*`` literals) -> invariant id.
    invariants: dict[str, int]
    mem_deps: list[MemDep]

    @property
    def name(self) -> str:
        return self.graph.name


class _Lowerer:
    def __init__(self, kernel: Kernel, graph_name: str | None):
        self.kernel = kernel
        self.where = f"{kernel.source}:{kernel.name}"
        self.roles = classify_names(kernel)
        self.graph = DependenceGraph(
            name=graph_name or kernel.name,
            trip_count=kernel.loop.trip_count,
        )
        self.arrays = {
            name: index + 1 for index, name in enumerate(self.roles.arrays)
        }
        self.invariants: dict[str, int] = {}
        self._literal_invariants: dict[float, int] = {}
        self._current: dict[str, _ValueRef] = {}
        self._fixups: list[tuple[int, str]] = []
        self._load_cache: dict[tuple[str, int, int], int] = {}

    # -- invariants -----------------------------------------------------

    def _invariant_for_name(self, name: str) -> int:
        if name not in self.invariants:
            inv = self.graph.new_invariant()
            inv.name = name
            self.invariants[name] = inv.id
        return self.invariants[name]

    def _invariant_for_literal(self, value: float) -> int:
        if value not in self._literal_invariants:
            inv = self.graph.new_invariant()
            inv.name = f"lit_{value:g}"
            self._literal_invariants[value] = inv.id
            self.invariants[inv.name] = inv.id
        return self._literal_invariants[value]

    # -- operand wiring -------------------------------------------------

    def _attach(self, consumer: int, ref: _ValueRef) -> None:
        if isinstance(ref, _NodeRef):
            self.graph.add_edge(
                ref.node_id, consumer, kind=DepKind.REG, distance=ref.shift
            )
        elif isinstance(ref, _InvRef):
            self.graph.invariant(ref.invariant_id).consumers.add(consumer)
        else:
            self._fixups.append((consumer, ref.name))

    # -- expressions ----------------------------------------------------

    def _mem_ref(self, ref: Subscript) -> MemRef:
        loop = self.kernel.loop
        return MemRef(
            array=self.arrays[ref.array],
            offset=ref.coeff * loop.start + ref.offset,
            stride=ref.coeff * loop.step,
        )

    def _lower_expr(self, expr: Expr) -> _ValueRef:
        if isinstance(expr, Num):
            inv_id = self._invariant_for_literal(expr.value)
            expr.invariant_id = inv_id
            return _InvRef(inv_id)
        if isinstance(expr, Name):
            role = self.roles.role_of(expr.name)
            if role == "invariant":
                inv_id = self._invariant_for_name(expr.name)
                expr.invariant_id = inv_id
                return _InvRef(inv_id)
            if role != "scalar":
                raise FrontendError(
                    f"{self.where}: {expr.name!r} ({role}) cannot be read "
                    "as a scalar value"
                )
            ref = self._current.get(expr.name)
            if ref is None:
                return _PendingRef(expr.name)
            if isinstance(ref, _PendingRef):
                return _PendingRef(ref.name)
            return ref
        if isinstance(expr, Subscript):
            key = (expr.array, expr.coeff, expr.offset)
            node_id = self._load_cache.get(key)
            if node_id is None:
                node = self.graph.new_node(
                    OpKind.LOAD,
                    name=f"ld_{expr.array}{expr.offset:+d}"
                    if expr.offset
                    else f"ld_{expr.array}",
                    mem_ref=self._mem_ref(expr),
                )
                node_id = node.id
                self._load_cache[key] = node_id
            expr.node_id = node_id
            return _NodeRef(node_id)
        if isinstance(expr, BinOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            kind = _OP_KINDS[expr.op]
            node = self.graph.new_node(kind, name=f"{kind.value}_{expr.op}")
            self._attach(node.id, left)
            self._attach(node.id, right)
            expr.node_id = node.id
            return _NodeRef(node.id)
        if isinstance(expr, Call):
            arg = self._lower_expr(expr.arg)
            node = self.graph.new_node(OpKind.SQRT, name="sqrt")
            self._attach(node.id, arg)
            expr.node_id = node.id
            return _NodeRef(node.id)
        raise FrontendError(
            f"{self.where}: cannot lower {type(expr).__name__}"
        )

    # -- statements -----------------------------------------------------

    def _lower_statement(self, stmt: Assign) -> None:
        ref = self._lower_expr(stmt.expr)
        target = stmt.target
        if isinstance(target, Name):
            # Copies create no node; the environment carries the value.
            self._current[target.name] = ref
            return
        store = self.graph.new_node(
            OpKind.STORE,
            name=f"st_{target.array}",
            mem_ref=self._mem_ref(target),
        )
        self._attach(store.id, ref)
        target.node_id = store.id
        # A store may overwrite words earlier loads were merged on.
        self._load_cache = {
            key: node_id
            for key, node_id in self._load_cache.items()
            if key[0] != target.array
        }

    # -- final resolution -----------------------------------------------

    def _resolve_final(
        self, name: str, visiting: tuple[str, ...] = ()
    ) -> _NodeRef | _InvRef:
        """What a scalar holds at the end of the body (shift-adjusted)."""
        if name in visiting:
            cycle = " -> ".join(visiting + (name,))
            raise FrontendError(
                f"{self.where}: scalar copy cycle {cycle} never computes "
                "a value"
            )
        ref = self._current.get(name)
        if ref is None:
            raise FrontendError(
                f"{self.where}: scalar {name!r} is read but never assigned"
            )
        if isinstance(ref, _PendingRef):
            # The copy captured the *previous* iteration's final value.
            resolved = self._resolve_final(ref.name, visiting + (name,))
            if isinstance(resolved, _InvRef):
                return resolved
            return _NodeRef(resolved.node_id, resolved.shift + 1)
        return ref

    def run(self) -> LoweredKernel:
        for stmt in self.kernel.body:
            self._lower_statement(stmt)

        scalars: dict[str, ScalarBinding] = {}
        for name in self.roles.loop_scalars:
            resolved = self._resolve_final(name)
            if isinstance(resolved, _InvRef):
                scalars[name] = ScalarBinding(
                    name=name,
                    node_id=None,
                    shift=0,
                    invariant_id=resolved.invariant_id,
                )
            else:
                scalars[name] = ScalarBinding(
                    name=name, node_id=resolved.node_id, shift=resolved.shift
                )

        for consumer, name in self._fixups:
            binding = scalars[name]
            if binding.invariant_id is not None:
                self.graph.invariant(binding.invariant_id).consumers.add(
                    consumer
                )
            else:
                assert binding.node_id is not None
                self.graph.add_edge(
                    binding.node_id,
                    consumer,
                    kind=DepKind.REG,
                    distance=binding.shift + 1,
                )

        mem_deps = memory_dependences(self.kernel)
        wired: set[tuple[int, int, int]] = set()
        for dep in mem_deps:
            src_id, dst_id = dep.src.node_id, dep.dst.node_id
            if src_id is None or dst_id is None:
                raise FrontendError(
                    f"{self.where}: internal error - unlowered memory "
                    f"reference in dependence {dep.describe()}"
                )
            if src_id == dst_id:
                continue  # CSE-merged reads of one word
            key = (src_id, dst_id, dep.distance)
            if key in wired:
                continue
            wired.add(key)
            self.graph.add_edge(
                src_id, dst_id, kind=DepKind.MEM, distance=dep.distance
            )

        self.graph.validate()
        return LoweredKernel(
            kernel=self.kernel,
            roles=self.roles,
            graph=self.graph,
            arrays=self.arrays,
            scalars=scalars,
            invariants=self.invariants,
            mem_deps=mem_deps,
        )


def lower_kernel(kernel: Kernel, *, name: str | None = None) -> LoweredKernel:
    """Lower one parsed kernel to a scheduler-ready dependence graph."""
    return _Lowerer(kernel, name).run()
