"""Direct execution of *source* loops under the simulation semantics.

:class:`SourceInterpreter` runs the annotated IR of a lowered kernel
the way the source program would — statement by statement, iteration by
iteration, with a plain name→value environment and a byte-addressed
memory — but with every operation mapped into the exact GF(2^61−1)
semantics of :mod:`repro.sim.ops`.  That makes its end state directly
comparable, bit for bit, against

* the scalar reference interpretation of the lowered graph
  (:class:`repro.sim.reference.ReferenceInterpreter`), proving the
  frontend's dependence analysis and lowering faithful; and
* the cycle-accurate simulation of the emitted VLIW pipeline
  (:class:`repro.sim.vliw.VliwSimulator`), closing the loop from source
  text to scheduled, register-allocated, emitted code.

The only synthetic inputs are the ones the simulation already defines:
loop-invariant parameters take :func:`repro.sim.ops.invariant_value`,
untouched memory takes :func:`~repro.sim.ops.initial_memory`, and the
pre-loop values of loop-carried scalars take
:func:`~repro.sim.ops.initial_value` of the graph node that carries
them (a scalar whose end-of-body value is node ``t`` shifted ``k``
back starts the loop holding instance ``t @ -1-k``).  ``+``/``-`` both
map to the ADD class and operand order is erased, exactly as the
dependence graph does — the interpreter validates *dataflow*, not
floating-point arithmetic.
"""

from __future__ import annotations

from repro.errors import FrontendError
from repro.frontend.ir import (
    BinOp,
    Call,
    Expr,
    Name,
    Num,
    Subscript,
)
from repro.frontend.lower import LoweredKernel
from repro.machine.resources import OpKind
from repro.sim import ops
from repro.sim.reference import ReferenceRun

_OP_KINDS = {
    "+": OpKind.ADD,
    "-": OpKind.ADD,
    "*": OpKind.MUL,
    "/": OpKind.DIV,
}


class SourceInterpreter:
    """Executes a lowered kernel's source semantics (module docstring).

    Args:
        lowered: the kernel (with lowering annotations in place).
        live_in_moduli: per-node collapse of pre-loop scalar instances,
            with the same meaning as on
            :class:`repro.sim.reference.ReferenceInterpreter` — pass
            :func:`repro.sim.reference.live_in_moduli_of_code` of the
            emitted code when comparing against a simulated pipeline,
            or ``None`` against the plain reference interpreter.
    """

    def __init__(
        self,
        lowered: LoweredKernel,
        live_in_moduli: dict[int, int] | None = None,
    ):
        self.lowered = lowered
        self.live_in_moduli = live_in_moduli

    # ------------------------------------------------------------------

    def _live_in(self, node_id: int, iteration: int) -> int:
        if self.live_in_moduli is not None:
            modulus = self.live_in_moduli.get(node_id, 1)
            iteration = iteration % modulus - modulus
        return ops.initial_value(node_id, iteration)

    def _initial_env(self) -> dict[str, int]:
        """Pre-loop scalar environment.

        Entering iteration 0, each loop scalar holds its end-of-body
        value from (virtual) iteration -1: instance ``-1 - shift`` of
        its binding node, or its invariant's value.
        """
        env: dict[str, int] = {}
        for name, binding in self.lowered.scalars.items():
            if binding.invariant_id is not None:
                env[name] = ops.invariant_value(binding.invariant_id)
            else:
                assert binding.node_id is not None
                env[name] = self._live_in(binding.node_id, -1 - binding.shift)
        return env

    def _address(self, ref: Subscript, induction: int) -> int:
        array_id = self.lowered.arrays[ref.array]
        element = ref.coeff * induction + ref.offset
        return (array_id << 24) + element * 8

    # ------------------------------------------------------------------

    def run(self, iterations: int) -> ReferenceRun:
        """Execute the source loop for the given number of iterations."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        kernel = self.lowered.kernel
        loop = kernel.loop
        env = self._initial_env()
        values: dict[tuple[int, int], int] = {}
        memory: dict[int, int] = {}

        def evaluate(expr: Expr, induction: int, iteration: int) -> int:
            if isinstance(expr, Num):
                if expr.invariant_id is None:
                    raise FrontendError(
                        f"{kernel.name}: literal {expr.value} was never "
                        "lowered"
                    )
                return ops.invariant_value(expr.invariant_id)
            if isinstance(expr, Name):
                if expr.invariant_id is not None:
                    return ops.invariant_value(expr.invariant_id)
                return env[expr.name]
            if isinstance(expr, Subscript):
                address = self._address(expr, induction)
                word = memory.get(address)
                if word is None:
                    word = ops.initial_memory(address)
                value = ops.load_value(word, [])
                assert expr.node_id is not None
                values[(expr.node_id, iteration)] = value
                return value
            if isinstance(expr, BinOp):
                left = evaluate(expr.left, induction, iteration)
                right = evaluate(expr.right, induction, iteration)
                value = ops.evaluate(_OP_KINDS[expr.op], [left, right])
                assert expr.node_id is not None
                values[(expr.node_id, iteration)] = value
                return value
            if isinstance(expr, Call):
                operand = evaluate(expr.arg, induction, iteration)
                value = ops.evaluate(OpKind.SQRT, [operand])
                assert expr.node_id is not None
                values[(expr.node_id, iteration)] = value
                return value
            raise FrontendError(
                f"{kernel.name}: cannot interpret {type(expr).__name__}"
            )

        for iteration in range(iterations):
            induction = loop.induction_value(iteration)
            for stmt in kernel.body:
                value = evaluate(stmt.expr, induction, iteration)
                target = stmt.target
                if isinstance(target, Name):
                    env[target.name] = value
                else:
                    stored = ops.evaluate(OpKind.STORE, [value])
                    assert target.node_id is not None
                    values[(target.node_id, iteration)] = stored
                    memory[self._address(target, induction)] = stored

        return ReferenceRun(
            loop=self.lowered.name,
            iterations=iterations,
            values=values,
            memory=memory,
        )


def run_source(lowered: LoweredKernel, iterations: int) -> ReferenceRun:
    """One-shot convenience wrapper around :class:`SourceInterpreter`."""
    return SourceInterpreter(lowered).run(iterations)
