"""Differential validation: emitted code vs scalar reference execution.

The strongest correctness statement this repository can make about a
schedule is end-to-end: run the *generated code* on the simulated
machine, run the *dependence graph* on the scalar reference interpreter,
and require bit-for-bit agreement on

1. every value produced by every (operation, iteration) instance, and
2. the final memory image (every address written, and what it holds).

Scheduler, cluster assignment, spilling, register allocation, modulo
variable expansion and the emitter all sit between the two executions,
so a bug in any of them surfaces as a concrete mismatch naming the
operation and iteration where the dataflow first diverged.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import ScheduleResult
from repro.exec.cache import ResultCache, resolve_cache
from repro.exec.hashing import simulation_cache_key, stable_hash
from repro.machine.technology import TechnologyModel
from repro.memsim.cache import CacheConfig
from repro.sim.reference import ReferenceInterpreter, live_in_moduli_of_code
from repro.sim.result import SimulationResult
from repro.sim.vliw import VliwSimulator

#: Mismatches reported per category before truncating (a broken emitter
#: diverges everywhere; the first few sites are the diagnostic ones).
MAX_REPORTED = 8


@dataclasses.dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one simulator-vs-reference comparison."""

    loop: str
    machine: str
    iterations: int
    match: bool
    mismatches: tuple[str, ...]
    simulation: SimulationResult

    def summary(self) -> str:
        verdict = "MATCH" if self.match else "MISMATCH"
        head = (
            f"{self.loop} on {self.machine}: {verdict} over "
            f"{self.iterations} iterations"
        )
        if self.match:
            return head
        return head + "\n  " + "\n  ".join(self.mismatches)


def run_differential(
    schedule: ScheduleResult,
    iterations: int,
    cache_config: CacheConfig | None = None,
    technology: TechnologyModel | None = None,
    cache: ResultCache | bool | None = None,
) -> DifferentialReport:
    """Execute both sides and compare their end states.

    The reference interpreter is run for the simulator's *effective*
    trip count (the emitted kernel retires iterations in whole unrolled
    passes, so the simulator may execute a few more than requested).

    ``cache`` memoizes the finished report in the on-disk result cache
    (see :func:`repro.exec.cache.resolve_cache` for the selector
    semantics): both executions are deterministic, so a warm benchmark
    or CI rerun skips them entirely.
    """
    store = resolve_cache(cache)
    key = None
    if store is not None:
        key = stable_hash(
            {
                "kind": "differential",
                "base": simulation_cache_key(
                    schedule, iterations, cache_config, technology
                ),
            }
        )
        cached = store.get(key)
        if isinstance(cached, DifferentialReport):
            return cached
    simulator = VliwSimulator(
        schedule, cache_config=cache_config, technology=technology
    )
    run = simulator.run(iterations)
    reference = ReferenceInterpreter(
        schedule.graph,
        live_in_moduli=live_in_moduli_of_code(simulator.code),
    ).run(run.result.iterations)

    mismatches: list[str] = []
    truncated = 0

    node_names = {node.id: node.name for node in schedule.graph.nodes()}
    for instance in sorted(set(run.values) | set(reference.values)):
        simulated = run.values.get(instance)
        expected = reference.values.get(instance)
        if simulated == expected:
            continue
        if len(mismatches) < MAX_REPORTED:
            node_id, iteration = instance
            mismatches.append(
                f"value of {node_names.get(node_id, node_id)} @ iteration "
                f"{iteration}: code={simulated} reference={expected}"
            )
        else:
            truncated += 1

    memory_reported = 0
    for address in sorted(set(run.memory) | set(reference.memory)):
        simulated = run.memory.get(address)
        expected = reference.memory.get(address)
        if simulated == expected:
            continue
        if memory_reported < MAX_REPORTED:
            mismatches.append(
                f"memory[{address:#x}]: code={simulated} "
                f"reference={expected}"
            )
            memory_reported += 1
        else:
            truncated += 1

    if truncated:
        mismatches.append(f"... and {truncated} further mismatches")

    report = DifferentialReport(
        loop=schedule.loop,
        machine=schedule.machine.name,
        iterations=run.result.iterations,
        match=not mismatches,
        mismatches=tuple(mismatches),
        simulation=run.result,
    )
    if store is not None and key is not None:
        store.put(key, report)
    return report
