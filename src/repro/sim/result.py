"""Measured outcome of one simulated loop execution.

:class:`SimulationResult` is the compact, picklable record the rest of
the stack consumes: the exec layer memoizes it on disk (keyed by
:func:`repro.exec.hashing.simulation_cache_key`), the CLI prints it,
``eval/experiments`` compares it against the analytic stall prediction
of :mod:`repro.memsim`, and ``benchmarks/bench_simulator.py`` feeds it
into ``BENCH_suite.json``.  Bulky per-instance state (register values,
memory words) stays out; :attr:`SimulationResult.state_digest` carries a
stable hash of it so two runs can still be compared for bit equality.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def state_digest(
    values: dict[tuple[int, int], int], memory: dict[int, int]
) -> str:
    """Stable digest of an execution's end state.

    Covers every (node, iteration) value and every written memory word;
    two executions agree on the digest iff they agree on the state.
    """
    payload = {
        "values": sorted((n, i, v) for (n, i), v in values.items()),
        "memory": sorted(memory.items()),
    }
    text = json.dumps(payload, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Measured cycles and traffic of one simulated execution.

    Attributes:
        loop: the loop's name.
        machine: the target configuration's name.
        ii / stage_count / mve_factor: shape of the executed pipeline.
        requested_iterations: the trip count asked for.
        iterations: the trip count actually executed — rounded up to a
            whole number of unrolled kernel passes (the emitted kernel
            can only retire ``mve_factor`` iterations at a time).
        useful_cycles: issued bundles; equals
            ``II * (iterations + stage_count - 1)`` by construction.
        stall_cycles: observed cycles the in-order pipeline was blocked
            on cache misses (consumer before data, or MSHRs exhausted).
        instructions: operation instances issued (nops excluded).
        loads / stores / moves: per-class instance counts.
        cache_hits / cache_misses: lockup-free cache accesses.
        state_digest: digest of the (node, iteration) values and final
            memory, for bit-for-bit comparison with the reference run.
        unroll_factor: unroll factor of the executed graph — each
            executed iteration covers this many *source* iterations.
        surplus_iterations: source iterations a full execution runs
            beyond the source loop's trip count because the unroll
            factor does not divide it (the unrolled loop has no
            epilogue; :func:`repro.workloads.unroll.unroll` warns at
            transform time, this field reports it at simulation time).
            0 when the factor divides, when the graph is not unrolled,
            or when fewer than ``trip_count`` iterations were run.
    """

    loop: str
    machine: str
    ii: int
    stage_count: int
    mve_factor: int
    requested_iterations: int
    iterations: int
    useful_cycles: int
    stall_cycles: int
    instructions: int
    loads: int
    stores: int
    moves: int
    cache_hits: int
    cache_misses: int
    state_digest: str
    unroll_factor: int = 1
    surplus_iterations: int = 0

    @property
    def total_cycles(self) -> int:
        return self.useful_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        """Operations retired per elapsed cycle (stalls included)."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    @property
    def miss_rate(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_misses / accesses if accesses else 0.0

    @property
    def bus_occupancy(self) -> float:
        """Fraction of bus-cycles consumed by inter-cluster moves.

        Relative to a single bus; divide by the machine's bus count for
        the per-bus figure (unbounded-bus configurations keep the raw
        per-cycle move density).
        """
        if self.useful_cycles == 0:
            return 0.0
        return self.moves / self.useful_cycles

    def summary(self) -> str:
        text = (
            f"{self.loop} on {self.machine}: {self.iterations} iterations, "
            f"II={self.ii}, useful={self.useful_cycles} "
            f"stall={self.stall_cycles} "
            f"(IPC {self.ipc:.2f}, miss rate {self.miss_rate:.1%})"
        )
        if self.surplus_iterations:
            text += (
                f" [non-dividing unroll x{self.unroll_factor}: "
                f"{self.surplus_iterations} surplus source iteration(s)]"
            )
        return text
