"""Cycle-accurate functional execution of emitted VLIW code.

:class:`VliwSimulator` runs the output of
:func:`repro.codegen.generate_code` bundle by bundle — prologue, then as
many passes over the unrolled kernel as the trip count needs, then the
epilogue — against architectural state:

* one global register namespace whose names embed the owning cluster
  (``c1:r7.k2``), read at issue time with read-before-write semantics
  inside a bundle (the register file of a real VLIW reads its operands
  before the cycle's writeback);
* a byte-addressed memory, initialized on demand from
  :func:`repro.sim.ops.initial_memory`;
* the lockup-free cache of :mod:`repro.memsim` for *observed* (rather
  than analytically predicted) stall cycles: a load miss makes its
  destination register's data available ``miss_latency`` cycles after
  issue, and the in-order pipeline blocks when a bundle needs an operand
  before its data is ready or when all MSHRs are busy.

Cycle accounting follows Section 4.3 of the paper: **useful** cycles are
issued bundles — exactly ``II * (N + SC - 1)`` for ``N`` iterations of
an SC-stage pipeline — and **stall** cycles are the extra cycles the
clock advanced while the pipeline was blocked.

Timing is modelled for loads only: every other latency is already
honoured by construction (the static schedule spaces dependent issues at
least one producer-latency apart, and elapsed cycles only grow beyond
the static schedule as stalls are inserted), so hits never block.
"""

from __future__ import annotations

import dataclasses

from repro.codegen.emitter import GeneratedCode, generate_code
from repro.core.result import ScheduleResult
from repro.errors import SimulationError
from repro.machine.resources import OpKind
from repro.machine.technology import TechnologyModel
from repro.memsim.cache import CacheConfig, LockupFreeCache
from repro.sim import ops
from repro.sim.reference import spill_load_distance
from repro.sim.result import SimulationResult, state_digest

_INVARIANT_PREFIX = "inv:"


@dataclasses.dataclass
class SimulationRun:
    """A finished simulation: the compact result plus the full end state.

    The heavyweight fields (per-instance values, memory image, register
    file) exist for differential validation and debugging; only
    :attr:`result` travels through caches and reports.
    """

    result: SimulationResult
    #: (node id, iteration) -> value produced by that instance.
    values: dict[tuple[int, int], int]
    #: byte address -> last value stored.
    memory: dict[int, int]
    #: register name -> value at the end of the run.
    registers: dict[str, int]


def effective_iterations(code: GeneratedCode, iterations: int) -> int:
    """Round a trip count up to what the emitted pipeline can execute.

    The prologue starts ``SC - 1`` iterations and each pass over the
    unrolled kernel retires exactly ``mve_factor`` more, so the smallest
    executable trip count is ``SC - 1 + mve_factor`` and growth comes in
    ``mve_factor`` steps (real software pipelines precondition the loop
    for the same reason).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    fill = code.stage_count - 1
    passes = max(1, -(-(iterations - fill) // code.mve_factor))
    return fill + passes * code.mve_factor


class VliwSimulator:
    """Executes one scheduled loop's emitted code (see module docstring).

    Args:
        schedule: a converged :class:`ScheduleResult` (with its graph).
        code: pre-generated code; emitted from ``schedule`` when omitted.
        cache_config: cache geometry (paper defaults when omitted).
        technology: technology model supplying the miss latency.
    """

    def __init__(
        self,
        schedule: ScheduleResult,
        code: GeneratedCode | None = None,
        cache_config: CacheConfig | None = None,
        technology: TechnologyModel | None = None,
    ):
        self.schedule = schedule
        self.code = code or generate_code(schedule)
        self.cache_config = cache_config or CacheConfig()
        self.technology = technology or TechnologyModel()
        graph = schedule.graph
        self._nodes = {node.id: node for node in graph.nodes()}
        self._invariants = {
            f"{_INVARIANT_PREFIX}{inv.name}": ops.invariant_value(inv.id)
            for inv in graph.invariants()
        }
        self._spill_distance = {
            node.id: spill_load_distance(graph, node.id)
            for node in graph.nodes()
            if node.kind is OpKind.LOAD and node.is_spill
        }

    # ------------------------------------------------------------------

    def _initial_registers(self) -> dict[str, int]:
        """Live-in register contents.

        Iteration ``c - K`` (the last pre-loop iteration congruent to
        copy ``c``) owns register copy ``c``, so a loop-carried consumer
        at iteration ``i`` reading distance ``d > i`` finds
        ``initial_value(v, i - d)`` in the copy the emitter points it
        at.  Non-expanded values alias all copies onto one name and the
        ascending write order leaves ``initial_value(v, -1)`` there.
        """
        mve = self.code.mve_factor
        registers: dict[str, int] = {}
        for value, names in self.code.registers.items():
            for copy, name in enumerate(names):
                registers[name] = ops.initial_value(value, copy - mve)
        return registers

    def _bundles(self, passes: int):
        """Yield ``(cycle block, bundle)`` over the whole execution."""
        code = self.code
        ii = code.ii
        fill = code.stage_count - 1
        for cycle, bundle in enumerate(code.prologue):
            yield cycle // ii, bundle
        for kernel_pass in range(passes):
            base = fill + kernel_pass * code.mve_factor
            for cycle, bundle in enumerate(code.kernel):
                yield base + cycle // ii, bundle
        base = fill + passes * code.mve_factor
        for cycle, bundle in enumerate(code.epilogue):
            yield base + cycle // ii, bundle

    # ------------------------------------------------------------------

    def run(self, iterations: int) -> SimulationRun:
        """Execute the pipeline end to end for (at least) ``iterations``."""
        code = self.code
        mve = code.mve_factor
        n_iterations = effective_iterations(code, iterations)
        passes = (n_iterations - (code.stage_count - 1)) // mve

        registers = self._initial_registers()
        values: dict[tuple[int, int], int] = {}
        memory: dict[int, int] = {}
        cache = LockupFreeCache(self.cache_config)
        miss_latency = self.technology.miss_latency_cycles(
            self.schedule.machine
        )
        mshrs = self.cache_config.mshrs

        clock = 0  # elapsed cycles, stalls included
        useful = 0
        stalls = 0
        instructions = 0
        loads = stores = moves = 0
        data_ready: dict[str, int] = {}  # load dest -> data-ready cycle
        pending: list[int] = []  # outstanding miss completion cycles

        for block, bundle in self._bundles(passes):
            # Issue-time operand fetch: every source is read before any
            # write of this bundle lands, and the bundle as a whole
            # waits for the slowest outstanding operand.
            operand_values: list[list[int]] = []
            ready = clock
            for inst in bundle:
                sources = []
                for name in inst.sources:
                    if name.startswith(_INVARIANT_PREFIX):
                        try:
                            sources.append(self._invariants[name])
                        except KeyError:
                            raise SimulationError(
                                f"unknown invariant operand {name!r}"
                            ) from None
                    else:
                        try:
                            sources.append(registers[name])
                        except KeyError:
                            raise SimulationError(
                                f"instruction for node {inst.node} reads "
                                f"register {name!r} which nothing defines"
                            ) from None
                        ready = max(ready, data_ready.get(name, 0))
                operand_values.append(sources)
            if ready > clock:
                stalls += ready - clock
                clock = ready

            writes: list[tuple[str, int, int]] = []
            for inst, operands in zip(bundle, operand_values, strict=True):
                node = self._nodes[inst.node]
                iteration = block - inst.stage
                ready_at = 0  # 0 = data ready at issue

                if node.kind is OpKind.LOAD:
                    loads += 1
                    if node.load_of_invariant is not None:
                        value = ops.invariant_value(node.load_of_invariant)
                        address = (
                            node.mem_ref.address(0) if node.mem_ref else None
                        )
                    elif node.mem_ref is None:
                        value = ops.load_value(0, operands)
                        address = None
                    else:
                        slot = iteration - self._spill_distance.get(
                            inst.node, 0
                        )
                        address = node.mem_ref.address(slot)
                        word = memory.get(address)
                        if word is None:
                            word = ops.initial_memory(address)
                        value = ops.load_value(word, operands)
                    if address is not None and not cache.access(address):
                        # MSHR pressure: with every miss register busy
                        # the pipeline blocks until one retires.
                        pending = [t for t in pending if t > clock]
                        if len(pending) >= mshrs:
                            wait = min(pending)
                            stalls += wait - clock
                            clock = wait
                            pending = [t for t in pending if t > clock]
                        if node.latency_override is None:
                            ready_at = clock + miss_latency
                        pending.append(clock + miss_latency)
                elif node.kind is OpKind.STORE:
                    stores += 1
                    value = ops.evaluate(node.kind, operands)
                    if node.mem_ref is not None:
                        address = node.mem_ref.address(iteration)
                        memory[address] = value
                        # Write misses allocate but never block: stores
                        # retire through the write buffer.
                        cache.access(address, is_write=True)
                elif node.kind is OpKind.MOVE and (
                    node.move_of_invariant is not None
                ):
                    moves += 1
                    value = ops.invariant_value(node.move_of_invariant)
                else:
                    if node.kind is OpKind.MOVE:
                        moves += 1
                    value = ops.evaluate(node.kind, operands)

                values[(inst.node, iteration)] = value
                if inst.dest is not None:
                    writes.append((inst.dest, value, ready_at))
                instructions += 1

            for dest, value, ready_at in writes:
                registers[dest] = value
                if ready_at:
                    data_ready[dest] = ready_at
                else:
                    data_ready.pop(dest, None)

            useful += 1
            clock += 1

        graph = self.schedule.graph
        # Surplus source iterations become observable only when the run
        # covers the loop's whole trip count (the unrolled loop has no
        # epilogue, so its last iteration executes every replica).
        surplus = 0
        if graph is not None and n_iterations >= graph.trip_count:
            surplus = max(
                0,
                graph.trip_count * graph.unroll_factor
                - graph.source_trip_count,
            )
        result = SimulationResult(
            loop=self.schedule.loop,
            machine=self.schedule.machine.name,
            ii=code.ii,
            stage_count=code.stage_count,
            mve_factor=mve,
            requested_iterations=iterations,
            iterations=n_iterations,
            unroll_factor=1 if graph is None else graph.unroll_factor,
            surplus_iterations=surplus,
            useful_cycles=useful,
            stall_cycles=stalls,
            instructions=instructions,
            loads=loads,
            stores=stores,
            moves=moves,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            state_digest=state_digest(values, memory),
        )
        return SimulationRun(
            result=result, values=values, memory=memory, registers=registers
        )


def simulate(
    schedule: ScheduleResult,
    iterations: int,
    cache_config: CacheConfig | None = None,
    technology: TechnologyModel | None = None,
) -> SimulationRun:
    """One-shot convenience wrapper around :class:`VliwSimulator`."""
    return VliwSimulator(
        schedule, cache_config=cache_config, technology=technology
    ).run(iterations)
