"""Shared value semantics of the functional simulation.

The differential validation of :mod:`repro.sim` needs *two* independent
executions of one loop — the scalar reference interpretation of the
dependence graph and the bundle-by-bundle run of the emitted VLIW code —
to agree **bit for bit**.  Floating point is a poor carrier for that
(operand association differs between the two sides), so every operation
is given an exact integer semantics over the field GF(P) with
``P = 2**61 - 1``:

* ``add`` is a salted modular sum, ``mul`` a salted modular product;
* ``div``/``sqrt``/multi-operand ``load``/``store`` fold their operands
  through a salted polynomial hash — deterministic, collision-poor and
  cheap;
* operand *order* is erased by sorting operand values first: the
  dependence graph gives operations a multiset of operands, not a
  sequence, and the emitter stores sources as a sorted tuple.

Live-in values (loop-carried dependences reaching before iteration 0),
loop invariants and untouched memory are likewise pure functions of
their identity, so both executions can materialize them independently
and still agree.  Nothing here aims at numeric realism — only at making
every dataflow mistake (wrong register copy, clobbered register, wrong
spill slot, reordered aliasing store) visible as a value mismatch.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.machine.resources import OpKind

#: The Mersenne prime 2^61 - 1: products never collapse to zero and the
#: arithmetic stays within native machine words on 64-bit CPythons.
FIELD_PRIME = (1 << 61) - 1

_FOLD_MULTIPLIER = 1_099_511_628_211  # FNV-64 prime, coprime to FIELD_PRIME

#: Per-role salts keep structurally different computations from
#: colliding (e.g. ``add(x)`` vs ``move(x)`` vs ``x`` itself).
_SALTS = {
    OpKind.ADD: 0x1DA3_E1A9,
    OpKind.MUL: 0x2B7E_1516,
    OpKind.DIV: 0x3C6E_F372,
    OpKind.SQRT: 0x4D2C_6DFC,
    OpKind.LOAD: 0x5BE0_CD19,
    OpKind.STORE: 0x6A09_E667,
    OpKind.MOVE: 0x7C15_9D3B,
}
_LIVE_IN_SALT = 0x8F1B_BCDC
_INVARIANT_SALT = 0x9B05_688C
_MEMORY_SALT = 0xA54F_F53A


def fold(salt: int, values: Iterable[int]) -> int:
    """Salted polynomial hash of a value sequence over GF(P)."""
    h = salt % FIELD_PRIME
    for value in values:
        h = (h * _FOLD_MULTIPLIER + value + 1) % FIELD_PRIME
    return h


def evaluate(kind: OpKind, operands: list[int]) -> int:
    """The value produced by an operation from its operand values.

    ``operands`` is treated as a multiset (sorted internally); stores
    "produce" the value they write to memory.  Plain loads do not go
    through here — their value is the memory word — but loads with
    register operands combine them via :func:`load_value`.
    """
    values = sorted(operands)
    salt = _SALTS[kind]
    if kind is OpKind.MOVE and values:
        return values[0] % FIELD_PRIME
    if kind is OpKind.ADD:
        return (salt + sum(values)) % FIELD_PRIME
    if kind is OpKind.MUL:
        product = salt
        for value in values:
            product = (product * (value % FIELD_PRIME + 1)) % FIELD_PRIME
        return product
    if kind is OpKind.STORE and len(values) == 1:
        # The common single-operand store writes the operand verbatim,
        # which keeps memory dumps legible when debugging mismatches.
        return values[0] % FIELD_PRIME
    return fold(salt, values)


def load_value(memory_word: int, operands: list[int]) -> int:
    """The register value produced by a load.

    A plain load yields the memory word unchanged; the rare load with
    register operands (possible in hand-built and property-test graphs)
    folds them in so the operands still influence the result.
    """
    if not operands:
        return memory_word % FIELD_PRIME
    return fold(_SALTS[OpKind.LOAD], sorted(operands) + [memory_word])


def initial_value(node_id: int, iteration: int) -> int:
    """Live-in value of a loop-carried dependence.

    A consumer at iteration ``i`` reading distance ``d`` needs the
    producer's instance of iteration ``i - d``; for ``i - d < 0`` that
    instance predates the loop and is defined as a pure function of
    (producer, iteration) so both executions agree on it.
    """
    return fold(_LIVE_IN_SALT, [node_id, iteration & 0xFFFF_FFFF])


def invariant_value(invariant_id: int) -> int:
    """The (arbitrary but fixed) value of a loop invariant."""
    return fold(_INVARIANT_SALT, [invariant_id])


def initial_memory(address: int) -> int:
    """Contents of a memory word never written by the loop."""
    return fold(_MEMORY_SALT, [address])
