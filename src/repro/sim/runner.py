"""Suite-scale simulation: memoized, optionally sharded over workers.

Mirrors the shape of :mod:`repro.exec.engine` for the execution stage:
every (schedule, trip count, memory system) problem is keyed by
:func:`repro.exec.hashing.simulation_cache_key` and probed against the
on-disk :class:`~repro.exec.cache.ResultCache`; misses run locally or on
a ``multiprocessing`` pool, and results are reassembled by position so
the output order never depends on worker count.

Only the compact :class:`~repro.sim.result.SimulationResult` is cached
and returned — reruns that need the full end state (differential
validation, debugging) use :mod:`repro.sim.vliw` directly.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Sequence

from repro.core.result import ScheduleResult
from repro.exec.cache import ResultCache, resolve_cache
from repro.exec.engine import resolve_jobs
from repro.exec.hashing import simulation_cache_key
from repro.machine.technology import TechnologyModel
from repro.memsim.cache import CacheConfig
from repro.sim.result import SimulationResult
from repro.sim.vliw import VliwSimulator


def simulate_schedule(
    schedule: ScheduleResult,
    iterations: int,
    *,
    cache: ResultCache | bool | None = None,
    cache_config: CacheConfig | None = None,
    technology: TechnologyModel | None = None,
) -> SimulationResult:
    """Simulate one schedule, going through the result cache."""
    store = resolve_cache(cache)
    key = None
    if store is not None:
        key = simulation_cache_key(
            schedule, iterations, cache_config, technology
        )
        cached = store.get(key)
        if isinstance(cached, SimulationResult):
            return cached
    result = VliwSimulator(
        schedule, cache_config=cache_config, technology=technology
    ).run(iterations).result
    if store is not None and key is not None:
        store.put(key, result)
    return result


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------


def _simulate_item(
    item: tuple[int, ScheduleResult, int, CacheConfig | None, TechnologyModel | None],
) -> tuple[int, SimulationResult]:
    position, schedule, iterations, cache_config, technology = item
    simulator = VliwSimulator(
        schedule, cache_config=cache_config, technology=technology
    )
    return position, simulator.run(iterations).result


def simulate_many(
    schedules: Sequence[ScheduleResult],
    iterations: int,
    *,
    jobs: int | None = None,
    cache: ResultCache | bool | None = None,
    cache_config: CacheConfig | None = None,
    technology: TechnologyModel | None = None,
) -> list[SimulationResult]:
    """Simulate a batch of schedules, in order.

    Callers pass converged results only (code generation refuses the
    rest); position ``i`` of the output simulates ``schedules[i]``.

    Args:
        schedules: converged schedule results (with graphs).
        iterations: trip count to simulate for each.
        jobs: worker processes (``None``: ``REPRO_JOBS`` env or 1).
        cache: result-cache selector, as in
            :func:`repro.exec.cache.resolve_cache`.
        cache_config / technology: memory-system parameters.
    """
    store = resolve_cache(cache)
    results: dict[int, SimulationResult] = {}
    keys: dict[int, str] = {}
    if store is not None:
        for position, schedule in enumerate(schedules):
            keys[position] = simulation_cache_key(
                schedule, iterations, cache_config, technology
            )
            cached = store.get(keys[position])
            if isinstance(cached, SimulationResult):
                results[position] = cached

    misses = [
        (position, schedule, iterations, cache_config, technology)
        for position, schedule in enumerate(schedules)
        if position not in results
    ]
    workers = min(resolve_jobs(jobs), len(misses)) if misses else 0
    if workers > 1:
        ctx = multiprocessing.get_context()
        chunksize = max(1, len(misses) // (workers * 4))
        with ctx.Pool(processes=workers) as pool:
            produced = list(
                pool.imap_unordered(_simulate_item, misses, chunksize=chunksize)
            )
    else:
        produced = [_simulate_item(item) for item in misses]

    for position, result in produced:
        results[position] = result
        if store is not None:
            store.put(keys[position], result)
    return [results[position] for position in range(len(schedules))]
