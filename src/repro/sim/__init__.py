"""Cycle-accurate execution of scheduled loops on the clustered VLIW.

This package closes the loop the rest of the repository only reasons
about: the code emitted by :mod:`repro.codegen` actually *runs*.

* :mod:`repro.sim.ops` — exact integer value semantics shared by both
  executions (field arithmetic over ``2**61 - 1``; live-ins, invariants
  and untouched memory are pure functions of their identity);
* :mod:`repro.sim.reference` — a scalar reference interpreter executing
  the :class:`~repro.graph.ddg.DependenceGraph` iteration by iteration;
* :mod:`repro.sim.vliw` — bundle-by-bundle execution of
  :func:`repro.codegen.generate_code` output over per-cluster register
  files, with the lockup-free cache of :mod:`repro.memsim` producing
  *observed* stall cycles (the analytic prediction lives in
  :mod:`repro.memsim.stall`);
* :mod:`repro.sim.differential` — bit-for-bit comparison of the two
  executions: end-to-end validation of scheduler + cluster assignment +
  spilling + register allocation + MVE + emitter;
* :mod:`repro.sim.runner` — cached, optionally parallel batch
  simulation through :mod:`repro.exec`.

Entry points: ``python -m repro simulate`` on the command line,
:func:`run_differential` and :func:`simulate` from code.
"""

from repro.sim.differential import DifferentialReport, run_differential
from repro.sim.reference import ReferenceInterpreter, ReferenceRun, run_reference
from repro.sim.result import SimulationResult
from repro.sim.runner import simulate_many, simulate_schedule
from repro.sim.vliw import SimulationRun, VliwSimulator, simulate

__all__ = [
    "DifferentialReport",
    "ReferenceInterpreter",
    "ReferenceRun",
    "SimulationResult",
    "SimulationRun",
    "VliwSimulator",
    "run_differential",
    "run_reference",
    "simulate",
    "simulate_many",
    "simulate_schedule",
]
