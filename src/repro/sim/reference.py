"""Scalar reference interpretation of a dependence graph.

Executes a loop the way a sequential processor would: iteration by
iteration, each iteration's operations in a topological order of the
intra-iteration dependences (ties broken by node id, so the order is
deterministic).  Loop-carried operands come from the value history,
pre-loop instances from :func:`repro.sim.ops.initial_value`.

The interpreter runs the *final* graph of a schedule — spill loads and
stores, inter-cluster moves and all — under the semantics of
:mod:`repro.sim.ops`:

* a move forwards its operand (or re-materializes its invariant);
* a spill store writes its value to the per-iteration spill slot of its
  :class:`~repro.graph.ddg.MemRef`;
* a spill load reads the slot of the *producing* iteration: the store →
  load memory edge carries the iteration distance of the spilled use;
* a spill load of an invariant yields the invariant's value.

Because the VLIW simulator (:mod:`repro.sim.vliw`) applies the same
semantics to the *emitted code*, any divergence between the two — a
wrong register copy, a clobbered shared register, a mis-addressed spill
slot — shows up as a value or memory mismatch in
:mod:`repro.sim.differential`.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.errors import GraphError
from repro.graph.ddg import DepKind, DependenceGraph
from repro.machine.resources import OpKind
from repro.sim import ops


@dataclasses.dataclass
class ReferenceRun:
    """End state of one reference execution."""

    loop: str
    iterations: int
    #: (node id, iteration) -> produced value (stores: the value written).
    values: dict[tuple[int, int], int]
    #: byte address of a written word -> value.
    memory: dict[int, int]


def spill_load_distance(graph: DependenceGraph, node_id: int) -> int:
    """Iteration distance between a spill load and its spill store.

    The spill store of iteration ``i`` writes slot ``i``; the load that
    re-materializes the value ``d`` iterations later must read slot
    ``i = j - d``.  Loads without a store edge (invariant loads) read
    their own iteration's address.
    """
    for edge in graph.in_edges(node_id):
        if edge.kind is not DepKind.MEM:
            continue
        src = graph.node(edge.src)
        if src.is_spill and src.kind is OpKind.STORE:
            return edge.distance
    return 0


def intra_iteration_order(graph: DependenceGraph) -> list[int]:
    """Topological order of the distance-0 dependences, smallest-id first."""
    indegree = {node_id: 0 for node_id in graph.node_ids()}
    for edge in graph.edges():
        if edge.distance == 0:
            indegree[edge.dst] += 1
    ready = [node_id for node_id, deg in indegree.items() if deg == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        node_id = heapq.heappop(ready)
        order.append(node_id)
        for edge in graph.out_edges(node_id):
            if edge.distance != 0:
                continue
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                heapq.heappush(ready, edge.dst)
    if len(order) != len(indegree):
        raise GraphError(
            f"loop {graph.name!r} has a zero-distance dependence cycle"
        )
    return order


class ReferenceInterpreter:
    """Executes a dependence graph directly (see module docstring).

    Args:
        graph: the loop to interpret.
        live_in_moduli: per-value collapse of pre-loop instances.  A
            value held in ``m`` distinct physical registers can present
            at most ``m`` distinct live-ins, one per register copy
            (iteration ``j`` owns copy ``j % m``), so pre-loop instances
            congruent modulo ``m`` are physically one value.  Pass
            ``{value id: number of distinct register names}`` (see
            :func:`live_in_moduli_of_code`) when comparing against
            emitted code, an ``int`` for a uniform modulus, or ``None``
            (the default) to keep every pre-loop instance distinct.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        live_in_moduli: dict[int, int] | int | None = None,
    ):
        self.graph = graph
        if isinstance(live_in_moduli, int):
            if live_in_moduli < 1:
                raise ValueError("live-in modulus must be positive")
            live_in_moduli = {
                node_id: live_in_moduli for node_id in graph.node_ids()
            }
        self.live_in_moduli = live_in_moduli
        self._order = intra_iteration_order(graph)
        # Pre-resolved operand plan per node: REG producers with their
        # distances, invariant values, and spill-load slot distances.
        self._reg_in: dict[int, list[tuple[int, int]]] = {}
        self._invariant_operands: dict[int, list[int]] = {}
        self._spill_distance: dict[int, int] = {}
        for node in graph.nodes():
            self._reg_in[node.id] = [
                (edge.src, edge.distance)
                for edge in graph.in_edges(node.id)
                if edge.kind is DepKind.REG
            ]
            self._invariant_operands[node.id] = [
                ops.invariant_value(inv.id)
                for inv in graph.invariants_of(node.id)
            ]
            if node.kind is OpKind.LOAD and node.is_spill:
                self._spill_distance[node.id] = spill_load_distance(
                    graph, node.id
                )

    # ------------------------------------------------------------------

    def run(self, iterations: int) -> ReferenceRun:
        """Execute the loop for the given number of iterations."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        values: dict[tuple[int, int], int] = {}
        memory: dict[int, int] = {}

        moduli = self.live_in_moduli

        def value_of(node_id: int, iteration: int) -> int:
            if iteration >= 0:
                return values[(node_id, iteration)]
            if moduli is not None:
                modulus = moduli.get(node_id, 1)
                iteration = iteration % modulus - modulus
            return ops.initial_value(node_id, iteration)

        for iteration in range(iterations):
            for node_id in self._order:
                node = self.graph.node(node_id)
                operands = [
                    value_of(src, iteration - distance)
                    for src, distance in self._reg_in[node_id]
                ]
                operands += self._invariant_operands[node_id]

                if node.kind is OpKind.LOAD:
                    if node.load_of_invariant is not None:
                        value = ops.invariant_value(node.load_of_invariant)
                    elif node.mem_ref is None:
                        # No access pattern: a register-like scratch
                        # location (mirrors repro.memsim.trace).
                        value = ops.load_value(0, operands)
                    else:
                        slot = iteration - self._spill_distance.get(node_id, 0)
                        address = node.mem_ref.address(slot)
                        word = memory.get(address)
                        if word is None:
                            word = ops.initial_memory(address)
                        value = ops.load_value(word, operands)
                elif node.kind is OpKind.MOVE and (
                    node.move_of_invariant is not None
                ):
                    value = ops.invariant_value(node.move_of_invariant)
                else:
                    value = ops.evaluate(node.kind, operands)

                values[(node_id, iteration)] = value
                if node.kind is OpKind.STORE and node.mem_ref is not None:
                    memory[node.mem_ref.address(iteration)] = value

        return ReferenceRun(
            loop=self.graph.name,
            iterations=iterations,
            values=values,
            memory=memory,
        )


def live_in_moduli_of_code(code) -> dict[int, int]:
    """Per-value live-in moduli of one emitted pipeline.

    A modulo-expanded value owns one register per kernel copy (modulus =
    MVE factor); a non-expanded value owns a single register whatever
    the unroll (modulus 1).
    """
    return {
        value: len(set(names)) for value, names in code.registers.items()
    }


def run_reference(graph: DependenceGraph, iterations: int) -> ReferenceRun:
    """One-shot convenience wrapper around :class:`ReferenceInterpreter`."""
    return ReferenceInterpreter(graph).run(iterations)
