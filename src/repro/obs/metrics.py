"""Typed counters and gauges layered over the tracer.

:class:`SearchStats` replaces the ad-hoc ``stats.search_stats`` dict
the speculative driver used to assemble: the same ledger as a typed
dataclass, emitted as tracer counter events and still reachable in the
old dict shape through :class:`LegacySearchStats` (which warns on
dict-style access).
"""

from __future__ import annotations

import dataclasses
import warnings


@dataclasses.dataclass
class SearchStats:
    """The II-search ledger of one :meth:`MirsC.schedule` call.

    Attributes:
        speculation: frontier width K the search ran with.
        runner: class name of the attempt runner that executed it.
        serial_attempts: attempts on the serial-equivalent path (what
            the serial driver would have executed).
        executed_attempts: attempts that actually completed (speculative
            extras included).
        launched: tasks submitted to the runner.
        cancelled: in-flight attempts revoked.
        cache_hits: attempts satisfied by the per-attempt result cache.
    """

    speculation: int = 1
    runner: str = ""
    serial_attempts: int = 0
    executed_attempts: int = 0
    launched: int = 0
    cancelled: int = 0
    cache_hits: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def emit(self, tracer, prefix: str = "race") -> None:
        """Publish the integer counters as tracer gauge samples."""
        for name, value in self.as_dict().items():
            if isinstance(value, int):
                tracer.counter(f"{prefix}.{name}", value)


class LegacySearchStats(dict):
    """``stats.search_stats``'s old dict shape, kept warm but warning.

    Equality, iteration and JSON serialization behave exactly like the
    historical plain dict; *keyed* access (``[...]``/``get``) warns so
    callers migrate to the typed ``stats.search`` field.
    """

    @staticmethod
    def _warn() -> None:
        warnings.warn(
            "dict-style access to SchedulerStats.search_stats is "
            "deprecated; read the typed SchedulerStats.search "
            "(repro.obs.SearchStats) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key):
        self._warn()
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._warn()
        return super().get(key, default)


def outcome_histogram(trace_entries) -> dict[str, int]:
    """Failure/outcome-kind histogram of a ``search_trace``.

    Accepts the ``as_trace_entry`` dicts stored in
    ``SchedulerStats.search_trace``; returns ``{kind: count}`` sorted by
    kind name (stable for messages and JSON artifacts).
    """
    histogram: dict[str, int] = {}
    for entry in trace_entries:
        kind = entry.get("kind", "unknown")
        histogram[kind] = histogram.get(kind, 0) + 1
    return dict(sorted(histogram.items()))
