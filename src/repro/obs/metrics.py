"""Typed counters and gauges layered over the tracer.

:class:`SearchStats` replaces the ad-hoc ``stats.search_stats`` dict
the speculative driver used to assemble: the same ledger as a typed
dataclass, emitted as tracer counter events.  The transitional dict
shape survives as :class:`LegacySearchStats` only for equality,
iteration and JSON serialization; *keyed* access raises
:class:`~repro.errors.ConfigError` now that the deprecation period is
over.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class SearchStats:
    """The II-search ledger of one :meth:`MirsC.schedule` call.

    Attributes:
        speculation: frontier width K the search ran with.
        runner: class name of the attempt runner that executed it.
        serial_attempts: attempts on the serial-equivalent path (what
            the serial driver would have executed).
        executed_attempts: attempts that actually completed (speculative
            extras included).
        launched: tasks submitted to the runner.
        cancelled: in-flight attempts revoked.
        cache_hits: attempts satisfied by the per-attempt result cache.
    """

    speculation: int = 1
    runner: str = ""
    serial_attempts: int = 0
    executed_attempts: int = 0
    launched: int = 0
    cancelled: int = 0
    cache_hits: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def emit(self, tracer, prefix: str = "race") -> None:
        """Publish the integer counters as tracer gauge samples."""
        for name, value in self.as_dict().items():
            if isinstance(value, int):
                tracer.counter(f"{prefix}.{name}", value)


class LegacySearchStats(dict):
    """``stats.search_stats``'s old dict shape, now closed to keyed reads.

    Equality, iteration and JSON serialization behave exactly like the
    historical plain dict; *keyed* access (``[...]``/``get``) raises a
    :class:`~repro.errors.ConfigError` pointing at the typed
    ``stats.search`` field (it warned with a ``DeprecationWarning``
    first).
    """

    @staticmethod
    def _reject(key) -> None:
        from repro.errors import ConfigError

        raise ConfigError(
            f"dict-style access to SchedulerStats.search_stats "
            f"(search_stats[{key!r}]) was removed after a deprecation "
            "period; read the typed SchedulerStats.search "
            "(repro.obs.SearchStats) instead, e.g. stats.search."
            f"{key if isinstance(key, str) else '<field>'}"
        )

    def __getitem__(self, key):
        self._reject(key)

    def get(self, key, default=None):
        self._reject(key)


def outcome_histogram(trace_entries) -> dict[str, int]:
    """Failure/outcome-kind histogram of a ``search_trace``.

    Accepts the ``as_trace_entry`` dicts stored in
    ``SchedulerStats.search_trace``; returns ``{kind: count}`` sorted by
    kind name (stable for messages and JSON artifacts).
    """
    histogram: dict[str, int] = {}
    for entry in trace_entries:
        kind = entry.get("kind", "unknown")
        histogram[kind] = histogram.get(kind, 0) + 1
    return dict(sorted(histogram.items()))
