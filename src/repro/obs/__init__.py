"""repro.obs — structured tracing and metrics for the scheduler stack.

Three ways to turn tracing on, one resolution order:

1. pass a :class:`RecordingTracer` explicitly
   (``MirsC(machine, tracer=...)`` or ``ScheduleRequest(trace=...)``);
2. pass ``True`` to use the process-global tracer;
3. set ``REPRO_TRACE=/path/to/trace.jsonl`` — every schedule in the
   process records into the global tracer, and the trace (JSONL plus a
   sibling ``.chrome.json`` in Chrome trace-event format) is written at
   interpreter exit.

``False`` forces tracing off regardless of the environment; ``None``
(the default everywhere) follows it.  With nothing enabled, every hook
dispatches to the shared :class:`NullTracer` — a no-op, gated at <2%
workbench overhead in ``benchmarks/bench_scheduler.py``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys

from repro.obs.metrics import (
    LegacySearchStats,
    SearchStats,
    outcome_histogram,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)

#: Environment knob: a JSONL path enabling process-global tracing.
TRACE_ENV = "REPRO_TRACE"

_GLOBAL_TRACER: RecordingTracer | None = None
_EXIT_HOOKED = False

__all__ = [
    "LegacySearchStats",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "SearchStats",
    "TRACE_ENV",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "global_tracer",
    "outcome_histogram",
    "reset_global_tracer",
    "resolve_tracer",
]


def _flush_global_tracer() -> None:  # pragma: no cover - atexit plumbing
    path = os.environ.get(TRACE_ENV)
    if not path or _GLOBAL_TRACER is None or not _GLOBAL_TRACER.events:
        return
    from repro.obs.export import chrome_path_for, write_chrome, write_jsonl

    write_jsonl(_GLOBAL_TRACER, path)
    chrome = write_chrome(_GLOBAL_TRACER, chrome_path_for(path))
    print(
        f"[repro.obs] trace written: {path} (+ {chrome})",
        file=sys.stderr,
    )


def global_tracer() -> RecordingTracer:
    """The process-global tracer (created on first use).

    When ``REPRO_TRACE`` names a path, the trace is exported at
    interpreter exit — from the main process only: daemonic pool
    workers record into their own global tracer and ship events back
    through the executor's result tuples instead.
    """
    global _GLOBAL_TRACER, _EXIT_HOOKED
    if _GLOBAL_TRACER is None:
        _GLOBAL_TRACER = RecordingTracer(tid="main")
        if not _EXIT_HOOKED and not multiprocessing.current_process().daemon:
            atexit.register(_flush_global_tracer)
            _EXIT_HOOKED = True
    return _GLOBAL_TRACER


def reset_global_tracer() -> None:
    """Drop the process-global tracer (a fresh one appears on next use).

    Forked pool workers inherit the parent's global tracer *with* its
    recorded history; the worker initializer calls this so per-loop
    drains ship only events the worker itself recorded, never a copy
    of everything the parent traced before the fork.
    """
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = None


def resolve_tracer(spec) -> Tracer:
    """The one tracer-resolution point (mirrors ``resolve_cache``).

    ``Tracer`` instance → itself; ``True`` → the process-global tracer;
    ``False`` → off (overriding the environment); ``None`` → the
    global tracer when ``REPRO_TRACE`` is set, else off.
    """
    if isinstance(spec, Tracer):
        return spec
    if spec is True:
        return global_tracer()
    if spec is False:
        return NULL_TRACER
    if spec is None:
        if os.environ.get(TRACE_ENV):
            return global_tracer()
        return NULL_TRACER
    raise TypeError(
        f"cannot interpret {spec!r} as a tracer (expected a Tracer, "
        "True, False or None)"
    )
