"""Span/event tracing primitives.

The scheduler stack reports *what happened when* through a
:class:`Tracer`: spans (named intervals — one scheduling attempt, one
search phase, one suite execution), instants (point events — a race
launch, a cache probe) and counters (gauge samples — the speculative
ledger).  Two implementations exist:

* :class:`NullTracer` — the default everywhere.  Every method is a
  no-op returning immediately; ``enabled`` is ``False`` so hot paths
  can skip even argument construction.  Tracing off must cost nothing
  measurable (<2% on the workbench — gated in
  ``benchmarks/bench_scheduler.py``).
* :class:`RecordingTracer` — an append-only in-process event log with
  a deterministic sequence counter.  Event *order* (``seq``, names,
  categories, args) is reproducible run to run for serial schedules;
  only the timestamps vary — CI diffs traces modulo ``ts``/``dur``.

Cross-process merging: a worker records into its own
:class:`RecordingTracer` and ships :meth:`RecordingTracer.export` (a
plain-dict payload) back over whatever channel already exists (the
speculative runners' private pipes, the exec pool's result tuples); the
parent folds it in with :meth:`Tracer.merge`, re-timing events onto its
own clock via the recorded wall epochs.
"""

from __future__ import annotations

import dataclasses
import time

#: Bump when the event encoding changes; the committed
#: ``trace_schema.json`` carries the same number.
TRACE_SCHEMA_VERSION = 1


@dataclasses.dataclass
class TraceEvent:
    """One recorded event.

    Attributes:
        seq: deterministic per-tracer ordinal (emission order).
        name: event name (``"attempt"``, ``"race.launch"``, ...).
        cat: category (``"schedule"``, ``"race"``, ``"exec"``,
            ``"alloc"``, ``"metrics"``).
        kind: ``"span"`` (has a duration), ``"instant"`` or
            ``"counter"``.
        ts: seconds since the owning tracer's epoch.
        dur: span duration in seconds (0.0 for instants/counters).
        tid: logical track (``"main"``, ``"attempt-ii7"``,
            ``"worker:3"``).
        args: JSON-serializable details (counters carry ``value``).
    """

    seq: int
    name: str
    cat: str
    kind: str
    ts: float
    dur: float
    tid: str
    args: dict

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "name": self.name,
            "cat": self.cat,
            "kind": self.kind,
            "ts": round(self.ts, 9),
            "dur": round(self.dur, 9),
            "tid": self.tid,
            "args": self.args,
        }


class Tracer:
    """The tracing protocol (and, as written, the null implementation).

    ``begin``/``end`` bracket a span: ``begin`` returns an opaque token,
    ``end`` consumes it (span args may be supplied at either side; the
    ``end`` args win on collision).  Implementations must make every
    method safe to call unconditionally; callers on hot paths should
    still guard bulk argument construction with ``if tracer.enabled:``.
    """

    enabled: bool = False

    def begin(self, name: str, cat: str, **args) -> object:
        """Open a span; returns a token for :meth:`end`."""
        return None

    def end(self, token: object, **args) -> None:
        """Close a span opened by :meth:`begin`."""

    def instant(self, name: str, cat: str, **args) -> None:
        """Record a point event."""

    def counter(self, name: str, value, cat: str = "metrics") -> None:
        """Record a gauge sample."""

    def merge(self, payload: dict | None, tid: str | None = None) -> None:
        """Fold an exported worker trace into this one."""


class NullTracer(Tracer):
    """The zero-overhead default: records nothing, returns immediately."""

    __slots__ = ()


#: The process-wide inert tracer; share it rather than allocating.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """An in-process event recorder with deterministic sequencing.

    Args:
        tid: the default logical track for events emitted directly on
            this tracer (merged events keep/override their own).
    """

    enabled = True

    def __init__(self, tid: str = "main"):
        self.tid = tid
        self.events: list[TraceEvent] = []
        #: Monotonic clock origin: every ``ts`` is relative to this.
        self.epoch = time.perf_counter()
        #: Wall-clock time of the epoch — lets exporters reconstruct
        #: absolute ("wall") timestamps and lets :meth:`merge` re-time
        #: a worker's events onto this tracer's axis.
        self.wall_epoch = time.time()
        #: Last sampled value per counter name (the gauge view).
        self.gauges: dict[str, float] = {}
        self._seq = 0

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def _emit(
        self, name: str, cat: str, kind: str, ts: float, dur: float,
        args: dict, tid: str | None = None,
    ) -> TraceEvent:
        event = TraceEvent(
            seq=self._seq,
            name=name,
            cat=cat,
            kind=kind,
            ts=ts,
            dur=dur,
            tid=self.tid if tid is None else tid,
            args=args,
        )
        self._seq += 1
        self.events.append(event)
        return event

    # ------------------------------------------------------------------

    def begin(self, name: str, cat: str, **args) -> object:
        return (name, cat, self._now(), args)

    def end(self, token: object, **args) -> None:
        if token is None:
            return
        name, cat, start, opened = token
        merged = {**opened, **args} if opened else args
        self._emit(name, cat, "span", start, self._now() - start, merged)

    def instant(self, name: str, cat: str, **args) -> None:
        self._emit(name, cat, "instant", self._now(), 0.0, args)

    def counter(self, name: str, value, cat: str = "metrics") -> None:
        self.gauges[name] = value
        self._emit(name, cat, "counter", self._now(), 0.0, {"value": value})

    # ------------------------------------------------------------------

    def export(self) -> dict:
        """The trace as a plain-dict payload (picklable, mergeable)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "tid": self.tid,
            "wall_epoch": self.wall_epoch,
            "events": [event.as_dict() for event in self.events],
        }

    def drain(self) -> dict:
        """Export, then forget — long-lived worker tracers ship their
        events after every unit of work instead of accumulating."""
        payload = self.export()
        self.events = []
        return payload

    def merge(self, payload: dict | None, tid: str | None = None) -> None:
        """Fold an exported worker trace into this one.

        Events keep their relative order and gain fresh ``seq`` numbers
        (merge order is the parent's processing order, which callers
        keep deterministic).  Timestamps are re-based onto this tracer's
        clock through the wall epochs — approximate across processes,
        exact enough for timeline rendering.
        """
        if not payload:
            return
        offset = payload.get("wall_epoch", self.wall_epoch) - self.wall_epoch
        default_tid = tid if tid is not None else payload.get("tid", "worker")
        for raw in payload.get("events", ()):
            self._emit(
                raw["name"],
                raw["cat"],
                raw["kind"],
                raw["ts"] + offset,
                raw["dur"],
                dict(raw["args"]),
                tid=default_tid if tid is not None else raw.get(
                    "tid", default_tid
                ),
            )
