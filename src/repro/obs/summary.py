"""Trace digestion: per-phase time breakdowns and attempt timelines.

``repro trace summary PATH`` renders what :func:`summarize` computes
from a JSONL trace:

* per-phase wall time (the ``phase.*`` spans emitted by
  :meth:`MirsC.schedule`), with the coverage ratio against the enclosing
  ``schedule`` spans — the phases tile the schedule, so coverage sits
  within a few percent of 1.0;
* the attempt timeline: every ``attempt`` span in start order with its
  II, outcome kind and duration (cancelled speculative attempts
  included, marked as such);
* event/count roll-ups (race ledger, exec cache hits, gauge values).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class TraceSummary:
    """Digest of one JSONL trace (see :func:`summarize`)."""

    events: int
    span_seconds: dict[str, float]
    span_counts: dict[str, int]
    schedule_seconds: float
    phase_seconds: dict[str, float]
    attempts: list[dict]
    instants: dict[str, int]
    gauges: dict[str, float]
    cache_hits: int
    cache_misses: int

    @property
    def phase_coverage(self) -> float:
        """Summed phase time over summed schedule time (≈1.0)."""
        if not self.schedule_seconds:
            return 0.0
        return sum(self.phase_seconds.values()) / self.schedule_seconds

    # ------------------------------------------------------------------

    def render(self) -> str:
        """Human-readable tables (the ``repro trace summary`` output)."""
        from repro.eval.reporting import render_table

        phase_rows = [
            [name, round(seconds, 4), self.span_counts.get(name, 0)]
            for name, seconds in sorted(self.phase_seconds.items())
        ]
        phase_rows.append(
            ["(schedule total)", round(self.schedule_seconds, 4),
             self.span_counts.get("schedule", 0)]
        )
        out = [
            render_table(
                f"Per-phase time breakdown ({self.events} events, "
                f"coverage {self.phase_coverage:.1%})",
                ["phase", "seconds", "spans"],
                phase_rows,
            )
        ]
        if self.attempts:
            rows = [
                [
                    entry["tid"],
                    entry.get("ii", "?"),
                    "cancelled" if entry.get("cancelled")
                    else entry.get("kind", "?"),
                    round(entry["ts"], 4),
                    round(entry["dur"], 4),
                ]
                for entry in self.attempts[:40]
            ]
            note = (
                f"showing 40 of {len(self.attempts)} attempts"
                if len(self.attempts) > 40 else None
            )
            out.append("")
            out.append(
                render_table(
                    "Attempt timeline",
                    ["track", "II", "outcome", "start s", "dur s"],
                    rows,
                    note,
                )
            )
        roll = [
            [name, count] for name, count in sorted(self.instants.items())
        ]
        if self.cache_hits or self.cache_misses:
            roll.append(
                ["exec cache hit/miss",
                 f"{self.cache_hits}/{self.cache_misses}"]
            )
        roll.extend(
            [name, value] for name, value in sorted(self.gauges.items())
        )
        if roll:
            out.append("")
            out.append(
                render_table("Event roll-up", ["event", "count"], roll)
            )
        return "\n".join(out)


def summarize(header: dict, events: list[dict]) -> TraceSummary:
    """Digest parsed JSONL lines (see :func:`repro.obs.export.read_jsonl`)."""
    span_seconds: dict[str, float] = {}
    span_counts: dict[str, int] = {}
    phase_seconds: dict[str, float] = {}
    attempts: list[dict] = []
    instants: dict[str, int] = {}
    gauges: dict[str, float] = {}
    schedule_seconds = 0.0
    cache_hits = 0
    cache_misses = 0

    for event in events:
        name = event.get("name", "?")
        kind = event.get("kind")
        if kind == "span":
            dur = float(event.get("dur", 0.0))
            span_seconds[name] = span_seconds.get(name, 0.0) + dur
            span_counts[name] = span_counts.get(name, 0) + 1
            if name == "schedule":
                schedule_seconds += dur
            elif name.startswith("phase."):
                phase_seconds[name] = phase_seconds.get(name, 0.0) + dur
            elif name == "attempt":
                args = event.get("args", {})
                attempts.append(
                    {
                        "tid": str(event.get("tid", "?")),
                        "ts": float(event.get("ts", 0.0)),
                        "dur": dur,
                        "ii": args.get("ii"),
                        "kind": args.get("kind"),
                        "cancelled": bool(args.get("cancelled", False)),
                    }
                )
        elif kind == "instant":
            instants[name] = instants.get(name, 0) + 1
            if name == "exec.cache":
                if event.get("args", {}).get("hit"):
                    cache_hits += 1
                else:
                    cache_misses += 1
        elif kind == "counter":
            gauges[name] = event.get("args", {}).get("value", 0)

    attempts.sort(key=lambda entry: entry["ts"])
    return TraceSummary(
        events=len(events),
        span_seconds=span_seconds,
        span_counts=span_counts,
        schedule_seconds=schedule_seconds,
        phase_seconds=phase_seconds,
        attempts=attempts,
        instants=instants,
        gauges=gauges,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def summarize_file(path) -> TraceSummary:
    """Digest an on-disk JSONL trace."""
    from repro.obs.export import read_jsonl

    header, events = read_jsonl(path)
    return summarize(header, events)
