"""Trace export: JSONL (the canonical artifact) and Chrome trace-event
JSON (loadable in Perfetto / ``chrome://tracing``).

The JSONL file is one header line followed by one line per event; every
event line carries both the tracer-relative ``ts`` and an absolute
``wall`` timestamp (``wall_epoch + ts``), so race events are wall-
stamped without special-casing.  Both formats validate against the
committed ``trace_schema.json`` — the validator is hand-rolled (plain
type checks driven by the schema file) so no external dependency is
needed.
"""

from __future__ import annotations

import functools
import json
import pathlib

from repro.obs.tracer import TRACE_SCHEMA_VERSION, RecordingTracer

SCHEMA_PATH = pathlib.Path(__file__).with_name("trace_schema.json")

_TYPES = {
    "int": (int,),
    "str": (str,),
    "number": (int, float),
    "object": (dict,),
    "array": (list,),
}


@functools.cache
def load_schema() -> dict:
    """The committed trace schema (parsed once per process)."""
    return json.loads(SCHEMA_PATH.read_text())


def _payload_of(trace) -> dict:
    if isinstance(trace, RecordingTracer):
        return trace.export()
    if isinstance(trace, dict):
        return trace
    raise TypeError(
        f"cannot export {type(trace).__name__}; expected a "
        "RecordingTracer or an exported payload dict"
    )


def _event_lines(payload: dict):
    wall_epoch = payload.get("wall_epoch", 0.0)
    for event in payload.get("events", ()):
        line = dict(event)
        line["wall"] = round(wall_epoch + event["ts"], 6)
        yield line


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(trace, path) -> pathlib.Path:
    """Write a trace as JSONL: header line, then one line per event."""
    payload = _payload_of(trace)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": payload.get("schema", TRACE_SCHEMA_VERSION),
        "tid": payload.get("tid", "main"),
        "wall_epoch": payload.get("wall_epoch", 0.0),
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for line in _event_lines(payload):
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def read_jsonl(path) -> tuple[dict, list[dict]]:
    """Parse a JSONL trace back into ``(header, events)``."""
    lines = [
        json.loads(text)
        for text in pathlib.Path(path).read_text().splitlines()
        if text.strip()
    ]
    if not lines:
        raise ValueError(f"trace file {path} is empty")
    return lines[0], lines[1:]


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------


def chrome_path_for(jsonl_path) -> pathlib.Path:
    """The sibling Chrome-format path of a JSONL trace path."""
    path = pathlib.Path(jsonl_path)
    return path.with_name(path.stem + ".chrome.json")


def chrome_payload(trace) -> dict:
    """Lower a trace to the Chrome trace-event JSON object.

    Spans become complete (``"X"``) events, instants ``"i"``, counters
    ``"C"``; timestamps are microseconds as the format requires.
    """
    payload = _payload_of(trace)
    events = []
    for event in payload.get("events", ()):
        ts = round(event["ts"] * 1e6, 3)
        entry = {
            "name": event["name"],
            "cat": event["cat"],
            "ts": ts,
            "pid": 1,
            "tid": str(event["tid"]),
        }
        if event["kind"] == "span":
            entry["ph"] = "X"
            entry["dur"] = round(event["dur"] * 1e6, 3)
            entry["args"] = event["args"]
        elif event["kind"] == "counter":
            entry["ph"] = "C"
            entry["args"] = {event["name"]: event["args"].get("value", 0)}
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
            entry["args"] = event["args"]
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(trace, path) -> pathlib.Path:
    """Write a trace in Chrome trace-event format (Perfetto-loadable)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_payload(trace), sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Validation against the committed schema
# ----------------------------------------------------------------------


def _check_required(obj: dict, spec: dict, where: str) -> list[str]:
    errors = []
    for field, type_name in spec.items():
        if field not in obj:
            errors.append(f"{where}: missing field {field!r}")
        elif not isinstance(obj[field], _TYPES[type_name]) or isinstance(
            obj[field], bool
        ) and type_name != "bool":
            errors.append(
                f"{where}: field {field!r} is "
                f"{type(obj[field]).__name__}, expected {type_name}"
            )
    return errors


def validate_jsonl(header: dict, events: list[dict]) -> list[str]:
    """Validate parsed JSONL lines; returns human-readable problems."""
    schema = load_schema()["jsonl"]
    errors = _check_required(header, schema["header"]["required"], "header")
    if header.get("schema") != load_schema()["version"]:
        errors.append(
            f"header: schema version {header.get('schema')!r} != "
            f"{load_schema()['version']}"
        )
    kinds = set(schema["event"]["kinds"])
    last_seq: dict[str, int] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        errors.extend(
            _check_required(event, schema["event"]["required"], where)
        )
        if event.get("kind") not in kinds:
            errors.append(f"{where}: unknown kind {event.get('kind')!r}")
        seq = event.get("seq")
        tid = str(event.get("tid"))
        if isinstance(seq, int):
            if tid in last_seq and seq <= last_seq[tid]:
                errors.append(
                    f"{where}: seq {seq} not increasing on tid {tid!r}"
                )
            last_seq[tid] = seq
    return errors


def validate_chrome(payload: dict) -> list[str]:
    """Validate a Chrome trace-event payload against the schema."""
    schema = load_schema()["chrome"]
    errors = _check_required(payload, schema["required"], "chrome")
    if errors:
        return errors
    phases = set(schema["event"]["phases"])
    for index, event in enumerate(payload["traceEvents"]):
        where = f"chrome event {index}"
        errors.extend(
            _check_required(event, schema["event"]["required"], where)
        )
        if event.get("ph") not in phases:
            errors.append(f"{where}: unknown phase {event.get('ph')!r}")
        if event.get("ph") == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            errors.append(f"{where}: complete event without numeric dur")
    return errors


def validate_trace_file(path) -> list[str]:
    """Validate an on-disk JSONL trace (convenience for CLI/tests)."""
    header, events = read_jsonl(path)
    return validate_jsonl(header, events)
