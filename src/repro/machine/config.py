"""Machine configurations: ``k-(GPxMy-REGz)`` clustered VLIW cores.

The paper names its configurations ``k-(GPxMy-REGz)``: *k* clusters, each
with *x* general-purpose FP units, *y* memory ports and *z* registers.
Every cluster additionally has one input and one output port used by the
inter-cluster ``move`` operations, and the clusters are connected by a
small number of shared buses (2 in most experiments; Figure 6 sweeps 2, 3,
4 and unbounded).
"""

from __future__ import annotations

import dataclasses
import math
import re

from repro.errors import ConfigError
from repro.machine.resources import (
    DEFAULT_LATENCIES,
    UNPIPELINED,
    OpKind,
    ResourceClass,
)

_CONFIG_RE = re.compile(
    r"^(?P<k>\d+)-\(GP(?P<x>\d+)M(?P<y>\d+)-REG(?P<z>\d+|inf)\)$"
)


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Resources of a single cluster.

    Attributes:
        gp_units: number of general-purpose FP functional units (*x*).
        mem_ports: number of load/store ports (*y*).
        registers: register file size (*z*); ``None`` models the paper's
            "unbounded number of registers" experiments (Table 1).
    """

    gp_units: int
    mem_ports: int
    registers: int | None

    def __post_init__(self) -> None:
        if self.gp_units < 1:
            raise ConfigError("a cluster needs at least one GP unit")
        if self.mem_ports < 0:
            raise ConfigError("negative number of memory ports")
        if self.registers is not None and self.registers < 1:
            raise ConfigError("register file must have at least one entry")


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """A complete clustered VLIW core.

    Attributes:
        clusters: number of clusters (*k*).
        cluster: per-cluster resources (all clusters are identical).
        buses: number of inter-cluster buses; ``None`` means unbounded
            (used by the Figure 6 scalability study).
        move_latency: latency of a move operation, ``lambda_m`` (1 or 3 in
            the paper).
        latencies: per-operation-kind latency table.  Defaults to the
            paper's values (add/mul 4, div 17, sqrt 30, load 2, store 1).
    """

    clusters: int
    cluster: ClusterConfig
    buses: int | None = 2
    move_latency: int = 1
    latencies: dict[OpKind, int] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ConfigError("need at least one cluster")
        if self.buses is not None and self.buses < 1:
            raise ConfigError("need at least one bus (or None for unbounded)")
        if self.move_latency < 1:
            raise ConfigError("move latency must be positive")
        for kind, lat in self.latencies.items():
            if lat < 1:
                raise ConfigError(f"latency of {kind} must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The paper's ``k-(GPxMy-REGz)`` name for this configuration."""
        regs = "inf" if self.cluster.registers is None else self.cluster.registers
        return (
            f"{self.clusters}-(GP{self.cluster.gp_units}"
            f"M{self.cluster.mem_ports}-REG{regs})"
        )

    @property
    def total_gp_units(self) -> int:
        return self.clusters * self.cluster.gp_units

    @property
    def total_mem_ports(self) -> int:
        return self.clusters * self.cluster.mem_ports

    @property
    def total_registers(self) -> int | None:
        if self.cluster.registers is None:
            return None
        return self.clusters * self.cluster.registers

    @property
    def is_clustered(self) -> bool:
        return self.clusters > 1

    # ------------------------------------------------------------------
    # Operation properties
    # ------------------------------------------------------------------

    def latency(self, kind: OpKind) -> int:
        """Latency in cycles of an operation of the given kind."""
        if kind is OpKind.MOVE:
            return self.move_latency
        return self.latencies[kind]

    def occupancy(self, kind: OpKind) -> int:
        """Cycles during which the operation's FU stays busy.

        Fully-pipelined operations occupy their unit for a single cycle;
        division and square root block it for their whole latency.
        Memory and move operations are always pipelined.
        """
        if kind in UNPIPELINED:
            return self.latency(kind)
        return 1

    def instances(self, resource: ResourceClass) -> int | None:
        """Number of instances of a resource class (per cluster, except
        for buses which are global).  ``None`` means unbounded."""
        if resource is ResourceClass.GP_FU:
            return self.cluster.gp_units
        if resource is ResourceClass.MEM_PORT:
            return self.cluster.mem_ports
        if resource in (ResourceClass.OUT_PORT, ResourceClass.IN_PORT):
            # One send and one receive port per cluster (Section 4).
            return 1
        return self.buses

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def canonical(self) -> dict:
        """A stable, JSON-serializable form of this configuration.

        Used by :mod:`repro.exec.hashing` to derive cache keys, so the
        encoding must be deterministic: the latency table is emitted as a
        sorted list of ``(kind, latency)`` pairs, never as a dict whose
        iteration order could depend on insertion history.
        """
        return {
            "clusters": self.clusters,
            "gp_units": self.cluster.gp_units,
            "mem_ports": self.cluster.mem_ports,
            "registers": self.cluster.registers,
            "buses": self.buses,
            "move_latency": self.move_latency,
            "latencies": sorted(
                (kind.value, latency) for kind, latency in self.latencies.items()
            ),
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def with_registers(self, registers: int | None) -> "MachineConfig":
        """A copy of this configuration with a different register file."""
        return dataclasses.replace(
            self,
            cluster=dataclasses.replace(self.cluster, registers=registers),
        )

    def with_move_latency(self, move_latency: int) -> "MachineConfig":
        """A copy of this configuration with a different move latency."""
        return dataclasses.replace(self, move_latency=move_latency)

    def with_buses(self, buses: int | None) -> "MachineConfig":
        """A copy of this configuration with a different bus count."""
        return dataclasses.replace(self, buses=buses)


def parse_config(
    name: str,
    *,
    buses: int | None = 2,
    move_latency: int = 1,
) -> MachineConfig:
    """Parse a ``k-(GPxMy-REGz)`` configuration name.

    ``REGinf`` denotes an unbounded register file (Table 1 experiments).

    >>> parse_config("4-(GP2M1-REG32)").total_registers
    128
    """
    match = _CONFIG_RE.match(name.strip())
    if match is None:
        raise ConfigError(
            f"cannot parse machine configuration {name!r}; expected the "
            "paper's k-(GPxMy-REGz) syntax, e.g. '2-(GP4M2-REG64)'"
        )
    regs_text = match.group("z")
    registers = None if regs_text == "inf" else int(regs_text)
    return MachineConfig(
        clusters=int(match.group("k")),
        cluster=ClusterConfig(
            gp_units=int(match.group("x")),
            mem_ports=int(match.group("y")),
            registers=registers,
        ),
        buses=buses,
        move_latency=move_latency,
    )


def paper_configuration(
    clusters: int,
    registers_per_cluster: int | None,
    *,
    move_latency: int = 1,
    buses: int | None = 2,
) -> MachineConfig:
    """Build one of the paper's standard configurations.

    The evaluation fixes ``k * x = 8`` GP units and ``k * y = 4`` memory
    ports in total (Section 4), so the per-cluster resources follow from
    the cluster count alone.
    """
    if 8 % clusters or 4 % clusters:
        raise ConfigError(
            f"the paper's resource totals (8 GP units, 4 memory ports) "
            f"cannot be split evenly over {clusters} clusters"
        )
    return MachineConfig(
        clusters=clusters,
        cluster=ClusterConfig(
            gp_units=8 // clusters,
            mem_ports=4 // clusters,
            registers=registers_per_cluster,
        ),
        buses=buses,
        move_latency=move_latency,
    )


def scalability_configuration(
    clusters: int,
    *,
    buses: int | None = 2,
    move_latency: int = 1,
    registers_per_cluster: int | None = 32,
) -> MachineConfig:
    """Build a Figure 6 scalability configuration.

    The scalability study replicates a fixed ``GP2M1-REG32`` cluster
    element *k* times (k = 1..8) instead of splitting a fixed resource
    total, and sweeps the number of buses.
    """
    if clusters < 1:
        raise ConfigError("need at least one cluster")
    return MachineConfig(
        clusters=clusters,
        cluster=ClusterConfig(
            gp_units=2, mem_ports=1, registers=registers_per_cluster
        ),
        buses=buses,
        move_latency=move_latency,
    )


def minimum_buses_for(clusters: int) -> int:
    """The paper's rule of thumb: the interconnect scales well whenever
    the number of buses is close to ``k / 2`` (Section 4.2, Figure 6)."""
    return max(1, math.ceil(clusters / 2))
