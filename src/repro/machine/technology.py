"""Technology model: cycle time, area and power of clustered register files.

The paper reads these numbers from the VLSI model of Rixner et al.,
"Register Organization for Media Processing" (HPCA-6) [29], which expresses
register-file cost as a function of the number of registers *R* and the
number of ports *p*.  The model here implements the same analytic scaling
laws:

* **area** grows as ``R * p**2`` (each register cell is crossed by one
  wordline per port in one dimension and one bitline per port in the
  other),
* **access (cycle) time** combines a decoder term growing with ``log R``
  with a wire-delay term growing with ``p * sqrt(R)`` (word/bitline length
  scales with the square root of the cell array, widened by the per-port
  wires),
* **power** is dominated by port drivers; we use a two-parameter power law
  ``p**a * R**b`` fitted to the paper's anchors.

The free constants are calibrated against the facts the paper itself
states (Section 1 and Section 4.2):

1. a 4-cluster core with 64 registers per cluster has a cycle time
   slightly below a 16-register unified core,
2. its area is similar to a 32-register unified core,
3. its power is close to a 16-register unified core,
4. the k=4 REG16 (k=2 REG32) configurations have ~0.15x (~0.36x) the area
   and ~0.49x (~0.67x) the power of the unified REG64 configuration.

This substitution is recorded in DESIGN.md note (c).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError
from repro.machine.config import MachineConfig


@dataclasses.dataclass(frozen=True)
class TechnologyModel:
    """Analytic register-file technology model (Rixner-style).

    Attributes:
        base_delay_ns: fixed pipeline overhead per cycle.
        decoder_delay_ns: coefficient of the ``ln R`` decoder term.
        wire_delay_ns: coefficient of the ``p * sqrt(R)`` wire term.
        power_port_exponent / power_reg_exponent: exponents of the fitted
            power law (see module docstring).
        ports_per_gp_unit: register-file ports consumed by one FP unit
            (two reads and one write).
        ports_per_mem_port: ports consumed by one load/store unit.
        ports_per_move_port: ports consumed by each of the send/receive
            ports of a clustered design.
        bus_area: interconnect area per bus per cluster, in the same
            arbitrary units as the register-file area.
        miss_latency_ns: main-memory miss latency (Section 4.3: 25 ns).
    """

    base_delay_ns: float = 0.8
    decoder_delay_ns: float = 0.08
    wire_delay_ns: float = 0.004
    power_port_exponent: float = 1.776
    power_reg_exponent: float = 0.257
    power_scale: float = 1.0
    ports_per_gp_unit: int = 3
    ports_per_mem_port: int = 2
    ports_per_move_port: int = 2
    bus_area: float = 64.0
    miss_latency_ns: float = 25.0

    # ------------------------------------------------------------------
    # Port accounting
    # ------------------------------------------------------------------

    def ports_per_cluster(self, machine: MachineConfig) -> int:
        """Register-file ports required by one cluster's datapath."""
        ports = (
            self.ports_per_gp_unit * machine.cluster.gp_units
            + self.ports_per_mem_port * machine.cluster.mem_ports
        )
        if machine.is_clustered:
            # One send and one receive port for inter-cluster moves.
            ports += 2 * self.ports_per_move_port
        return ports

    def _registers(self, machine: MachineConfig) -> int:
        regs = machine.cluster.registers
        if regs is None:
            raise ConfigError(
                "technology model needs a finite register file; "
                "unbounded registers have no physical realization"
            )
        return regs

    # ------------------------------------------------------------------
    # The three cost functions (Figure 2)
    # ------------------------------------------------------------------

    def cycle_time_ns(self, machine: MachineConfig) -> float:
        """Cycle time, assumed constrained by register-file access time.

        The paper makes the same assumption when converting cycles into
        execution time (Section 4.2).
        """
        regs = self._registers(machine)
        ports = self.ports_per_cluster(machine)
        return (
            self.base_delay_ns
            + self.decoder_delay_ns * math.log(regs)
            + self.wire_delay_ns * ports * math.sqrt(regs)
        )

    def area(self, machine: MachineConfig) -> float:
        """Total register-file plus interconnect area (arbitrary units)."""
        regs = self._registers(machine)
        ports = self.ports_per_cluster(machine)
        cluster_area = regs * ports * ports
        buses = machine.buses if machine.buses is not None else machine.clusters
        wiring = self.bus_area * buses * machine.clusters
        if not machine.is_clustered:
            wiring = 0.0
        return machine.clusters * cluster_area + wiring

    def power(self, machine: MachineConfig) -> float:
        """Register-file power at a fixed activity level (arbitrary units)."""
        regs = self._registers(machine)
        ports = self.ports_per_cluster(machine)
        per_cluster = (
            ports**self.power_port_exponent * regs**self.power_reg_exponent
        )
        return self.power_scale * machine.clusters * per_cluster

    # ------------------------------------------------------------------
    # Derived quantities used by the memory-hierarchy experiments
    # ------------------------------------------------------------------

    def miss_latency_cycles(self, machine: MachineConfig) -> int:
        """Cache-miss latency in cycles for this configuration.

        Section 4.3 fixes the miss latency at 25 ns and converts it to
        cycles with each configuration's cycle time, which is what makes
        prefetching relatively cheaper on fast (clustered) cores.
        """
        return max(1, math.ceil(self.miss_latency_ns / self.cycle_time_ns(machine)))

    def execution_time_ns(self, machine: MachineConfig, cycles: float) -> float:
        """Convert a cycle count into nanoseconds on this configuration."""
        return cycles * self.cycle_time_ns(machine)
