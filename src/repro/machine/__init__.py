"""Clustered VLIW machine model.

This package models the processor configurations evaluated in the paper:
``k-(GPxMy-REGz)`` cores built out of *k* identical clusters, each holding
*x* general-purpose floating-point units, *y* memory ports and a *z*-entry
register file, connected by a small number of buses used by explicit
inter-cluster ``move`` operations (Section 4 of the paper).
"""

from repro.machine.config import ClusterConfig, MachineConfig, parse_config
from repro.machine.resources import OpKind, ResourceClass, OperationClass
from repro.machine.reservation import ReservationStep, reservation_steps
from repro.machine.technology import TechnologyModel

__all__ = [
    "ClusterConfig",
    "MachineConfig",
    "parse_config",
    "OpKind",
    "OperationClass",
    "ResourceClass",
    "ReservationStep",
    "reservation_steps",
    "TechnologyModel",
]
