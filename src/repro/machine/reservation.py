"""Reservation tables for VLIW operations.

A reservation table describes which resources an operation holds and at
which cycle offsets relative to its issue cycle.  Most operations have
trivial tables (one FU or port for one cycle).  The two interesting cases,
which the paper calls out explicitly, are:

* **unpipelined operations** (division, square root) hold their
  general-purpose unit for their whole latency, and
* **move operations** are "a coupled send-receive pair in the
  source-destination cluster which is a complex operation (in terms of
  reservation table)" (Section 1): they hold the *output port* of the
  source cluster and one *bus* at the issue cycle, and the *input port*
  of the destination cluster when the value arrives, ``lambda_m - 1``
  cycles later.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.machine.resources import OpKind, ResourceClass


class ClusterRole(enum.Enum):
    """Which cluster a reservation step refers to.

    ``SELF`` is the cluster the operation is assigned to.  For moves the
    destination cluster is the assigned one (the move *defines* its value
    there), so ``SELF`` doubles as the destination; ``SOURCE`` is the
    cluster the value comes from.  ``GLOBAL`` marks interconnect resources
    that do not belong to any cluster.
    """

    SELF = "self"
    SOURCE = "source"
    GLOBAL = "global"


@dataclasses.dataclass(frozen=True)
class ReservationStep:
    """One resource usage of an operation.

    Attributes:
        resource: the resource class used.
        role: which cluster the resource belongs to.
        offset: cycle offset relative to the operation's issue cycle.
        duration: number of consecutive cycles the resource stays busy.
        same_instance: steps sharing a ``same_instance`` group key must be
            satisfied by a single physical resource instance (an
            unpipelined divide cannot hop between FUs mid-flight).
    """

    resource: ResourceClass
    role: ClusterRole
    offset: int
    duration: int = 1
    same_instance: int = 0

    def rows(self, ii: int) -> list[int]:
        """MRT rows occupied by this step at initiation interval ``ii``."""
        return [(self.offset + i) % ii for i in range(self.duration)]


def reservation_steps(
    kind: OpKind, machine: MachineConfig
) -> tuple[ReservationStep, ...]:
    """Reservation table of an operation kind on the given machine.

    Returns the steps in a canonical order (FU/port steps first).  All
    offsets are relative to the issue cycle of the operation.
    """
    if kind.is_compute:
        return (
            ReservationStep(
                resource=ResourceClass.GP_FU,
                role=ClusterRole.SELF,
                offset=0,
                duration=machine.occupancy(kind),
                same_instance=1,
            ),
        )
    if kind.is_memory:
        return (
            ReservationStep(
                resource=ResourceClass.MEM_PORT,
                role=ClusterRole.SELF,
                offset=0,
                duration=1,
            ),
        )
    if kind is OpKind.MOVE:
        return (
            ReservationStep(
                resource=ResourceClass.OUT_PORT,
                role=ClusterRole.SOURCE,
                offset=0,
                duration=1,
            ),
            ReservationStep(
                resource=ResourceClass.BUS,
                role=ClusterRole.GLOBAL,
                offset=0,
                duration=1,
            ),
            ReservationStep(
                resource=ResourceClass.IN_PORT,
                role=ClusterRole.SELF,
                offset=machine.move_latency - 1,
                duration=1,
            ),
        )
    raise ConfigError(f"no reservation table for operation kind {kind}")


def max_occupancy(machine: MachineConfig, kinds: set[OpKind]) -> int:
    """Largest single-resource occupancy among the given operation kinds.

    Any operation that keeps one physical unit busy for *o* consecutive
    cycles cannot be placed in a modulo reservation table with ``II < o``
    (its own reservations would collide with themselves, one iteration
    later).  ``ResMII`` must therefore be at least this value.
    """
    occ = 1
    for kind in kinds:
        if kind.is_compute:
            occ = max(occ, machine.occupancy(kind))
    return occ
