"""Operation and resource taxonomies for the clustered VLIW model.

The paper's evaluation (Section 4) uses a small, fixed operation
repertoire: fully-pipelined additions and multiplications (4 cycles),
unpipelined division (17 cycles) and square root (30 cycles), pipelined
memory accesses through dedicated load/store units, and pipelined
inter-cluster ``move`` operations taking ``lambda_m`` cycles.

Resources come in five classes:

* ``GP_FU``    - general purpose FP units, *x* per cluster,
* ``MEM_PORT`` - load/store ports, *y* per cluster,
* ``OUT_PORT`` - the single per-cluster port that sends moves,
* ``IN_PORT``  - the single per-cluster port that receives moves,
* ``BUS``      - the global buses of the inter-cluster network.
"""

from __future__ import annotations

import enum


class OpKind(enum.Enum):
    """The kind of a loop operation.

    The member value is the short mnemonic used in printed schedules.
    """

    ADD = "add"
    MUL = "mul"
    DIV = "div"
    SQRT = "sqrt"
    LOAD = "load"
    STORE = "store"
    MOVE = "move"

    @property
    def is_memory(self) -> bool:
        """True for operations that occupy a memory port."""
        return self in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_compute(self) -> bool:
        """True for operations that occupy a general-purpose FU."""
        return self in (OpKind.ADD, OpKind.MUL, OpKind.DIV, OpKind.SQRT)

    @property
    def is_move(self) -> bool:
        """True for inter-cluster communication operations."""
        return self is OpKind.MOVE

    @property
    def produces_value(self) -> bool:
        """True if the operation defines a register value.

        Stores are the only operation kind in the repertoire that does
        not define a new register value.
        """
        return self is not OpKind.STORE


class ResourceClass(enum.Enum):
    """The classes of schedulable resources tracked by the MRT."""

    GP_FU = "gp"
    MEM_PORT = "mem"
    OUT_PORT = "out"
    IN_PORT = "in"
    BUS = "bus"

    @property
    def is_global(self) -> bool:
        """Buses belong to the interconnect, not to any single cluster."""
        return self is ResourceClass.BUS


class OperationClass(enum.Enum):
    """Coarse grouping used for ResMII accounting and statistics."""

    COMPUTE = "compute"
    MEMORY = "memory"
    COMMUNICATION = "communication"


def operation_class(kind: OpKind) -> OperationClass:
    """Map an operation kind onto its coarse resource class."""
    if kind.is_compute:
        return OperationClass.COMPUTE
    if kind.is_memory:
        return OperationClass.MEMORY
    return OperationClass.COMMUNICATION


#: Default operation latencies, straight from Section 4 of the paper.
#: Loads are given the cache *hit* latency for reads (2 cycles) and stores
#: the hit latency for writes (1 cycle); Section 4.3 overrides the load
#: latency per operation when binding prefetching is applied.
DEFAULT_LATENCIES: dict[OpKind, int] = {
    OpKind.ADD: 4,
    OpKind.MUL: 4,
    OpKind.DIV: 17,
    OpKind.SQRT: 30,
    OpKind.LOAD: 2,
    OpKind.STORE: 1,
    # MOVE latency is configuration dependent (lambda_m in {1, 3}); the
    # value here is only the fallback used when a MachineConfig is absent.
    OpKind.MOVE: 1,
}

#: Operations that are *not* fully pipelined occupy their functional unit
#: for their whole latency (Section 4: "All operations are fully pipelined
#: except for division and square root").
UNPIPELINED: frozenset[OpKind] = frozenset({OpKind.DIV, OpKind.SQRT})
