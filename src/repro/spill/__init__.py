"""Register spilling integrated into the scheduling loop."""

from repro.spill.heuristics import check_and_insert_spill

__all__ = ["check_and_insert_spill"]
