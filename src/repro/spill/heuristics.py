"""The Check_and_Insert_Spill heuristic (Section 3.2.3 / 3.3.3).

After every node placement MIRS-C compares the register requirement RR of
the partial schedule against the registers available AR:

* while the PriorityList is non-empty, spill code is introduced when
  ``RR > SG x AR`` (spill gauge, SG = 2 in the paper);
* once the PriorityList is empty, actual register allocation is performed
  and spilling triggers whenever ``RR > AR``.

The heuristic picks, among the lifetime sections ("uses") crossing the
critical cycle, the one with the largest ratio between its span and the
memory traffic its spilling would generate; sections shorter than the
minimum span gauge (MSG = 4) are not worth spilling.  If no section
qualifies, a node scheduled in the critical cycle is ejected instead,
pushing its non-spillable section out of the critical cycle.

On clustered machines the heuristic first tries to *balance* pressure by
re-timing moves (Section 3.3.3), and considers loop invariants as spill
candidates: an invariant's register can be dropped in favour of a move
from another cluster that still holds it, or a load from memory
(invariants never need a store - their home location is memory).
"""

from __future__ import annotations

from repro.core.state import SchedulerState
from repro.cluster.balance import balance_register_pressure
from repro.cluster.moves import add_invariant_move
from repro.graph.ddg import DepKind, Invariant, MemRef, Node
from repro.machine.resources import OpKind, ResourceClass
from repro.schedule.lifetimes import UseSegment
from repro.schedule.pressure import PressureTracker
from repro.schedule.regalloc import allocate_registers

#: Array-id namespace for compiler-generated spill slots (disjoint from
#: the workload generator's arrays).
SPILL_ARRAY_BASE = 1 << 20


def check_and_insert_spill(state: SchedulerState, *, final: bool = False) -> bool:
    """Run the spill check; returns True when the graph was modified.

    ``final`` selects the PriorityList-empty regime: the threshold drops
    from ``SG x AR`` to ``AR`` and RR is taken from an actual register
    allocation rather than the MaxLive approximation (footnote 2 of the
    paper: MaxLive is occasionally a slight underestimate).

    Pressure queries (MaxLive, critical row, use segments) read the
    state's incremental :class:`~repro.schedule.pressure.PressureTracker`,
    which every spill/eject/balance action below keeps current - this
    check, which runs after every placement, no longer rebuilds a
    from-scratch lifetime analysis.
    """
    available = state.machine.cluster.registers
    if available is None:
        return False
    acted = False
    tracker = state.pressure
    allocations = None
    # One invariant-count pass for all clusters; refreshed after any
    # action below mutates the schedule or the graph.
    max_live = tracker.max_live_all()
    for cluster in range(state.machine.clusters):
        requirement = max_live[cluster]
        if final:
            threshold = float(available)
            if requirement <= threshold:
                # MaxLive fits, but the actual allocation may exceed it
                # (footnote 2 of the paper) - consult it.  When MaxLive
                # is already over the threshold the allocation cannot
                # change the verdict (greedy colouring never beats the
                # MaxLive lower bound: full-period registers cover every
                # row and arc colours >= the peak arc density), so the
                # expensive colouring runs only on the fitting side.
                # The incremental engine serves the count from its
                # per-cluster caches (recolouring only dirty clusters);
                # the batch path is the engine-off oracle configuration.
                if state.colouring is not None:
                    requirement = max(
                        requirement, state.colouring.registers_used(cluster)
                    )
                else:
                    if allocations is None:
                        allocations = allocate_registers(
                            state.graph,
                            state.schedule,
                            state.machine,
                            tracker,
                            spilled_invariants=state.spilled_invariants,
                        )
                    requirement = max(
                        requirement, allocations[cluster].registers_used
                    )
        else:
            threshold = state.params.spill_gauge * available
        if requirement <= threshold:
            continue

        if state.machine.is_clustered and balance_register_pressure(
            state, cluster
        ):
            acted = True
            allocations = None
            max_live = tracker.max_live_all()
            if max_live[cluster] <= threshold:
                continue

        if _spill_once(state, cluster, tracker):
            acted = True
        elif _eject_from_critical_row(state, cluster, tracker):
            acted = True
        allocations = None
        max_live = tracker.max_live_all()
    return acted


# ----------------------------------------------------------------------
# Candidate selection
# ----------------------------------------------------------------------

def _segment_traffic(state: SchedulerState, segment: UseSegment) -> int:
    """Loads+stores that spilling this section would insert."""
    node = state.graph.node(segment.value)
    if node.move_of_invariant is not None or node.load_of_invariant is not None:
        return 1  # invariants reload straight from their home location
    stores = 0 if state.has_spill_store(segment.value) else 1
    return stores + 1


def _spill_once(
    state: SchedulerState, cluster: int, pressure: PressureTracker
) -> bool:
    """Spill the best candidate crossing the critical cycle, if any."""
    critical = pressure.critical_row(cluster)
    ii = state.ii
    min_span = state.params.min_span_gauge
    best_segment: UseSegment | None = None
    best_ratio = 0.0
    for segment in pressure.segments_in_cluster(cluster):
        # Field arithmetic inline (rather than the span/spillable
        # properties): this loop visits every segment of the cluster on
        # every spill decision.
        span = segment.end - segment.start
        if span < min_span or segment.start < segment.non_spillable_end:
            continue
        if not segment.crosses_row(critical, ii):
            continue
        if segment.value not in state.graph:
            continue
        ratio = span / _segment_traffic(state, segment)
        if ratio > best_ratio or (
            best_segment is not None
            and ratio == best_ratio
            and (span, -segment.value)
            > (best_segment.span, -best_segment.value)
        ):
            best_ratio = ratio
            best_segment = segment

    invariant_choice = _best_invariant_candidate(state, cluster)
    if invariant_choice is not None and ii >= state.params.min_span_gauge:
        invariant_ratio = float(ii)  # one load; one register, all rows
        if best_segment is None or invariant_ratio > best_ratio:
            _spill_invariant(state, invariant_choice, cluster)
            return True
    if best_segment is None:
        return False
    _spill_segment(state, best_segment)
    return True


def _best_invariant_candidate(
    state: SchedulerState, cluster: int
) -> Invariant | None:
    """An invariant holding a register in ``cluster`` that can be spilled.

    Only invariants whose consumers are all scheduled are considered, so
    the freed register cannot silently reappear later.
    """
    for invariant in state.graph.invariants():
        if (invariant.id, cluster) in state.spilled_invariants:
            continue
        if not invariant.consumers:
            continue
        if not all(
            state.schedule.is_scheduled(c) for c in invariant.consumers
        ):
            continue
        local = [
            c
            for c in invariant.consumers
            if state.schedule.cluster(c) == cluster
        ]
        if local:
            return invariant
    return None


# ----------------------------------------------------------------------
# Spill transforms
# ----------------------------------------------------------------------

def _spill_slot(state: SchedulerState, value_id: int) -> MemRef:
    return MemRef(array=SPILL_ARRAY_BASE + value_id, stride=1)


def _get_or_create_store(state: SchedulerState, value_id: int) -> Node:
    """The spill store for a value, creating it on first spill."""
    for edge in state.graph.out_edges(value_id):
        node = state.graph.node(edge.dst)
        if node.is_spill and node.kind is OpKind.STORE and (
            node.spilled_value == value_id
        ):
            return node
    store = state.graph.new_node(
        OpKind.STORE,
        is_spill=True,
        spilled_value=value_id,
        mem_ref=_spill_slot(state, value_id),
    )
    state.graph.add_edge(value_id, store.id, kind=DepKind.REG, distance=0)
    priority = state.pl.priority.get(value_id, 1.0) - 0.5
    state.pl.push(store.id, priority)
    state.stats.spill_stores_added += 1
    state.note_memory_node_added()
    state.budget += state.params.budget_ratio
    return store


def _insert_load(
    state: SchedulerState,
    store: Node | None,
    value_id: int,
    consumer: int,
    distance: int,
    mem_ref: MemRef,
    invariant_id: int | None = None,
) -> Node:
    """A spill load feeding ``consumer``, ordered after ``store`` if any."""
    load = state.graph.new_node(
        OpKind.LOAD,
        is_spill=True,
        spilled_value=value_id if invariant_id is None else None,
        load_of_invariant=invariant_id,
        mem_ref=mem_ref,
    )
    if store is not None:
        state.graph.add_edge(
            store.id, load.id, kind=DepKind.MEM, distance=distance
        )
    state.graph.add_edge(load.id, consumer, kind=DepKind.REG, distance=0)
    priority = state.pl.priority.get(consumer, 1.0) - 0.5
    state.pl.push(load.id, priority)
    state.stats.spill_loads_added += 1
    state.note_memory_node_added()
    state.budget += state.params.budget_ratio
    return load


def _find_edge(state: SchedulerState, src: int, dst: int, distance: int):
    for edge in state.graph.out_edges(src):
        if edge.dst == dst and edge.kind is DepKind.REG and (
            edge.distance == distance
        ):
            return edge
    return None


def _spill_segment(state: SchedulerState, segment: UseSegment) -> None:
    """Spill one use section: store after its start, load before its end."""
    value = state.graph.node(segment.value)
    edge = _find_edge(
        state, segment.value, segment.consumer, segment.edge_distance
    )
    if edge is None:
        return  # the graph changed under us; the next check retries

    if value.is_move:
        _spill_move_source(state, value, edge)
        return

    store = _get_or_create_store(state, value.id)
    state.graph.remove_edge(edge)
    _insert_load(
        state,
        store,
        value.id,
        segment.consumer,
        segment.edge_distance,
        store.mem_ref,
    )


def _spill_move_source(state: SchedulerState, move: Node, edge) -> None:
    """Spill a use whose source is a move (Section 3.3.2).

    The move is *eliminated* - the inter-cluster movement happens through
    memory instead - unless (1) it has several consumers and (2) one of
    them is scheduled before the target of the spilled use; in that case
    the move must stay and its own value is spilled like any other.
    """
    schedule = state.schedule
    consumers = [
        e for e in state.graph.out_edges(move.id) if e.kind is DepKind.REG
    ]
    target_time = (
        schedule.time(edge.dst) if schedule.is_scheduled(edge.dst) else None
    )
    earlier_consumer = any(
        e.dst != edge.dst
        and schedule.is_scheduled(e.dst)
        and target_time is not None
        and schedule.time(e.dst) < target_time
        for e in consumers
    )
    keep_move = len(consumers) > 1 and earlier_consumer

    if keep_move:
        store = _get_or_create_store(state, move.id)
        state.graph.remove_edge(edge)
        _insert_load(
            state, store, move.id, edge.dst, edge.distance, store.mem_ref
        )
        return

    if move.move_of_invariant is not None:
        invariant = state.graph.invariant(move.move_of_invariant)
        consumer = edge.dst
        distance = edge.distance
        state.graph.remove_edge(edge)
        _insert_load(
            state,
            None,
            -1,
            consumer,
            distance,
            invariant.mem_ref or MemRef(array=SPILL_ARRAY_BASE - 1 - invariant.id),
            invariant_id=invariant.id,
        )
        if not any(
            e.kind is DepKind.REG for e in state.graph.out_edges(move.id)
        ):
            state.remove_move(move.id)
        return

    producer_edges = [
        e for e in state.graph.in_edges(move.id) if e.kind is DepKind.REG
    ]
    if not producer_edges:
        return
    producer_edge = producer_edges[0]
    total_distance = producer_edge.distance + edge.distance
    consumer = edge.dst
    state.graph.remove_edge(edge)
    store = _get_or_create_store(state, producer_edge.src)
    _insert_load(
        state,
        store,
        producer_edge.src,
        consumer,
        total_distance,
        store.mem_ref,
    )
    if not any(e.kind is DepKind.REG for e in state.graph.out_edges(move.id)):
        state.remove_move(move.id)


def _spill_invariant(
    state: SchedulerState, invariant: Invariant, cluster: int
) -> None:
    """Drop an invariant's register in ``cluster`` (Section 3.3.2).

    Prefer a move from another cluster that still holds the invariant;
    fall back to a load from the invariant's home memory location when no
    such cluster exists or the interconnect is saturated.
    """
    schedule = state.schedule
    # Sorted: ``consumers`` is a set whose iteration order depends on
    # insertion history (and is scrambled by a pickle round-trip, e.g.
    # when a graph is shipped to a worker process); the spill loads must
    # be created in a content-determined order so schedules are
    # bit-identical across processes.
    local_consumers = sorted(
        c
        for c in invariant.consumers
        if schedule.is_scheduled(c) and schedule.cluster(c) == cluster
    )
    if not local_consumers:
        return
    source = _invariant_source_cluster(state, invariant, cluster)
    if source is not None:
        add_invariant_move(
            state, invariant.id, local_consumers, source, cluster
        )
        # The new move must be scheduled: it sits in the PriorityList and
        # the driver will pick it next (its priority is just below its
        # consumers').  Budget grows as for any inserted node.
        state.budget += state.params.budget_ratio
        return
    mem_ref = invariant.mem_ref or MemRef(
        array=SPILL_ARRAY_BASE - 1 - invariant.id
    )
    for consumer in local_consumers:
        invariant.consumers.discard(consumer)
        _insert_load(
            state, None, -1, consumer, 0, mem_ref, invariant_id=invariant.id
        )
    state.spilled_invariants.add((invariant.id, cluster))
    state.stats.invariant_spills += 1


def _invariant_source_cluster(
    state: SchedulerState, invariant: Invariant, cluster: int
) -> int | None:
    """A cluster still holding the invariant, if the interconnect allows.

    "If the invariant is not available in another cluster or resources
    (ports and buses in the interconnection) are saturated, then the
    invariant is loaded from memory."
    """
    schedule = state.schedule
    holders = {
        schedule.cluster(c)
        for c in invariant.consumers
        if schedule.is_scheduled(c)
    }
    holders = {
        c
        for c in holders
        if c != cluster and (invariant.id, c) not in state.spilled_invariants
    }
    if not holders:
        return None
    mrt = state.schedule.mrt
    for source in sorted(holders):
        out_busy = mrt.occupancy_fraction(ResourceClass.OUT_PORT, source)
        in_busy = mrt.occupancy_fraction(ResourceClass.IN_PORT, cluster)
        bus_busy = mrt.occupancy_fraction(ResourceClass.BUS, 0)
        if max(out_busy, in_busy, bus_busy) < 1.0:
            return source
    return None


# ----------------------------------------------------------------------
# Fallback: critical-cycle ejection
# ----------------------------------------------------------------------

def _eject_from_critical_row(
    state: SchedulerState, cluster: int, pressure: PressureTracker
) -> bool:
    """Eject one node issuing in the critical cycle (Section 3.2.3).

    Re-placing it elsewhere moves the non-spillable section of its value
    out of the critical cycle, reducing the register requirement there.
    """
    critical = pressure.critical_row(cluster)
    candidates = state.schedule.nodes_in_row(critical, cluster)
    if not candidates:
        return False
    victim = max(
        candidates,
        key=lambda n: (
            pressure.lifetime_length(n),
            -state.schedule.placement_seq(n),
        ),
    )
    state.eject_node(victim)
    return True
